//! Criterion micro-benchmarks of the simulation engine itself:
//! cycle-stepping throughput, route precomputation and topology
//! construction — the costs that bound every experiment in the paper
//! harness.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use wimnet_noc::{Network, NocConfig, PacketDesc};
use wimnet_routing::{Routes, RoutingPolicy};
use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout};

fn build_layout(arch: Architecture) -> MultichipLayout {
    MultichipLayout::build(&MultichipConfig::xcym(4, 4, arch)).expect("layout")
}

fn bench_topology_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_build");
    for arch in Architecture::ALL {
        g.bench_function(arch.label(), |b| {
            b.iter(|| build_layout(std::hint::black_box(arch)))
        });
    }
    g.finish();
}

fn bench_route_computation(c: &mut Criterion) {
    let mut g = c.benchmark_group("routes_build");
    let layout = build_layout(Architecture::Wireless);
    for (name, policy) in [
        ("tree", RoutingPolicy::tree()),
        ("updown", RoutingPolicy::up_down()),
        ("shortest", RoutingPolicy::shortest_path()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| Routes::build(layout.graph(), std::hint::black_box(policy)).unwrap())
        });
    }
    g.finish();
}

fn bench_network_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_step");
    g.sample_size(20);
    for arch in [Architecture::Interposer, Architecture::Wireless] {
        // 1000 cycles with moderate load already injected.
        g.bench_function(format!("{}_1000_cycles_loaded", arch.label()), |b| {
            b.iter_batched(
                || {
                    let layout = build_layout(arch);
                    let routes =
                        Routes::build(layout.graph(), RoutingPolicy::default()).unwrap();
                    let mut net =
                        Network::new(&layout, routes, NocConfig::paper()).unwrap();
                    let cores = layout.core_nodes().to_vec();
                    for (i, &src) in cores.iter().enumerate() {
                        net.inject(PacketDesc::new(src, cores[(i + 17) % 64], 64, 0));
                    }
                    net
                },
                |mut net| {
                    for _ in 0..1000 {
                        net.step();
                    }
                    net
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_idle_step(c: &mut Criterion) {
    // The idle cost matters because long measurement windows are mostly
    // idle at low loads.
    c.bench_function("network_step/idle_1000_cycles", |b| {
        b.iter_batched(
            || {
                let layout = build_layout(Architecture::Interposer);
                let routes =
                    Routes::build(layout.graph(), RoutingPolicy::default()).unwrap();
                Network::new(&layout, routes, NocConfig::paper()).unwrap()
            },
            |mut net| {
                for _ in 0..1000 {
                    net.step();
                }
                net
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_step_hot_loop(c: &mut Criterion) {
    // The engine's three load regimes: idle (active sets empty and the
    // idle fast-forward short-circuits run_for), low-load (a handful of
    // packets in flight, most components skipped), and saturated (every
    // component active — the active-set overhead ceiling).
    let mut g = c.benchmark_group("step_hot_loop");
    g.sample_size(15);
    let setup = || {
        let layout = build_layout(Architecture::Interposer);
        let routes = Routes::build(layout.graph(), RoutingPolicy::default()).unwrap();
        let cores = layout.core_nodes().to_vec();
        let net = Network::new(&layout, routes, NocConfig::paper()).unwrap();
        (net, cores)
    };
    g.bench_function("idle_10k_cycles", |b| {
        b.iter_batched(
            || setup().0,
            |mut net| {
                net.run_for(10_000);
                net
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("low_load_10k_cycles", |b| {
        b.iter_batched(
            &setup,
            |(mut net, cores)| {
                // A trickle: one 64-flit packet every 500 cycles from a
                // rotating source — the fig3 low-load regime.
                for burst in 0..20u64 {
                    let src = cores[(burst as usize * 7) % cores.len()];
                    let dst = cores[(burst as usize * 7 + 29) % cores.len()];
                    net.inject(PacketDesc::new(src, dst, 64, burst * 500));
                    net.run_for(500);
                }
                net
            },
            BatchSize::LargeInput,
        )
    });
    // Wired-only saturated traffic (no radios anywhere): isolates the
    // switch datapath — slab FIFO walks, arbitration, credit/meter
    // bookkeeping — from every wireless code path.
    g.bench_function("wired_2k_cycles", |b| {
        b.iter_batched(
            || {
                let layout = build_layout(Architecture::Substrate);
                let routes =
                    Routes::build(layout.graph(), RoutingPolicy::default()).unwrap();
                let cores = layout.core_nodes().to_vec();
                let mut net = Network::new(&layout, routes, NocConfig::paper()).unwrap();
                for (i, &src) in cores.iter().enumerate() {
                    for k in 0..4 {
                        let dst = cores[(i + 17 + k * 13) % cores.len()];
                        net.inject(PacketDesc::new(src, dst, 64, 0));
                    }
                }
                net
            },
            |mut net| {
                net.run_for(2_000);
                net
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("saturated_2k_cycles", |b| {
        b.iter_batched(
            &setup,
            |(mut net, cores)| {
                for (i, &src) in cores.iter().enumerate() {
                    for k in 0..4 {
                        let dst = cores[(i + 17 + k * 13) % cores.len()];
                        net.inject(PacketDesc::new(src, dst, 64, 0));
                    }
                }
                net.run_for(2_000);
                net
            },
            BatchSize::LargeInput,
        )
    });
    // Shared-channel MAC attached: exercises the per-cycle MediumView
    // refresh (reused buffers — the view path must not allocate after
    // the first cycle) alongside the control-packet MAC's phase machine.
    g.bench_function("shared_channel_2k_cycles", |b| {
        b.iter_batched(
            || {
                let layout = build_layout(Architecture::Wireless);
                let routes =
                    Routes::build(layout.graph(), RoutingPolicy::default()).unwrap();
                let mut net = Network::new(&layout, routes, NocConfig::paper()).unwrap();
                let channel =
                    wimnet_wireless::ChannelConfig::paper(net.radio_count());
                net.attach_medium(Box::new(wimnet_wireless::ControlPacketMac::new(
                    channel,
                )));
                let cores = layout.core_nodes().to_vec();
                // Cross-chip pairs so traffic actually rides the medium.
                for (i, &src) in cores.iter().enumerate().take(16) {
                    let dst = cores[(i + 19) % cores.len()];
                    net.inject(PacketDesc::new(src, dst, 64, 0));
                }
                net
            },
            |mut net| {
                net.run_for(2_000);
                net
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_topology_build,
    bench_route_computation,
    bench_network_step,
    bench_idle_step,
    bench_step_hot_loop
);
criterion_main!(benches);
