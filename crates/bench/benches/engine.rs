//! Criterion micro-benchmarks of the simulation engine itself:
//! cycle-stepping throughput, route precomputation and topology
//! construction — the costs that bound every experiment in the paper
//! harness.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use wimnet_noc::{Network, NocConfig, PacketDesc};
use wimnet_routing::{Routes, RoutingPolicy};
use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout};

fn build_layout(arch: Architecture) -> MultichipLayout {
    MultichipLayout::build(&MultichipConfig::xcym(4, 4, arch)).expect("layout")
}

fn bench_topology_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_build");
    for arch in Architecture::ALL {
        g.bench_function(arch.label(), |b| {
            b.iter(|| build_layout(std::hint::black_box(arch)))
        });
    }
    g.finish();
}

fn bench_route_computation(c: &mut Criterion) {
    let mut g = c.benchmark_group("routes_build");
    let layout = build_layout(Architecture::Wireless);
    for (name, policy) in [
        ("tree", RoutingPolicy::tree()),
        ("updown", RoutingPolicy::up_down()),
        ("shortest", RoutingPolicy::shortest_path()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| Routes::build(layout.graph(), std::hint::black_box(policy)).unwrap())
        });
    }
    g.finish();
}

fn bench_network_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_step");
    g.sample_size(20);
    for arch in [Architecture::Interposer, Architecture::Wireless] {
        // 1000 cycles with moderate load already injected.
        g.bench_function(format!("{}_1000_cycles_loaded", arch.label()), |b| {
            b.iter_batched(
                || {
                    let layout = build_layout(arch);
                    let routes =
                        Routes::build(layout.graph(), RoutingPolicy::default()).unwrap();
                    let mut net =
                        Network::new(&layout, routes, NocConfig::paper()).unwrap();
                    let cores = layout.core_nodes().to_vec();
                    for (i, &src) in cores.iter().enumerate() {
                        net.inject(PacketDesc::new(src, cores[(i + 17) % 64], 64, 0));
                    }
                    net
                },
                |mut net| {
                    for _ in 0..1000 {
                        net.step();
                    }
                    net
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_idle_step(c: &mut Criterion) {
    // The idle cost matters because long measurement windows are mostly
    // idle at low loads.
    c.bench_function("network_step/idle_1000_cycles", |b| {
        b.iter_batched(
            || {
                let layout = build_layout(Architecture::Interposer);
                let routes =
                    Routes::build(layout.graph(), RoutingPolicy::default()).unwrap();
                Network::new(&layout, routes, NocConfig::paper()).unwrap()
            },
            |mut net| {
                for _ in 0..1000 {
                    net.step();
                }
                net
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_topology_build,
    bench_route_computation,
    bench_network_step,
    bench_idle_step
);
criterion_main!(benches);
