//! Criterion benchmarks of the figure experiments at quick scale — one
//! per table/figure of the paper, so `cargo bench` exercises the entire
//! reproduction pipeline end to end.

use criterion::{criterion_group, criterion_main, Criterion};

use wimnet_core::experiments::{fig2, fig3, fig4, fig5, fig6};
use wimnet_core::Scale;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig2_quick", |b| b.iter(|| fig2(Scale::Quick).unwrap()));
    g.bench_function("fig3_quick", |b| b.iter(|| fig3(Scale::Quick).unwrap()));
    g.bench_function("fig4_quick", |b| b.iter(|| fig4(Scale::Quick).unwrap()));
    g.bench_function("fig5_quick", |b| b.iter(|| fig5(Scale::Quick).unwrap()));
    g.bench_function("fig6_quick", |b| b.iter(|| fig6(Scale::Quick).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
