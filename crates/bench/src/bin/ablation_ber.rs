//! Ablation: channel bit-error-rate sensitivity.
//!
//! The paper's link budget puts the wireless BER below 10⁻¹⁵ (§IV), so
//! retransmissions never appear in its results.  This sweep degrades the
//! channel artificially to show where the control-packet MAC's
//! stop-and-wait retransmission starts to cost real latency — the
//! robustness margin of the design.

use wimnet_bench::{banner, results_dir, scale_from_args};
use wimnet_core::report::{format_table, write_csv};
use wimnet_core::{Experiment, MacKind, SystemConfig, WirelessModel};
use wimnet_topology::Architecture;
use wimnet_wireless::flit_error_probability;

fn main() {
    let scale = scale_from_args();
    banner("Ablation — wireless bit error rate (4C4M, serialized MAC)", scale);
    let mut table = Vec::new();
    for ber in [1e-15, 1e-6, 1e-4, 1e-3, 5e-3] {
        let mut cfg = scale.apply(SystemConfig::xcym(4, 4, Architecture::Wireless));
        cfg.wireless = WirelessModel::SharedChannel { mac: MacKind::ControlPacket };
        cfg.ber = ber;
        // Short packets at a load the serialized 16 Gbps channel can
        // actually carry (~half its capacity), so the retransmission
        // effect is visible in the cross-chip latencies.
        cfg.packet_flits = 16;
        let outcome = Experiment::uniform_random(&cfg, 1e-4).run();
        let flit_err = flit_error_probability(ber, cfg.flit_bits);
        match outcome {
            Ok(o) => table.push(vec![
                format!("{ber:.0e}"),
                format!("{:.2e}", flit_err),
                o.packets_delivered().to_string(),
                o.avg_latency_cycles
                    .map(|l| format!("{l:.1}"))
                    .unwrap_or_else(|| "-".into()),
                o.avg_packet_energy_nj
                    .map(|e| format!("{e:.2}"))
                    .unwrap_or_else(|| "-".into()),
            ]),
            Err(e) => table.push(vec![
                format!("{ber:.0e}"),
                format!("{:.2e}", flit_err),
                "stalled".into(),
                format!("{e}"),
                "-".into(),
            ]),
        }
    }
    println!(
        "{}",
        format_table(
            &["BER", "flit error prob", "delivered", "latency (cycles)", "energy/pkt (nJ)"],
            &table,
        )
    );
    println!(
        "reading: the paper's 1e-15 operating point has astronomically \
         low flit error probability; the MAC tolerates errors gracefully \
         until the per-flit error probability reaches percents."
    );
    let path = results_dir().join("ablation_ber.csv");
    write_csv(
        &path,
        &["ber", "flit_error_prob", "delivered", "latency_cycles", "energy_nj"],
        &table,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}
