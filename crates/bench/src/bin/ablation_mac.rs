//! Ablation: the three wireless channel models × MAC choices.
//!
//! How much of the paper's claimed gain survives progressively more
//! faithful channel models?
//!
//! * `point-to-point` — concurrent per-pair links (the evaluation model
//!   behind the paper's §IV magnitudes; default for the figures).
//! * `parallel` — concurrent transfers but per-WI transceiver
//!   serialisation at 16 Gbps.
//! * `control-packet MAC` — the literal §III.D protocol on one shared
//!   16 Gbps channel, partial packets, sleepy receivers.
//! * `token MAC` — the baseline of ref \[7\]: whole packets only, deep WI
//!   buffers, no sleep.
//!
//! Includes the sleepy-receiver on/off comparison (part of §III.D's
//! motivation).
//!
//! Pass `--trace FILE` to additionally export a Chrome-trace/Perfetto
//! JSON view (packet lifetimes + MAC turns) of the control-packet-MAC
//! run — the observed run's table row is bit-identical to the
//! unobserved one (`docs/observability.md`).

use wimnet_bench::{banner, results_dir, scale_from_args, trace_path_from_args};
use wimnet_core::report::{format_table, write_csv};
use wimnet_core::{Experiment, MacKind, SystemConfig, TelemetryConfig, WirelessModel};
use wimnet_telemetry::validate_chrome_trace;
use wimnet_topology::Architecture;

fn main() {
    let scale = scale_from_args();
    let trace_path = trace_path_from_args();
    banner("Ablation — wireless channel models and MACs (4C4M)", scale);

    let variants: Vec<(&str, WirelessModel, bool)> = vec![
        (
            "point-to-point links",
            WirelessModel::PointToPoint { flits_per_cycle: 1.0, max_concurrent: 16 },
            true,
        ),
        (
            "parallel per-WI links",
            WirelessModel::ParallelLinks { flits_per_cycle: 1.0 },
            true,
        ),
        (
            "shared channel, control MAC (sleepy)",
            WirelessModel::SharedChannel { mac: MacKind::ControlPacket },
            true,
        ),
        (
            "shared channel, control MAC (no sleep)",
            WirelessModel::SharedChannel { mac: MacKind::ControlPacket },
            false,
        ),
        (
            "shared channel, token MAC",
            WirelessModel::SharedChannel { mac: MacKind::Token },
            true,
        ),
    ];

    // A light load the serialized 16 Gbps channel can still carry, so
    // the comparison is apples-to-apples.
    let load = 0.002;
    let mut table = Vec::new();
    for (name, wireless, sleepy) in variants {
        let mut cfg = scale.apply(SystemConfig::xcym(4, 4, Architecture::Wireless));
        cfg.wireless = wireless;
        cfg.sleepy_receivers = sleepy;
        // `--trace` records the paper's own protocol run — the sleepy
        // control-packet MAC — without moving its table row.
        let trace_this = trace_path.is_some()
            && name == "shared channel, control MAC (sleepy)";
        if trace_this {
            cfg.telemetry = TelemetryConfig::tracing();
        }
        let outcome = if trace_this {
            Experiment::uniform_random(&cfg, load).run_traced().map(|(o, trace)| {
                let path = trace_path.as_ref().expect("trace_this implies a path");
                let json = trace.expect("tracing was enabled");
                let events = validate_chrome_trace(&json)
                    .expect("emitted trace passes its own schema validator");
                std::fs::write(path, json).expect("write trace file");
                println!(
                    "wrote {events} trace event(s) for {name:?} to {}",
                    path.display()
                );
                o
            })
        } else {
            Experiment::uniform_random(&cfg, load).run()
        };
        match outcome {
            Ok(o) => table.push(vec![
                name.to_string(),
                format!("{:.2}", o.bandwidth_gbps_per_core),
                o.avg_latency_cycles
                    .map(|l| format!("{l:.1}"))
                    .unwrap_or_else(|| "-".into()),
                o.avg_packet_energy_nj
                    .map(|e| format!("{e:.2}"))
                    .unwrap_or_else(|| "-".into()),
            ]),
            Err(e) => table.push(vec![
                name.to_string(),
                "stalled".into(),
                format!("{e}"),
                "-".into(),
            ]),
        }
    }
    println!(
        "{}",
        format_table(
            &["channel model", "delivered bw/core (Gbps)", "avg latency (cycles)", "energy/packet (nJ)"],
            &table,
        )
    );
    println!(
        "reading: the serialized §III.D channel cannot sustain what the \
         evaluation model delivers; sleepy receivers cut packet energy; \
         the token MAC pays latency for whole-packet transfers."
    );
    let path = results_dir().join("ablation_mac.csv");
    write_csv(
        &path,
        &["channel_model", "bandwidth_gbps_per_core", "avg_latency_cycles", "energy_nj"],
        &table,
    )
    .expect("write ablation_mac.csv");
    println!("wrote {}", path.display());
}
