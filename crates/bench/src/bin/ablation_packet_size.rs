//! Ablation: packet length.
//!
//! §IV fixes "a moderate packet size of 64 flits"; this sweep shows how
//! the wireless-vs-interposer comparison depends on that choice (shorter
//! packets amortise the per-packet control overhead worse; longer ones
//! serialise longer on every slow link).

use wimnet_bench::{banner, results_dir, scale_from_args};
use wimnet_core::report::{format_table, write_csv};
use wimnet_core::{Experiment, SystemConfig};
use wimnet_topology::Architecture;

fn main() {
    let scale = scale_from_args();
    banner("Ablation — packet size (4C4M, saturation, 20% memory)", scale);
    let mut table = Vec::new();
    for flits in [16u32, 32, 64, 128] {
        let mut row = vec![format!("{flits} flits")];
        for arch in [Architecture::Interposer, Architecture::Wireless] {
            let mut cfg = scale.apply(SystemConfig::xcym(4, 4, arch));
            cfg.packet_flits = flits;
            let o = Experiment::saturation(&cfg, 0.20).run().expect("run");
            row.push(format!("{:.2}", o.bandwidth_gbps_per_core));
            row.push(format!("{:.2}", o.packet_energy_nj()));
        }
        table.push(row);
    }
    println!(
        "{}",
        format_table(
            &[
                "packet size",
                "ip bw/core (Gbps)",
                "ip energy (nJ)",
                "wl bw/core (Gbps)",
                "wl energy (nJ)",
            ],
            &table,
        )
    );
    println!(
        "reading: the wireless advantage is robust across packet sizes; \
         per-packet energy scales roughly linearly with length on both \
         fabrics (per-bit costs dominate)."
    );
    let path = results_dir().join("ablation_packet_size.csv");
    write_csv(
        &path,
        &["packet_size", "ip_bw", "ip_energy_nj", "wl_bw", "wl_energy_nj"],
        &table,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}
