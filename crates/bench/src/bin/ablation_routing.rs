//! Ablation: routing policy (§III.C).
//!
//! The paper routes on Dijkstra shortest paths and argues deadlock
//! freedom via a tree.  This sweep compares the three formalisations on
//! the 4C4M wireless system: pure tree routing (the literal argument),
//! up*/down* (deadlock-free, uses all links — the reproduction default)
//! and unrestricted shortest paths (verified per-topology; deadlocks on
//! some architectures, see `wimnet-routing`'s CDG checker).

use wimnet_bench::{banner, results_dir, scale_from_args};
use wimnet_core::report::{format_table, write_csv};
use wimnet_core::{Experiment, SystemConfig};
use wimnet_routing::{deadlock, Routes, RoutingPolicy};
use wimnet_topology::{Architecture, MultichipLayout};

fn main() {
    let scale = scale_from_args();
    banner("Ablation — routing policy (4C4M Wireless)", scale);
    let policies = [
        ("tree", RoutingPolicy::tree()),
        ("up*/down*", RoutingPolicy::up_down()),
        ("shortest-path", RoutingPolicy::shortest_path()),
    ];
    let mut table = Vec::new();
    for (name, policy) in policies {
        let mut cfg = scale.apply(SystemConfig::xcym(4, 4, Architecture::Wireless));
        cfg.routing = policy;
        // Deadlock audit first: the CDG proof for this exact topology.
        let layout = MultichipLayout::build(&cfg.multichip).expect("layout");
        let routes = Routes::build(layout.graph(), policy).expect("routes");
        let cyclic = deadlock::find_cycle(layout.graph(), &routes).is_some();
        let avg_hops = routes.average_hops().expect("hops");

        let outcome = Experiment::uniform_random(&cfg, 0.002).run();
        let (bw, lat) = match &outcome {
            Ok(o) => (
                format!("{:.2}", o.bandwidth_gbps_per_core),
                o.avg_latency_cycles
                    .map(|l| format!("{l:.1}"))
                    .unwrap_or_else(|| "-".into()),
            ),
            Err(e) => ("stalled".into(), format!("{e}")),
        };
        table.push(vec![
            name.to_string(),
            format!("{avg_hops:.2}"),
            if cyclic { "cyclic (unsafe)" } else { "acyclic (safe)" }.to_string(),
            bw,
            lat,
        ]);
    }
    println!(
        "{}",
        format_table(
            &["policy", "avg hops", "channel dependency graph", "bw/core (Gbps)", "latency (cycles)"],
            &table,
        )
    );
    println!(
        "reading: up*/down* recovers most of shortest-path's distance \
         while keeping the dependency graph acyclic; pure tree routing \
         pays heavily in hops and congestion."
    );
    let path = results_dir().join("ablation_routing.csv");
    write_csv(
        &path,
        &["policy", "avg_hops", "cdg", "bandwidth_gbps_per_core", "latency_cycles"],
        &table,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}
