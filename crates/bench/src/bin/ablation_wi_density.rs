//! Ablation: wireless deployment density (§III.A).
//!
//! "We avoid using a very high WI density such as 1 WI per core, as it
//! will increase the area overhead and potentially reduce performance
//! due to increased contention on the shared wireless channel."  This
//! sweep quantifies the trade-off on the 1C4M system (where density can
//! vary freely): more WIs shorten collection paths but share the same
//! band capacity and add 0.3 mm² each.

use wimnet_bench::{banner, results_dir, scale_from_args};
use wimnet_core::report::{format_table, write_csv};
use wimnet_core::{Experiment, SystemConfig};
use wimnet_topology::Architecture;
use wimnet_wireless::TransceiverSpec;

fn main() {
    let scale = scale_from_args();
    banner("Ablation — WI density (1C4M, 64 cores)", scale);
    let spec = TransceiverSpec::paper();
    let mut table = Vec::new();
    for cores_per_wi in [8usize, 16, 32, 64] {
        let mut cfg = scale.apply(SystemConfig::xcym(1, 4, Architecture::Wireless));
        cfg.multichip.cores_per_wi = cores_per_wi;
        let wis = 64 / cores_per_wi + cfg.multichip.num_stacks;
        let outcome = Experiment::saturation(&cfg, 0.20).run().expect("density run");
        table.push(vec![
            format!("1 WI / {cores_per_wi} cores"),
            wis.to_string(),
            format!("{:.2}", spec.total_area_mm2(wis)),
            format!("{:.2}", outcome.bandwidth_gbps_per_core),
            format!("{:.2}", outcome.packet_energy_nj()),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["density", "WIs", "area (mm^2)", "bw/core (Gbps)", "energy/packet (nJ)"],
            &table,
        )
    );
    println!(
        "reading: beyond ~1 WI / 16 cores the extra transceiver area \
         buys little — the paper's chosen density."
    );
    let path = results_dir().join("ablation_wi_density.csv");
    write_csv(
        &path,
        &["density", "wis", "area_mm2", "bandwidth_gbps_per_core", "energy_nj"],
        &table,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}
