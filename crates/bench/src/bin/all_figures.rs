//! Regenerates every figure of the paper in one run and writes all CSVs
//! to `results/`.  Pass `--quick` for a fast smoke run.

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick" || a == "-q");
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin dir");
    for fig in ["fig2", "fig3", "fig4", "fig5", "fig6"] {
        let mut cmd = Command::new(dir.join(fig));
        if quick {
            cmd.arg("--quick");
        }
        let status = cmd.status().unwrap_or_else(|e| {
            panic!("failed to launch {fig}: {e} (build with `cargo build --release -p wimnet-bench`)")
        });
        assert!(status.success(), "{fig} failed");
        println!();
    }
    println!("all figures regenerated.");
}
