//! Engine performance tracker: measures wall-clock cost of the cycle
//! engine on the scenarios that dominate every figure reproduction, and
//! emits `BENCH_engine.json` so the perf trajectory is tracked across
//! PRs.
//!
//! Scenarios:
//!
//! * `idle` — an empty interposer network stepped for 200k cycles (the
//!   cost floor of long measurement windows at low load);
//! * `fig3_anchor_load` — the fig3 analysis' zero-load anchor (1e-4
//!   packets/core/cycle, the latency baseline `find_saturation_load`
//!   bisects against), summed over 8 seeds to average out realization
//!   noise: the point where the counter-RNG Bernoulli fast-forward
//!   pays — the network is genuinely idle between packets and the
//!   driver can now skip those cycles *and* their workload draws,
//!   leaving wall-clock at the per-packet work floor;
//! * `fig3_lowest_load` — the lowest *plotted* fig3 point (0.001): at
//!   paper 4C4M scale ~11 packets are in flight on average, the
//!   network never fully drains, and the row documents that
//!   fast-forward neither helps nor hurts there;
//! * `fig3_low_load` — one fig3 latency point at 0.002 packets/core/
//!   cycle on the wireless system, paper windows;
//! * `fig3_sweep` — the fig3 low-to-mid-load latency curve (0.001 …
//!   0.032) on the wireless system, paper windows, all points in
//!   parallel (the headline number the ≥2× target applies to);
//! * `saturated` — uniform saturation on the wireless system (upper
//!   bound: every component active every cycle, so active-set tracking
//!   cannot help and must not hurt);
//! * `shared_channel` — the §III.D serialized channel under the
//!   control-packet MAC (exercises the medium path and the reused
//!   `MediumView` buffers);
//! * `sweep_grid_pool` — an 18-point ScenarioGrid (3 architectures × 6
//!   loads, paper windows) on the work-stealing pool; the binary
//!   asserts the combined fingerprint is identical across pool shapes
//!   (1×1, 2×3 and all-cores×1 threads×chunk) before recording it.
//!
//! Each traffic scenario also records a *determinism fingerprint*
//! (packets, flits, latency and energy with exact bit patterns); two
//! builds of the engine are behavior-equivalent exactly when their
//! fingerprints match for every scenario.
//!
//! Usage: `cargo run --release -p wimnet-bench --bin bench_engine --
//! [--label NAME] [--out PATH]` (defaults: label `engine`, path
//! `BENCH_engine.json` in the workspace root).

use std::time::Instant;

use wimnet_core::sweeps::{run_pool, ScenarioGrid};
use wimnet_core::{latency_curve, MacKind, MultichipSystem, SystemConfig, WirelessModel};
use wimnet_noc::{Network, NocConfig};
use wimnet_routing::{Routes, RoutingPolicy};
use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout};
use wimnet_traffic::{InjectionProcess, UniformRandom};

struct Scenario {
    name: &'static str,
    wall_ms: f64,
    cycles: u64,
    fingerprint: Option<Fingerprint>,
}

struct Fingerprint {
    packets: u64,
    flits: u64,
    latency_bits: u64,
    energy_pj_bits: u64,
    energy_pj: f64,
}

fn fingerprint_of(sys: &MultichipSystem, latency: Option<f64>) -> Fingerprint {
    let energy = sys.network().meter().total().picojoules();
    Fingerprint {
        packets: sys.network().stats().packets_delivered(),
        flits: sys.network().stats().flits_delivered(),
        latency_bits: latency.unwrap_or(f64::NAN).to_bits(),
        energy_pj_bits: energy.to_bits(),
        energy_pj: energy,
    }
}

fn run_system(config: &SystemConfig, load: InjectionProcess) -> (f64, u64, Fingerprint) {
    let mut sys = MultichipSystem::build(config).expect("system builds");
    let mut workload = UniformRandom::new(
        config.multichip.total_cores(),
        config.multichip.num_stacks,
        0.20,
        load,
        config.packet_flits,
        config.seed,
    );
    let start = Instant::now();
    let outcome = sys.run(&mut workload).expect("run completes");
    let wall = start.elapsed().as_secs_f64() * 1e3;
    let cycles = config.warmup_cycles + config.measure_cycles;
    let fp = fingerprint_of(&sys, outcome.avg_latency_cycles);
    (wall, cycles, fp)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut label = String::from("engine");
    let mut out_path: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                label = args.get(i + 1).expect("--label NAME").clone();
                i += 2;
            }
            "--out" => {
                out_path = Some(args.get(i + 1).expect("--out PATH").clone());
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    let out_path = out_path.unwrap_or_else(|| {
        wimnet_bench::results_dir()
            .parent()
            .map(|p| p.join("BENCH_engine.json").to_string_lossy().into_owned())
            .unwrap_or_else(|| "BENCH_engine.json".to_string())
    });

    let mut scenarios: Vec<Scenario> = Vec::new();

    // --- idle: empty network, 200k cycles.
    {
        let layout =
            MultichipLayout::build(&MultichipConfig::xcym(4, 4, Architecture::Interposer))
                .expect("layout");
        let routes = Routes::build(layout.graph(), RoutingPolicy::default()).expect("routes");
        let mut net = Network::new(&layout, routes, NocConfig::paper()).expect("network");
        let cycles = 200_000u64;
        let start = Instant::now();
        net.run_for(cycles);
        let wall = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(net.now(), cycles);
        scenarios.push(Scenario { name: "idle", wall_ms: wall, cycles, fingerprint: None });
    }

    // --- fig3 zero-load anchor: the Bernoulli fast-forward showcase.
    // Eight seeds, wall-clock summed: single realizations at this load
    // carry ±20% packet-count noise that would drown the signal.
    {
        let mut wall = 0.0;
        let mut cycles = 0;
        let mut fp = Fingerprint {
            packets: 0,
            flits: 0,
            latency_bits: 0,
            energy_pj_bits: 0,
            energy_pj: 0.0,
        };
        for seed in 1..=8u64 {
            let mut config = SystemConfig::xcym(4, 4, Architecture::Wireless);
            config.seed = seed;
            let (w, c, f) =
                run_system(&config, InjectionProcess::Bernoulli { rate: 0.0001 });
            wall += w;
            cycles += c;
            fp.packets += f.packets;
            fp.flits += f.flits;
            fp.latency_bits ^= f.latency_bits;
            fp.energy_pj_bits ^= f.energy_pj_bits;
            fp.energy_pj += f.energy_pj;
        }
        scenarios.push(Scenario {
            name: "fig3_anchor_load",
            wall_ms: wall,
            cycles,
            fingerprint: Some(fp),
        });
    }

    // --- fig3 lowest plotted point (never fully idle at 4C4M scale).
    {
        let config = SystemConfig::xcym(4, 4, Architecture::Wireless);
        let (wall, cycles, fp) =
            run_system(&config, InjectionProcess::Bernoulli { rate: 0.001 });
        scenarios.push(Scenario {
            name: "fig3_lowest_load",
            wall_ms: wall,
            cycles,
            fingerprint: Some(fp),
        });
    }

    // --- fig3 single low-load point, wireless, paper windows.
    {
        let config = SystemConfig::xcym(4, 4, Architecture::Wireless);
        let (wall, cycles, fp) =
            run_system(&config, InjectionProcess::Bernoulli { rate: 0.002 });
        scenarios.push(Scenario {
            name: "fig3_low_load",
            wall_ms: wall,
            cycles,
            fingerprint: Some(fp),
        });
    }

    // --- fig3 low-to-mid-load sweep (the ≥2× target).
    {
        let config = SystemConfig::xcym(4, 4, Architecture::Wireless);
        let loads = [0.001, 0.002, 0.004, 0.008, 0.016, 0.032];
        let start = Instant::now();
        let curve = latency_curve(&config, &loads).expect("sweep completes");
        let wall = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(curve.len(), loads.len());
        let cycles =
            (config.warmup_cycles + config.measure_cycles) * loads.len() as u64;
        scenarios.push(Scenario {
            name: "fig3_sweep",
            wall_ms: wall,
            cycles,
            fingerprint: None,
        });
    }

    // --- fig3 high-injection point (0.064, above the plotted sweep's
    // top): the saturated-load regime where wall-clock is pure per-flit
    // work — arbitration plus the energy meter — and the slab/SoA switch
    // datapath is the lever.  Tracked separately from `saturated`
    // (open-loop Saturation) because fig3's energy/latency numbers are
    // measured on Bernoulli offered loads.
    {
        let config = SystemConfig::xcym(4, 4, Architecture::Wireless);
        let (wall, cycles, fp) =
            run_system(&config, InjectionProcess::Bernoulli { rate: 0.064 });
        scenarios.push(Scenario {
            name: "fig3_high_load",
            wall_ms: wall,
            cycles,
            fingerprint: Some(fp),
        });
    }

    // --- saturation: every component busy (active sets cannot help).
    {
        let config = SystemConfig::xcym(4, 4, Architecture::Wireless);
        let (wall, cycles, fp) = run_system(&config, InjectionProcess::Saturation);
        scenarios.push(Scenario {
            name: "saturated",
            wall_ms: wall,
            cycles,
            fingerprint: Some(fp),
        });
    }

    // --- serialized shared channel under the control-packet MAC.
    {
        let mut config = SystemConfig::xcym(4, 4, Architecture::Wireless);
        config.wireless = WirelessModel::SharedChannel { mac: MacKind::ControlPacket };
        let (wall, cycles, fp) =
            run_system(&config, InjectionProcess::Bernoulli { rate: 0.002 });
        scenarios.push(Scenario {
            name: "shared_channel",
            wall_ms: wall,
            cycles,
            fingerprint: Some(fp),
        });
    }

    // --- substrate A/B fingerprint (serial I/O + wide I/O paths).
    {
        let config = SystemConfig::xcym(4, 4, Architecture::Substrate);
        let (wall, cycles, fp) =
            run_system(&config, InjectionProcess::Bernoulli { rate: 0.004 });
        scenarios.push(Scenario {
            name: "substrate_mid_load",
            wall_ms: wall,
            cycles,
            fingerprint: Some(fp),
        });
    }

    // --- app workload with memory read/reply traffic through the stacks.
    {
        let config = SystemConfig::xcym(4, 4, Architecture::Wireless);
        let profile = wimnet_traffic::profiles::blackscholes();
        let mut sys = MultichipSystem::build(&config).expect("system builds");
        let mut workload = wimnet_traffic::AppWorkload::new(
            profile,
            config.multichip.num_chips,
            config.multichip.cores_per_chip,
            config.multichip.num_stacks,
            config.seed,
        );
        let start = Instant::now();
        let outcome = sys.run(&mut workload).expect("run completes");
        let wall = start.elapsed().as_secs_f64() * 1e3;
        scenarios.push(Scenario {
            name: "app_blackscholes",
            wall_ms: wall,
            cycles: config.warmup_cycles + config.measure_cycles,
            fingerprint: Some(fingerprint_of(&sys, outcome.avg_latency_cycles)),
        });
    }

    // --- scenario grid on the work-stealing pool: 3 architectures × 6
    // loads, paper windows.  The same grid must produce bit-identical
    // outcomes for every pool shape; the recorded fingerprint folds all
    // 18 points together.
    {
        let grid = ScenarioGrid::new("bench-grid")
            .architectures(&Architecture::ALL)
            .loads(&[0.001, 0.002, 0.004, 0.008, 0.016, 0.032]);
        let experiments = grid.experiments();
        let fold = |outcomes: &[wimnet_core::RunOutcome]| -> Fingerprint {
            let mut packets = 0u64;
            let mut flits = 0u64;
            let mut latency_bits = 0u64;
            let mut energy_bits = 0u64;
            let mut energy_pj = 0.0f64;
            for (e, o) in experiments.iter().zip(outcomes) {
                packets += o.packets_delivered();
                // Uniform-random packets are all `packet_flits` long.
                flits += o.packets_delivered() * u64::from(e.config().packet_flits);
                latency_bits ^= o.avg_latency_cycles.unwrap_or(f64::NAN).to_bits();
                energy_bits ^= o.total_energy_nj().to_bits();
                energy_pj += o.total_energy_nj() * 1e3;
            }
            Fingerprint { packets, flits, latency_bits, energy_pj_bits: energy_bits, energy_pj }
        };
        let start = Instant::now();
        let pooled = run_pool(&experiments, wimnet_core::sweeps::default_threads(), 1)
            .expect("grid runs");
        let wall = start.elapsed().as_secs_f64() * 1e3;
        let fp = fold(&pooled);
        // Pool-shape invariance is part of the benchmark's contract:
        // refuse to record a fingerprint that depends on the scheduler.
        for (threads, chunk) in [(1usize, 1usize), (2, 3)] {
            let again = fold(&run_pool(&experiments, threads, chunk).expect("grid reruns"));
            assert_eq!(
                (again.packets, again.flits, again.latency_bits, again.energy_pj_bits),
                (fp.packets, fp.flits, fp.latency_bits, fp.energy_pj_bits),
                "pool shape ({threads}×{chunk}) changed the grid fingerprint"
            );
        }
        let cycles = experiments
            .iter()
            .map(|e| e.config().warmup_cycles + e.config().measure_cycles)
            .sum();
        scenarios.push(Scenario {
            name: "sweep_grid_pool",
            wall_ms: wall,
            cycles,
            fingerprint: Some(fp),
        });
    }

    // Render JSON by hand: the report shape is fixed and tiny, and the
    // serde shim's derive output would bloat the field names.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"label\": \"{label}\",\n"));
    json.push_str("  \"scenarios\": {\n");
    for (i, s) in scenarios.iter().enumerate() {
        let cps = s.cycles as f64 / (s.wall_ms / 1e3);
        json.push_str(&format!(
            "    \"{}\": {{\"wall_ms\": {:.3}, \"cycles\": {}, \"cycles_per_sec\": {:.0}",
            s.name, s.wall_ms, s.cycles, cps
        ));
        if let Some(fp) = &s.fingerprint {
            json.push_str(&format!(
                ", \"fingerprint\": {{\"packets\": {}, \"flits\": {}, \"latency_bits\": {}, \
                 \"energy_pj_bits\": {}, \"energy_pj\": {}}}",
                fp.packets, fp.flits, fp.latency_bits, fp.energy_pj_bits, fp.energy_pj
            ));
        }
        json.push_str(if i + 1 < scenarios.len() { "},\n" } else { "}\n" });
    }
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("{json}");
    println!("wrote {out_path}");
}
