//! Engine performance tracker: measures wall-clock cost of the cycle
//! engine on the scenarios that dominate every figure reproduction, and
//! emits `BENCH_engine.json` so the perf trajectory is tracked across
//! PRs.
//!
//! Since the universal idle fast-forward PR the two blocks are an
//! **A/B of the same binary**: `before` runs every scenario with
//! `SystemConfig::disable_fast_forward` set (full per-cycle stepping),
//! `after` with the driver's idle fast-forward enabled.  The blocks are
//! measured interleaved (before/after alternating, `--reps` rounds,
//! minima recorded) and the binary refuses to emit the file unless
//! every fingerprint is bit-identical across *all* runs of *both*
//! blocks — the fast-forward contract (`docs/fast_forward.md`),
//! enforced at measurement time.
//!
//! Scenarios:
//!
//! * `idle` — an empty interposer network stepped for 200k cycles (the
//!   cost floor of long measurement windows at low load);
//! * `fig3_anchor_load` — the fig3 analysis' zero-load anchor (1e-4
//!   packets/core/cycle) summed over 8 seeds: the Bernoulli
//!   fast-forward showcase;
//! * `fig3_lowest_load` — the lowest *plotted* fig3 point (0.001): at
//!   paper 4C4M scale the network never fully drains, and the row
//!   documents that fast-forward neither helps nor hurts there;
//! * `fig3_low_load` / `fig3_high_load` — single fig3 latency points at
//!   0.002 / 0.064 packets/core/cycle on the wireless system;
//! * `fig3_sweep` — the fig3 low-to-mid-load latency curve (0.001 …
//!   0.032), all points in parallel;
//! * `saturated` — uniform saturation (upper bound: every component
//!   active every cycle, fast-forward must not hurt);
//! * `telemetry_overhead` — the one row whose blocks compare
//!   *observation*, not fast-forward: before = telemetry off, after =
//!   counters + time series attached, at uniform saturation (every
//!   hook fires every cycle).  The fingerprint-equality assertion
//!   between the blocks is the zero-observer-effect contract
//!   (`docs/observability.md`) checked at measurement time, and the
//!   row's speedup column reads as the overhead factor, bounded near
//!   1.0 by `tests/bench_schema.rs`;
//! * `shared_channel` — the §III.D serialized channel under the
//!   control-packet MAC at 0.002;
//! * `mac_comparison_ff` — the paper's MAC comparison at a deep-idle
//!   load (1e-5, ≈20% of the serialized channel's capacity): token +
//!   control MAC back to back on the serialized channel, the scenario
//!   the quiescence-capable MACs unlock;
//! * `deep_idle_ff` — the lifted-ceiling row: token + control MAC at
//!   Bernoulli 1e-6 over a 20× paper window, where essentially every
//!   cycle is skippable and the per-skipped-cycle *meter* cost is the
//!   whole story — under per-cycle f64 replay the after block's wall
//!   clock still scaled with the window; with the exact-sum meter's
//!   repeated charges each jump costs O(1) adds (`docs/engine.md`
//!   §"Batched energy metering");
//! * `memory_bound_ff` — read-heavy closed-loop traffic into the
//!   stacks (90% memory share, all reads, sparse load): the network
//!   drains while requests sit in the cycle-accurate memory
//!   controllers, so the driver jumps DRAM service gaps bounded by
//!   `MemoryController::next_event_at` (docs/memory.md);
//! * `substrate_mid_load` — substrate A/B fingerprint (serial I/O +
//!   wide I/O paths);
//! * `app_blackscholes` — one application workload with memory
//!   read/reply traffic through the stacks;
//! * `app_workload_ff` — the app-traffic fast-forward row: blackscholes
//!   over 4 seeds, compute-phase idle skipped in O(events) by the
//!   event-indexed `AppWorkload` schedules;
//! * `sweep_grid_pool` — an 18-point ScenarioGrid (3 architectures × 6
//!   loads) on the work-stealing pool; pool-shape invariance of the
//!   combined fingerprint is asserted before recording it;
//! * `fig3_sweep_batched` / `sweep_grid_pool_batched` — the replica-
//!   batch A/B rows: for these two the blocks compare *steppers*, not
//!   fast-forward — `before` runs the grid per-replica through
//!   `run_pool` (the legacy `Experiment::run` reference loop), `after`
//!   advances each stolen chunk as one `ReplicaBatch` in lockstep over
//!   the engine's masked fast stepper (`run_pool_batched`), idle
//!   fast-forward at its default on both sides.  The fingerprint
//!   equality the harness asserts between blocks *is* the
//!   batch-vs-sequential bit-identity oracle at paper scale.
//!
//! Each traffic scenario records a *determinism fingerprint* (packets,
//! flits, latency and energy with exact bit patterns); two engines are
//! behavior-equivalent exactly when their fingerprints match for every
//! scenario.
//!
//! Usage: `cargo run --release -p wimnet-bench --bin bench_engine --
//! [--label NAME] [--out PATH] [--reps N]` (defaults: label `engine`,
//! path `BENCH_engine.json` in the workspace root, 5 interleaved reps).

use std::time::Instant;

use wimnet_core::sweeps::{run_pool, run_pool_batched, ScenarioGrid};
use wimnet_core::{latency_curve, MacKind, MultichipSystem, SystemConfig, WirelessModel};
use wimnet_noc::{Network, NocConfig};
use wimnet_routing::{Routes, RoutingPolicy};
use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout};
use wimnet_traffic::{InjectionProcess, UniformRandom};

#[derive(Clone, Default)]
struct Fingerprint {
    packets: u64,
    flits: u64,
    latency_bits: u64,
    energy_pj_bits: u64,
    energy_pj: f64,
}

impl Fingerprint {
    /// The exact-comparison key (energy_pj is display-only).
    fn key(&self) -> (u64, u64, u64, u64) {
        (self.packets, self.flits, self.latency_bits, self.energy_pj_bits)
    }

    /// Folds another run in (multi-seed / multi-config scenarios).
    fn fold(&mut self, other: &Fingerprint) {
        self.packets += other.packets;
        self.flits += other.flits;
        self.latency_bits ^= other.latency_bits;
        self.energy_pj_bits ^= other.energy_pj_bits;
        self.energy_pj += other.energy_pj;
    }
}

struct Measured {
    wall_ms: f64,
    cycles: u64,
    fingerprint: Option<Fingerprint>,
}

/// One recorded row: per-block minimum wall clock over the reps plus
/// the (rep- and block-invariant) fingerprint.
struct Row {
    name: &'static str,
    cycles: u64,
    wall_before_ms: f64,
    wall_after_ms: f64,
    fingerprint: Option<Fingerprint>,
}

fn fingerprint_of(sys: &MultichipSystem, latency: Option<f64>) -> Fingerprint {
    let energy = sys.network().meter().total().picojoules();
    Fingerprint {
        packets: sys.network().stats().packets_delivered(),
        flits: sys.network().stats().flits_delivered(),
        latency_bits: latency.unwrap_or(f64::NAN).to_bits(),
        energy_pj_bits: energy.to_bits(),
        energy_pj: energy,
    }
}

fn run_system(config: &SystemConfig, load: InjectionProcess) -> (f64, u64, Fingerprint) {
    let mut sys = MultichipSystem::build(config).expect("system builds");
    let mut workload = UniformRandom::new(
        config.multichip.total_cores(),
        config.multichip.num_stacks,
        0.20,
        load,
        config.packet_flits,
        config.seed,
    );
    let start = Instant::now();
    let outcome = sys.run(&mut workload).expect("run completes");
    let wall = start.elapsed().as_secs_f64() * 1e3;
    let cycles = config.warmup_cycles + config.measure_cycles;
    let fp = fingerprint_of(&sys, outcome.avg_latency_cycles);
    (wall, cycles, fp)
}

fn uniform_scenario(load: f64, arch: Architecture, no_ff: bool) -> Measured {
    let mut config = SystemConfig::xcym(4, 4, arch);
    config.disable_fast_forward = no_ff;
    let (wall_ms, cycles, fp) =
        run_system(&config, InjectionProcess::Bernoulli { rate: load });
    Measured { wall_ms, cycles, fingerprint: Some(fp) }
}

fn app_run(seed: u64, wireless: WirelessModel, no_ff: bool) -> (f64, u64, Fingerprint) {
    let mut config = SystemConfig::xcym(4, 4, Architecture::Wireless);
    config.seed = seed;
    config.wireless = wireless;
    config.disable_fast_forward = no_ff;
    let mut sys = MultichipSystem::build(&config).expect("system builds");
    let mut workload = wimnet_traffic::AppWorkload::new(
        wimnet_traffic::profiles::blackscholes(),
        config.multichip.num_chips,
        config.multichip.cores_per_chip,
        config.multichip.num_stacks,
        config.seed,
    );
    let start = Instant::now();
    let outcome = sys.run(&mut workload).expect("run completes");
    let wall = start.elapsed().as_secs_f64() * 1e3;
    let cycles = config.warmup_cycles + config.measure_cycles;
    (wall, cycles, fingerprint_of(&sys, outcome.avg_latency_cycles))
}

/// A/B runner for the replica-batch rows.  `per_replica = true` (the
/// `before` block) runs the grid's experiments one at a time on the
/// work-stealing pool — the legacy `Experiment::run` reference stepper;
/// `false` (the `after` block) advances each stolen chunk as one
/// `chunk`-wide `ReplicaBatch` in lockstep over the engine's masked
/// fast stepper (`run_pool_batched`).  Idle fast-forward stays at its
/// default on **both** sides, so the row isolates exactly what replica
/// batching buys; the harness's block-equality assertion doubles as the
/// batch-vs-sequential bit-identity check at paper scale.
fn pooled_grid_run(grid: &ScenarioGrid, chunk: usize, per_replica: bool) -> Measured {
    let experiments = grid.experiments();
    let threads = wimnet_core::sweeps::default_threads();
    let start = Instant::now();
    let outcomes = if per_replica {
        run_pool(&experiments, threads, 1)
    } else {
        run_pool_batched(&experiments, threads, chunk)
    }
    .expect("grid runs");
    let wall = start.elapsed().as_secs_f64() * 1e3;
    let mut fp = Fingerprint::default();
    for (e, o) in experiments.iter().zip(&outcomes) {
        fp.fold(&Fingerprint {
            packets: o.packets_delivered(),
            // Uniform-random packets are all `packet_flits` long.
            flits: o.packets_delivered() * u64::from(e.config().packet_flits),
            latency_bits: o.avg_latency_cycles.unwrap_or(f64::NAN).to_bits(),
            energy_pj_bits: o.total_energy_nj().to_bits(),
            energy_pj: o.total_energy_nj() * 1e3,
        });
    }
    let cycles = experiments
        .iter()
        .map(|e| e.config().warmup_cycles + e.config().measure_cycles)
        .sum();
    Measured { wall_ms: wall, cycles, fingerprint: Some(fp) }
}

fn mac_run(mac: MacKind, load: f64, no_ff: bool) -> (f64, u64, Fingerprint) {
    let mut config = SystemConfig::xcym(4, 4, Architecture::Wireless);
    config.wireless = WirelessModel::SharedChannel { mac };
    config.disable_fast_forward = no_ff;
    run_system(&config, InjectionProcess::Bernoulli { rate: load })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut label = String::from("engine");
    let mut out_path: Option<String> = None;
    let mut reps = 5usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--label" => {
                label = args.get(i + 1).expect("--label NAME").clone();
                i += 2;
            }
            "--out" => {
                out_path = Some(args.get(i + 1).expect("--out PATH").clone());
                i += 2;
            }
            "--reps" => {
                reps = args
                    .get(i + 1)
                    .expect("--reps N")
                    .parse()
                    .expect("reps is a positive integer");
                assert!(reps > 0, "--reps must be positive");
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    let out_path = out_path.unwrap_or_else(|| {
        wimnet_bench::results_dir()
            .parent()
            .map(|p| p.join("BENCH_engine.json").to_string_lossy().into_owned())
            .unwrap_or_else(|| "BENCH_engine.json".to_string())
    });

    type Runner = Box<dyn Fn(bool) -> Measured>;
    let scenarios: Vec<(&'static str, Runner)> = vec![
        ("idle", Box::new(|no_ff| {
            let layout = MultichipLayout::build(&MultichipConfig::xcym(
                4,
                4,
                Architecture::Interposer,
            ))
            .expect("layout");
            let routes =
                Routes::build(layout.graph(), RoutingPolicy::default()).expect("routes");
            let mut net = Network::new(&layout, routes, NocConfig::paper()).expect("network");
            let cycles = 200_000u64;
            let start = Instant::now();
            if no_ff {
                for _ in 0..cycles {
                    net.step();
                }
            } else {
                net.run_for(cycles);
            }
            let wall = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(net.now(), cycles);
            Measured { wall_ms: wall, cycles, fingerprint: None }
        })),
        ("fig3_anchor_load", Box::new(|no_ff| {
            // Eight seeds, wall-clock summed: single realizations at
            // this load carry ±20% packet-count noise.
            let mut wall = 0.0;
            let mut cycles = 0;
            let mut fp = Fingerprint::default();
            for seed in 1..=8u64 {
                let mut config = SystemConfig::xcym(4, 4, Architecture::Wireless);
                config.seed = seed;
                config.disable_fast_forward = no_ff;
                let (w, c, f) =
                    run_system(&config, InjectionProcess::Bernoulli { rate: 0.0001 });
                wall += w;
                cycles += c;
                fp.fold(&f);
            }
            Measured { wall_ms: wall, cycles, fingerprint: Some(fp) }
        })),
        ("fig3_lowest_load", Box::new(|no_ff| {
            uniform_scenario(0.001, Architecture::Wireless, no_ff)
        })),
        ("fig3_low_load", Box::new(|no_ff| {
            uniform_scenario(0.002, Architecture::Wireless, no_ff)
        })),
        ("fig3_sweep", Box::new(|no_ff| {
            let mut config = SystemConfig::xcym(4, 4, Architecture::Wireless);
            config.disable_fast_forward = no_ff;
            let loads = [0.001, 0.002, 0.004, 0.008, 0.016, 0.032];
            let start = Instant::now();
            let curve = latency_curve(&config, &loads).expect("sweep completes");
            let wall = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(curve.len(), loads.len());
            let cycles =
                (config.warmup_cycles + config.measure_cycles) * loads.len() as u64;
            Measured { wall_ms: wall, cycles, fingerprint: None }
        })),
        ("fig3_high_load", Box::new(|no_ff| {
            uniform_scenario(0.064, Architecture::Wireless, no_ff)
        })),
        ("saturated", Box::new(|no_ff| {
            let mut config = SystemConfig::xcym(4, 4, Architecture::Wireless);
            config.disable_fast_forward = no_ff;
            let (wall_ms, cycles, fp) = run_system(&config, InjectionProcess::Saturation);
            Measured { wall_ms, cycles, fingerprint: Some(fp) }
        })),
        ("telemetry_overhead", Box::new(|off| {
            // The zero-observer-effect A/B: before = telemetry off,
            // after = counters + time series attached, on uniform
            // saturation — the engine's busiest point, where every
            // per-link/per-switch hook fires every cycle, so this is
            // the *worst case* for observation overhead.  The harness's
            // fingerprint-equality assertion between the blocks IS the
            // observer-effect check at measurement time; the speedup
            // column reads as the overhead factor (bench_schema.rs
            // bounds it at ~5%).
            let mut config = SystemConfig::xcym(4, 4, Architecture::Wireless);
            if !off {
                config.telemetry = wimnet_core::TelemetryConfig::counters();
            }
            let (wall_ms, cycles, fp) = run_system(&config, InjectionProcess::Saturation);
            Measured { wall_ms, cycles, fingerprint: Some(fp) }
        })),
        ("shared_channel", Box::new(|no_ff| {
            let (wall_ms, cycles, fp) = mac_run(MacKind::ControlPacket, 0.002, no_ff);
            Measured { wall_ms, cycles, fingerprint: Some(fp) }
        })),
        ("mac_comparison_ff", Box::new(|no_ff| {
            // The §III.D MAC ablation at a deep-idle load (1e-5
            // packets/core/cycle ≈ 20% of the serialized channel's
            // capacity): both MACs drain between packets, so the
            // quiescence-capable token and control machines carry the
            // whole row.
            let mut wall = 0.0;
            let mut cycles = 0;
            let mut fp = Fingerprint::default();
            for mac in [MacKind::Token, MacKind::ControlPacket] {
                let (w, c, f) = mac_run(mac, 0.00001, no_ff);
                wall += w;
                cycles += c;
                fp.fold(&f);
            }
            Measured { wall_ms: wall, cycles, fingerprint: Some(fp) }
        })),
        ("deep_idle_ff", Box::new(|no_ff| {
            // Token + control MAC at Bernoulli 1e-6 over a 20× paper
            // window: a handful of packets in 200k cycles, so the row
            // isolates the per-skipped-cycle accounting floor that
            // capped mac_comparison_ff at ~4× before the exact-sum
            // meter made each jump O(1) in meter adds.
            let mut wall = 0.0;
            let mut cycles = 0;
            let mut fp = Fingerprint::default();
            for mac in [MacKind::Token, MacKind::ControlPacket] {
                let mut config = SystemConfig::xcym(4, 4, Architecture::Wireless);
                config.wireless = WirelessModel::SharedChannel { mac };
                config.warmup_cycles = 2_000;
                config.measure_cycles = 198_000;
                config.disable_fast_forward = no_ff;
                let (w, c, f) =
                    run_system(&config, InjectionProcess::Bernoulli { rate: 0.000001 });
                wall += w;
                cycles += c;
                fp.fold(&f);
            }
            Measured { wall_ms: wall, cycles, fingerprint: Some(fp) }
        })),
        ("memory_bound_ff", Box::new(|no_ff| {
            // Read-heavy closed-loop memory traffic: every memory
            // packet is a read request serviced by the stack
            // controllers (queues, bank state machines, FR-FCFS),
            // answered with a full data reply.  At this load the
            // network drains between reads, so the before block pays
            // per-cycle stepping through every DRAM service gap and
            // the after block jumps them.  On the parallel-links
            // medium each skipped cycle also saves the per-cycle view
            // refresh + MAC step (same regime as app_workload_ff); on
            // wired paths active-set stepping already made the gaps
            // near-free.
            let mut config = SystemConfig::xcym(4, 4, Architecture::Wireless);
            config.wireless = WirelessModel::ParallelLinks { flits_per_cycle: 1.0 };
            config.disable_fast_forward = no_ff;
            let mut sys = MultichipSystem::build(&config).expect("system builds");
            let mut workload = UniformRandom::new(
                config.multichip.total_cores(),
                config.multichip.num_stacks,
                0.9,
                InjectionProcess::Bernoulli { rate: 0.00005 },
                config.packet_flits,
                config.seed,
            )
            .with_memory_reads(1.0, 8);
            let start = Instant::now();
            let outcome = sys.run(&mut workload).expect("run completes");
            let wall = start.elapsed().as_secs_f64() * 1e3;
            if !no_ff {
                assert!(
                    outcome.fast_forwarded_cycles > 0,
                    "memory-bound row must exercise fast-forward"
                );
            }
            let accesses: u64 = outcome.memory.iter().map(|m| m.accesses).sum();
            assert!(accesses > 0, "memory-bound row must access the stacks");
            let cycles = config.warmup_cycles + config.measure_cycles;
            Measured {
                wall_ms: wall,
                cycles,
                fingerprint: Some(fingerprint_of(&sys, outcome.avg_latency_cycles)),
            }
        })),
        ("substrate_mid_load", Box::new(|no_ff| {
            uniform_scenario(0.004, Architecture::Substrate, no_ff)
        })),
        ("app_blackscholes", Box::new(|no_ff| {
            let (wall_ms, cycles, fp) =
                app_run(0x5177, WirelessModel::default(), no_ff);
            Measured { wall_ms, cycles, fingerprint: Some(fp) }
        })),
        ("app_workload_ff", Box::new(|no_ff| {
            // Four seeds summed, on the parallel-links medium (the
            // §IV-adjacent wireless model, where every idle cycle
            // otherwise pays view refresh + MAC stepping): the
            // event-indexed AppWorkload schedule makes quiet compute
            // phases skip in O(events).
            let mut wall = 0.0;
            let mut cycles = 0;
            let mut fp = Fingerprint::default();
            for seed in 1..=4u64 {
                let (w, c, f) = app_run(
                    seed,
                    WirelessModel::ParallelLinks { flits_per_cycle: 1.0 },
                    no_ff,
                );
                wall += w;
                cycles += c;
                fp.fold(&f);
            }
            Measured { wall_ms: wall, cycles, fingerprint: Some(fp) }
        })),
        ("sweep_grid_pool", Box::new(|no_ff| {
            let grid = ScenarioGrid::new("bench-grid")
                .architectures(&Architecture::ALL)
                .loads(&[0.001, 0.002, 0.004, 0.008, 0.016, 0.032]);
            let mut experiments = grid.experiments();
            for e in experiments.iter_mut() {
                e.config_mut().disable_fast_forward = no_ff;
            }
            let fold = |outcomes: &[wimnet_core::RunOutcome]| -> Fingerprint {
                let mut fp = Fingerprint::default();
                for (e, o) in experiments.iter().zip(outcomes) {
                    fp.fold(&Fingerprint {
                        packets: o.packets_delivered(),
                        // Uniform-random packets are all `packet_flits`
                        // long.
                        flits: o.packets_delivered()
                            * u64::from(e.config().packet_flits),
                        latency_bits: o
                            .avg_latency_cycles
                            .unwrap_or(f64::NAN)
                            .to_bits(),
                        energy_pj_bits: o.total_energy_nj().to_bits(),
                        energy_pj: o.total_energy_nj() * 1e3,
                    });
                }
                fp
            };
            let start = Instant::now();
            let pooled = run_pool(&experiments, wimnet_core::sweeps::default_threads(), 1)
                .expect("grid runs");
            let wall = start.elapsed().as_secs_f64() * 1e3;
            let fp = fold(&pooled);
            // Pool-shape invariance is part of the benchmark's
            // contract: refuse to record a scheduler-dependent
            // fingerprint.  Checked once per process (first
            // fast-forward run) to keep rep cost sane.
            static POOL_CHECKED: std::sync::atomic::AtomicBool =
                std::sync::atomic::AtomicBool::new(false);
            if !no_ff && !POOL_CHECKED.swap(true, std::sync::atomic::Ordering::Relaxed) {
                for (threads, chunk) in [(1usize, 1usize), (2, 3)] {
                    let again =
                        fold(&run_pool(&experiments, threads, chunk).expect("grid reruns"));
                    assert_eq!(
                        again.key(),
                        fp.key(),
                        "pool shape ({threads}×{chunk}) changed the grid fingerprint"
                    );
                }
            }
            let cycles = experiments
                .iter()
                .map(|e| e.config().warmup_cycles + e.config().measure_cycles)
                .sum();
            Measured { wall_ms: wall, cycles, fingerprint: Some(fp) }
        })),
        ("fig3_sweep_batched", Box::new(|per_replica| {
            // The fig3 low-to-mid-load curve as a replica batch: all six
            // wireless load points advanced in lockstep by one driver
            // loop over the masked fast stepper, vs the same points run
            // one at a time through the legacy stepper.
            let grid = ScenarioGrid::new("fig3-batched")
                .loads(&[0.001, 0.002, 0.004, 0.008, 0.016, 0.032]);
            pooled_grid_run(&grid, 6, per_replica)
        })),
        ("sweep_grid_pool_batched", Box::new(|per_replica| {
            // The 18-point grid (3 architectures × 6 loads) with whole
            // replica batches scheduled per steal; chunk 6 aligns batch
            // boundaries with the architecture axis (loads are the
            // fastest axis), so every batch is single-architecture.
            let grid = ScenarioGrid::new("bench-grid-batched")
                .architectures(&Architecture::ALL)
                .loads(&[0.001, 0.002, 0.004, 0.008, 0.016, 0.032]);
            pooled_grid_run(&grid, 6, per_replica)
        })),
    ];

    // Interleaved measurement: before (full stepping) and after
    // (fast-forward) alternate within each rep; minima are recorded and
    // fingerprints must agree across every run of both blocks.
    let mut rows: Vec<Row> = Vec::new();
    for rep in 0..reps {
        eprintln!("rep {}/{reps}", rep + 1);
        for (si, (name, run)) in scenarios.iter().enumerate() {
            let before = run(true);
            let after = run(false);
            if let (Some(b), Some(a)) = (&before.fingerprint, &after.fingerprint) {
                assert_eq!(
                    b.key(),
                    a.key(),
                    "{name}: fast-forward changed the outcome — contract violation"
                );
            }
            assert_eq!(before.cycles, after.cycles, "{name}: cycle counts diverged");
            if rep == 0 {
                rows.push(Row {
                    name,
                    cycles: after.cycles,
                    wall_before_ms: before.wall_ms,
                    wall_after_ms: after.wall_ms,
                    fingerprint: after.fingerprint,
                });
            } else {
                let row = &mut rows[si];
                row.wall_before_ms = row.wall_before_ms.min(before.wall_ms);
                row.wall_after_ms = row.wall_after_ms.min(after.wall_ms);
                if let (Some(prev), Some(new)) = (&row.fingerprint, &after.fingerprint) {
                    assert_eq!(prev.key(), new.key(), "{name}: fingerprint drifted across reps");
                }
            }
        }
    }

    // Render JSON by hand: the report shape is fixed and tiny, and the
    // serde shim's derive output would bloat the field names.
    let emit_block = |json: &mut String, which: &str, block_label: &str, wall_of: &dyn Fn(&Row) -> f64| {
        json.push_str(&format!("  \"{which}\": {{\n"));
        json.push_str(&format!("    \"label\": \"{block_label}\",\n"));
        json.push_str("    \"scenarios\": {\n");
        for (i, r) in rows.iter().enumerate() {
            let wall = wall_of(r);
            let cps = r.cycles as f64 / (wall / 1e3);
            json.push_str(&format!(
                "      \"{}\": {{\"wall_ms\": {:.3}, \"cycles\": {}, \"cycles_per_sec\": {:.0}",
                r.name, wall, r.cycles, cps
            ));
            if let Some(fp) = &r.fingerprint {
                json.push_str(&format!(
                    ", \"fingerprint\": {{\"packets\": {}, \"flits\": {}, \"latency_bits\": {}, \
                     \"energy_pj_bits\": {}, \"energy_pj\": {}}}",
                    fp.packets, fp.flits, fp.latency_bits, fp.energy_pj_bits, fp.energy_pj
                ));
            }
            json.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
        }
        json.push_str("    }\n  }");
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"benchmark\": \"engine wall-clock, 4C4M paper windows; A/B of one binary: \
         before = full per-cycle stepping (disable_fast_forward), after = idle \
         fast-forward; wall_ms is the best of {reps} interleaved reps; fingerprints \
         asserted bit-identical across every run of both blocks\",\n"
    ));
    json.push_str(
        "  \"regenerate\": \"cargo run --release -p wimnet-bench --bin bench_engine\",\n",
    );
    // The engine version is part of the record: outcomes (and so the
    // fingerprints below) are only comparable within one version, and
    // bench_schema.rs asserts this string matches
    // `wimnet_core::ENGINE_VERSION` so an outcome-changing PR cannot
    // bump one without regenerating the other.
    json.push_str(&format!(
        "  \"engine_version\": \"{}\",\n",
        wimnet_core::ENGINE_VERSION
    ));
    emit_block(
        &mut json,
        "before",
        &format!("{label}: full stepping (idle fast-forward disabled)"),
        &|r| r.wall_before_ms,
    );
    json.push_str(",\n");
    emit_block(
        &mut json,
        "after",
        &format!(
            "{label}: universal idle fast-forward (quiescence-capable control/token MACs, \
             event-indexed AppWorkload)"
        ),
        &|r| r.wall_after_ms,
    );
    json.push_str(",\n  \"speedup\": {\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {:.2}{}\n",
            r.name,
            r.wall_before_ms / r.wall_after_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"notes\": {\n");
    json.push_str(
        "    \"blocks\": \"both blocks run the same engine build; the before block \
         steps every cycle, so speedups isolate exactly what idle fast-forward buys \
         per scenario — bit-identity between the blocks is asserted at measurement \
         time, not just schema-checked\",\n",
    );
    json.push_str(
        "    \"mac_comparison_ff\": \"token + control-packet MACs on the serialized \
         channel at Bernoulli 1e-5 (about 20% of channel capacity): both MACs now \
         declare quiescence when drained (closed-form idle_advance), so the paper's \
         MAC-comparison scenarios fast-forward through inter-packet idle\",\n",
    );
    json.push_str(
        "    \"app_workload_ff\": \"blackscholes over 4 seeds on the parallel-links \
         medium: AppWorkload's event-indexed phase/fire schedules (GeometricGaps per \
         phase segment) give an exact next_event_at, so the ~40-50% of cycles that \
         are compute-phase idle skip in O(events) — and each skipped cycle saves \
         the per-cycle medium view refresh + MAC step; on the wired point-to-point \
         path (app_blackscholes) active-set stepping already made idle cycles \
         near-free, so the same skip is wall-clock neutral there\",\n",
    );
    json.push_str(
        "    \"deep_idle_ff\": \"token + control-packet MACs at Bernoulli 1e-6 over a \
         200k-cycle window (20x the paper window): essentially every cycle is \
         skippable, so the row isolates the per-skipped-cycle meter cost.  Before \
         the exact-sum meter, every jump replayed k per-cycle f64 adds to keep \
         energy bits identical to stepping (float addition is not associative), \
         pinning this regime to O(k); the superaccumulator's add_repeated makes \
         each jump O(1) meter adds with the same read-out bits, which is what \
         lifts the serialized-MAC rows' ceiling\",\n",
    );
    json.push_str(
        "    \"memory_bound_ff\": \"uniform random at Bernoulli 5e-5, 90% memory share, \
         100% reads, on the parallel-links medium: every request is serviced by the \
         cycle-accurate per-stack controllers (bounded channel queues, bank state \
         machines, FR-FCFS) and answered with a data reply.  The network drains \
         between reads, so the before block steps through every DRAM service gap \
         while the after block jumps to the controllers' exact next_event_at \
         (docs/memory.md), saving the per-cycle medium view refresh along the way\",\n",
    );
    json.push_str(
        "    \"telemetry_overhead\": \"before = telemetry off, after = per-component \
         counters + cycle-bucketed time series attached, at uniform saturation — the \
         worst case for observation cost, since every per-link/per-switch hook fires \
         every cycle.  The asserted fingerprint equality between the blocks is the \
         zero-observer-effect contract (docs/observability.md) enforced at \
         measurement time; the speedup column is the overhead factor and \
         tests/bench_schema.rs bounds it near 1.0\",\n",
    );
    json.push_str(
        "    \"replica_batch_rows\": \"fig3_sweep_batched and sweep_grid_pool_batched \
         compare steppers, not fast-forward: before = per-replica run_pool over the \
         legacy reference loop, after = run_pool_batched advancing each chunk as one \
         ReplicaBatch in lockstep over the masked fast stepper (word bitsets of busy \
         links/switches/sources; fused per-switch sweep+RC+VA and ST passes over \
         128-bit busy-VC masks), idle fast-forward at its default in both blocks.  \
         Lanes round-robin in cache-friendly slices (docs/engine.md); the asserted \
         block fingerprint equality is the batch-vs-sequential bit-identity oracle \
         at paper scale\",\n",
    );
    json.push_str(
        "    \"app_rows\": \"absolute app-row values differ from pre-PR4 files: the \
         AppWorkload realization moved from a sequential RNG walk to counter-based \
         event-indexed schedules (same phase/injection laws; rates re-verified \
         statistically in crates/traffic tests).  Since the memory-controller PR \
         the app rows also service their reads through the queued controllers \
         instead of the closed-form stack model (equivalent timing for isolated \
         requests, bank-parallel under bursts), moving app-row absolutes again\"\n",
    );
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write BENCH json");
    println!("{json}");
    println!("wrote {out_path}");
}
