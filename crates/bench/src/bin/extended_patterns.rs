//! Extended evaluation (beyond the paper): classic adversarial
//! permutation patterns on the 4C4M systems.
//!
//! The paper evaluates uniform random and application traffic only.
//! Permutations stress specific resources — transpose and bit-complement
//! hammer the bisection, hotspot concentrates on a few ejection ports —
//! and show where single-hop wireless links help most.

use wimnet_bench::{banner, results_dir, scale_from_args};
use wimnet_core::report::{format_table, write_csv};
use wimnet_core::{Experiment, SystemConfig};
use wimnet_topology::Architecture;
use wimnet_traffic::TrafficPattern;

fn main() {
    let scale = scale_from_args();
    banner("Extended — permutation patterns (4C4M, 20% memory)", scale);
    let load = 0.004;
    let patterns = vec![
        TrafficPattern::Transpose,
        TrafficPattern::BitComplement,
        TrafficPattern::BitReverse,
        TrafficPattern::Shuffle,
        TrafficPattern::Neighbor,
        TrafficPattern::Hotspot { spots: vec![0, 21, 42, 63], fraction: 0.5 },
    ];
    let mut table = Vec::new();
    for pattern in patterns {
        let mut row = vec![pattern.label().to_string()];
        let mut gains = Vec::new();
        for arch in [Architecture::Interposer, Architecture::Wireless] {
            let cfg = scale.apply(SystemConfig::xcym(4, 4, arch));
            let o = Experiment::pattern(&cfg, pattern.clone(), load)
                .run()
                .expect("pattern run");
            row.push(
                o.avg_latency_cycles
                    .map(|l| format!("{l:.1}"))
                    .unwrap_or_else(|| "-".into()),
            );
            row.push(format!("{:.2}", o.packet_energy_nj()));
            gains.push((o.avg_latency_cycles, o.packet_energy_nj()));
        }
        if let (Some(il), Some(wl)) = (gains[0].0, gains[1].0) {
            row.push(format!("{:+.1}%", (1.0 - wl / il) * 100.0));
        } else {
            row.push("-".into());
        }
        row.push(format!("{:+.1}%", (1.0 - gains[1].1 / gains[0].1) * 100.0));
        table.push(row);
    }
    println!(
        "{}",
        format_table(
            &[
                "pattern",
                "ip lat",
                "ip nJ",
                "wl lat",
                "wl nJ",
                "lat gain",
                "energy gain",
            ],
            &table,
        )
    );
    println!(
        "reading: bisection-bound permutations (transpose, bit-complement) \
         profit most from single-hop wireless; neighbour traffic, which \
         never leaves the chip, profits least."
    );
    let path = results_dir().join("extended_patterns.csv");
    write_csv(
        &path,
        &["pattern", "ip_lat", "ip_nj", "wl_lat", "wl_nj", "lat_gain", "energy_gain"],
        &table,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}
