//! Fig 2: peak achievable bandwidth per core and average packet energy
//! for 4C4M Substrate / Interposer / Wireless under uniform random
//! traffic with 20% memory accesses at saturation.

use wimnet_bench::{banner, results_dir, scale_from_args};
use wimnet_core::experiments::fig2;
use wimnet_core::report::{format_table, write_csv};

fn main() {
    let scale = scale_from_args();
    banner(
        "Fig 2 — peak bandwidth per core & average packet energy (4C4M)",
        scale,
    );
    let rows = fig2(scale).expect("fig2 experiments");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.2}", r.peak_bandwidth_gbps_per_core),
                format!("{:.2}", r.avg_packet_energy_nj),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["architecture", "peak bandwidth/core (Gbps)", "avg packet energy (nJ)"],
            &table,
        )
    );
    println!(
        "paper shape: Wireless highest bandwidth / lowest energy; \
         Interposer beats Substrate on both."
    );
    let path = results_dir().join("fig2.csv");
    write_csv(
        &path,
        &["architecture", "peak_bandwidth_gbps_per_core", "avg_packet_energy_nj"],
        &table,
    )
    .expect("write fig2.csv");
    println!("wrote {}", path.display());
}
