//! Fig 3: average packet latency versus injection load for the three
//! 4C4M architectures under uniform random traffic (20% memory).

use wimnet_bench::{banner, results_dir, scale_from_args};
use wimnet_core::experiments::{fig3, fig3_loads};
use wimnet_core::report::{fmt_opt, format_table, write_csv};

fn main() {
    let scale = scale_from_args();
    banner("Fig 3 — average packet latency vs injection load (4C4M)", scale);
    let series = fig3(scale).expect("fig3 experiments");
    let loads = fig3_loads(scale);

    let mut headers: Vec<String> = vec!["load (pkt/core/cycle)".into()];
    headers.extend(series.iter().map(|s| format!("{} (cycles)", s.label)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let rows: Vec<Vec<String>> = loads
        .iter()
        .enumerate()
        .map(|(i, &load)| {
            let mut row = vec![format!("{load:.3}")];
            for s in &series {
                row.push(fmt_opt(s.points[i].1, 1));
            }
            row
        })
        .collect();
    println!("{}", format_table(&header_refs, &rows));
    println!(
        "paper shape: Wireless lowest latency at every load (shortest \
         average paths); Substrate saturates earliest."
    );
    let path = results_dir().join("fig3.csv");
    write_csv(&path, &header_refs, &rows).expect("write fig3.csv");
    println!("wrote {}", path.display());
}
