//! Fig 4: percentage gain in bandwidth and packet energy of the
//! wireless system over the interposer baseline as a 64-core system is
//! disintegrated into 1, 4 and 8 chips (chip-to-chip traffic rises from
//! 20% to 90%).

use wimnet_bench::{banner, results_dir, scale_from_args};
use wimnet_core::experiments::fig4;
use wimnet_core::report::{format_table, write_csv};

fn main() {
    let scale = scale_from_args();
    banner(
        "Fig 4 — % gain (Wireless vs Interposer) vs chip-to-chip traffic",
        scale,
    );
    let rows = fig4(scale).expect("fig4 experiments");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.1}", r.off_chip_traffic_pct),
                format!("{:+.1}", r.bandwidth_gain_pct),
                format!("{:+.1}", r.energy_gain_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["configuration", "off-chip traffic (%)", "bandwidth gain (%)", "energy gain (%)"],
            &table,
        )
    );
    println!(
        "paper shape: wireless wins at every disintegration level \
         (the paper further reports gains shrinking with chip count; see \
         EXPERIMENTS.md for where and why this reproduction diverges)."
    );
    let path = results_dir().join("fig4.csv");
    write_csv(
        &path,
        &["configuration", "off_chip_traffic_pct", "bandwidth_gain_pct", "energy_gain_pct"],
        &table,
    )
    .expect("write fig4.csv");
    println!("wrote {}", path.display());
}
