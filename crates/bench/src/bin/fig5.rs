//! Fig 5: percentage gain in bandwidth and packet energy of the 4C4M
//! wireless system over the interposer baseline as the memory-access
//! share sweeps 20% → 80%.

use wimnet_bench::{banner, results_dir, scale_from_args};
use wimnet_core::experiments::fig5;
use wimnet_core::report::{format_table, write_csv};

fn main() {
    let scale = scale_from_args();
    banner("Fig 5 — % gain (Wireless vs Interposer) vs memory accesses", scale);
    let rows = fig5(scale).expect("fig5 experiments");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.memory_access_pct),
                format!("{:+.1}", r.bandwidth_gain_pct),
                format!("{:+.1}", r.energy_gain_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["memory access", "bandwidth gain (%)", "energy gain (%)"],
            &table,
        )
    );
    println!(
        "paper shape: wireless wins at every memory share; the paper's \
         gains fall toward ~10%/35% asymptotes while this reproduction's \
         energy gain rises with memory share (see EXPERIMENTS.md: the \
         trend in the paper is inconsistent with its own 6.5 pJ/bit wide \
         I/O vs 2.3 pJ/bit wireless constants)."
    );
    let path = results_dir().join("fig5.csv");
    write_csv(
        &path,
        &["memory_access_pct", "bandwidth_gain_pct", "energy_gain_pct"],
        &table,
    )
    .expect("write fig5.csv");
    println!("wrote {}", path.display());
}
