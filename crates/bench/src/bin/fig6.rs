//! Fig 6: percentage gain in packet latency and packet energy of the
//! 4C4M wireless system over the interposer baseline under
//! application-specific (SynFull-substitute) traffic.

use wimnet_bench::{banner, results_dir, scale_from_args};
use wimnet_core::experiments::fig6;
use wimnet_core::report::{format_table, write_csv};

fn main() {
    let scale = scale_from_args();
    banner(
        "Fig 6 — % gain (Wireless vs Interposer), application traffic (4C4M)",
        scale,
    );
    let rows = fig6(scale).expect("fig6 experiments");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.clone(),
                r.suite.clone(),
                format!("{:+.1}", r.latency_gain_pct),
                format!("{:+.1}", r.energy_gain_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["application", "suite", "latency gain (%)", "energy gain (%)"],
            &table,
        )
    );
    let lat_avg: f64 =
        rows.iter().map(|r| r.latency_gain_pct).sum::<f64>() / rows.len() as f64;
    let e_avg: f64 =
        rows.iter().map(|r| r.energy_gain_pct).sum::<f64>() / rows.len() as f64;
    println!("average gains: latency {lat_avg:+.1}%, energy {e_avg:+.1}%");
    println!("paper: average reductions of 54% (latency) and 45% (energy).");
    let path = results_dir().join("fig6.csv");
    write_csv(
        &path,
        &["application", "suite", "latency_gain_pct", "energy_gain_pct"],
        &table,
    )
    .expect("write fig6.csv");
    println!("wrote {}", path.display());
}
