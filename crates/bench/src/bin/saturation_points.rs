//! Saturation-point summary: the injection load at which each
//! architecture's latency diverges (3× its zero-load latency) — the
//! quantitative version of the Fig 3 saturation discussion.

use wimnet_bench::{banner, results_dir, scale_from_args};
use wimnet_core::report::{format_table, write_csv};
use wimnet_core::{find_saturation_load, SystemConfig};
use wimnet_topology::Architecture;

fn main() {
    let scale = scale_from_args();
    banner("Saturation points — load where latency reaches 3x zero-load", scale);
    let mut table = Vec::new();
    for arch in [Architecture::Interposer, Architecture::Wireless] {
        let cfg = scale.apply(SystemConfig::xcym(4, 4, arch));
        match find_saturation_load(&cfg, 3.0, 0.005) {
            Ok(load) => table.push(vec![
                cfg.label(),
                format!("{load:.4}"),
                format!("{:.2}", load * 64.0 * 32.0 * 2.5), // Gbps offered system-wide
            ]),
            Err(e) => table.push(vec![cfg.label(), format!("{e}"), "-".into()]),
        }
    }
    println!(
        "{}",
        format_table(
            &["architecture", "saturation load (pkt/core/cycle)", "offered at saturation (Gbps/core x packet)"],
            &table,
        )
    );
    println!(
        "note: the substrate is omitted — its measured latency plateaus \
         from survivor bias past saturation, so the threshold criterion \
         cannot bracket it (see EXPERIMENTS.md, Fig 3)."
    );
    let path = results_dir().join("saturation_points.csv");
    write_csv(&path, &["architecture", "saturation_load", "offered_gbps"], &table)
        .expect("write csv");
    println!("wrote {}", path.display());
}
