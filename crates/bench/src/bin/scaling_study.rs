//! Extended evaluation (beyond the paper): scaling the package from 1
//! to 16 chiplets at constant 64-core compute — how far does the
//! "seamless, scalable" claim of §I carry?

use wimnet_bench::{banner, results_dir, scale_from_args};
use wimnet_core::report::{format_table, write_csv};
use wimnet_core::{Experiment, SystemConfig};
use wimnet_topology::Architecture;

fn main() {
    let scale = scale_from_args();
    banner("Extended — chiplet scaling at constant compute (64 cores)", scale);
    let mut table = Vec::new();
    for chips in [1usize, 2, 4, 8, 16] {
        let mut row = vec![format!("{chips} chips x {} cores", 64 / chips)];
        for arch in [Architecture::Interposer, Architecture::Wireless] {
            let cfg = scale.apply(SystemConfig::xcym(chips, 4, arch));
            match Experiment::saturation(&cfg, 0.20).run() {
                Ok(o) => {
                    row.push(format!("{:.2}", o.bandwidth_gbps_per_core));
                    row.push(format!("{:.2}", o.packet_energy_nj()));
                }
                Err(e) => {
                    row.push(format!("{e}"));
                    row.push("-".into());
                }
            }
        }
        table.push(row);
    }
    println!(
        "{}",
        format_table(
            &[
                "configuration",
                "ip bw/core (Gbps)",
                "ip energy (nJ)",
                "wl bw/core (Gbps)",
                "wl energy (nJ)",
            ],
            &table,
        )
    );
    println!(
        "reading: interposer efficiency decays with every extra boundary \
         a packet must cross; wireless holds its single-hop energy nearly \
         flat — the paper's core scalability argument, extended to 16 \
         chiplets."
    );
    let path = results_dir().join("scaling_study.csv");
    write_csv(
        &path,
        &["configuration", "ip_bw", "ip_energy_nj", "wl_bw", "wl_energy_nj"],
        &table,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}
