//! `sweep` — the resumable, shardable sweep front-end over the result
//! catalog (`wimnet_core::catalog`, `docs/sweeps.md` "The result
//! catalog").
//!
//! A sweep is a [`ScenarioGrid`] declared on the command line; every
//! outcome is memoized under its content fingerprint in a catalog
//! directory, so repeated submits only simulate what the catalog does
//! not already hold — a killed sweep resumes from its partial catalog
//! and converges on the bit-identical final vector.
//!
//! ```text
//! sweep submit --catalog results/catalog --quick \
//!       --archs wireless,substrate --loads 0.001,0.004     # simulate misses
//! sweep submit ... --shard 0/4                             # this process's quarter
//! sweep status ...                                         # cached / missing counts
//! sweep status ... --shard 0/4 --json                      # machine-readable, per shard
//! sweep fetch  ... > outcomes.json                         # full JSON result vector
//! sweep checkpoint ... --every 200 --kill-at 500           # run, snapshot, die mid-point
//! sweep resume ...                                         # finish from the snapshots
//! sweep trace  ... --out run.trace.json                    # Perfetto trace of point 0
//! ```
//!
//! `status --json` emits one document with hit / miss / pending /
//! quarantine counts per shard (the shard count comes from `--shard
//! I/N`; default one shard), so fleet drivers can poll convergence
//! without scraping the human text.  `trace` re-runs the grid's first
//! point with `TelemetryConfig::tracing()` and writes validated
//! Chrome-trace/Perfetto JSON (`docs/observability.md` "Trace
//! schema") — by the zero-observer-effect contract the traced run's
//! outcome is bit-identical to the cataloged one.
//!
//! `checkpoint`/`resume` add **mid-point** resumability on top of the
//! catalog's per-point kind: misses snapshot their full engine state
//! every `--every` cycles into a checkpoint store
//! (`wimnet_core::checkpoint`, `docs/checkpoint.md`), and a killed
//! sweep's next run warm-starts each point from its latest snapshot —
//! producing the bit-identical outcome vector of an uninterrupted
//! submit (the CI checkpoint smoke diffs the two fetches).
//!
//! Exit codes: `0` success, `1` usage error, `2` fetch on an
//! incomplete catalog, `3` submit aborted by `--abort-after-misses`
//! or checkpoint killed by `--kill-at` (the CI smokes' simulated
//! kills).

use std::path::PathBuf;
use std::process::ExitCode;

use serde::{Serialize, Value};
use wimnet_bench::results_dir;
use wimnet_core::catalog::Catalog;
use wimnet_core::checkpoint::CheckpointStore;
use wimnet_core::sweeps::default_threads;
use wimnet_core::{Scale, ScenarioGrid, TelemetryConfig, WirelessModel, ENGINE_VERSION};
use wimnet_core::system::MacKind;
use wimnet_telemetry::validate_chrome_trace;
use wimnet_memory::SchedulerPolicy;
use wimnet_topology::Architecture;
use wimnet_traffic::{AddressStreamSpec, InjectionProcess};

fn usage() -> String {
    "usage: sweep <submit|status|fetch|checkpoint|resume|trace> [options]\n\
     \n\
     grid axes (defaults: the paper's 4C4M wireless saturation point):\n\
       --name NAME            grid name (reporting only)\n\
       --quick | --paper      simulation scale (default: paper)\n\
       --archs LIST           wireless,interposer,substrate\n\
       --chips LIST           chip counts, e.g. 1,4,8\n\
       --stacks LIST          stack counts\n\
       --wireless LIST        p2p | p2p:FLITS/CONC | parallel:FLITS | token | control\n\
       --mem-fractions LIST   memory-access shares, e.g. 0.2,0.8\n\
       --streams LIST         seq | stride:BLKS | uniform:BLKS | hotrow:HOT/REGION@FRAC\n\
       --schedulers LIST      frfcfs,fcfs\n\
       --loads LIST           Bernoulli rates (replaces the saturation default)\n\
       --saturation           add the saturation point to the injection axis\n\
       --seeds LIST           u64 seeds, decimal or 0x-hex\n\
       --read-share X         read-request share of memory packets\n\
     \n\
     catalog / run options:\n\
       --catalog DIR          catalog directory (default: results/catalog)\n\
       --threads N            pool threads (default: all cores)\n\
       --chunk N              steal/batch width (default: 4)\n\
       --shard I/N            submit only shard I of N (default 0/1)\n\
       --abort-after-misses K simulate a crash after K fresh points (exit 3)\n\
       --json                 status: machine-readable per-shard counts\n\
       --out FILE             fetch/trace: write JSON here instead of stdout\n\
     \n\
     checkpoint / resume options:\n\
       --checkpoints DIR      snapshot store (default: results/checkpoints)\n\
       --every N              snapshot cadence in cycles (default: 500)\n\
       --kill-at CYCLE        checkpoint: die before any iteration at or\n\
                              past CYCLE, leaving snapshots behind (exit 3)\n"
        .to_string()
}

struct Cli {
    command: String,
    grid: ScenarioGrid,
    catalog_dir: PathBuf,
    checkpoints_dir: PathBuf,
    threads: usize,
    chunk: usize,
    shard: (usize, usize),
    abort_after_misses: Option<usize>,
    kill_at: Option<u64>,
    json: bool,
    out: Option<PathBuf>,
}

fn split_list(v: &str) -> Vec<&str> {
    v.split(',').map(str::trim).filter(|s| !s.is_empty()).collect()
}

fn parse_list<T, E: std::fmt::Display>(
    flag: &str,
    v: &str,
    parse: impl Fn(&str) -> Result<T, E>,
) -> Result<Vec<T>, String> {
    let items: Result<Vec<T>, String> = split_list(v)
        .into_iter()
        .map(|s| parse(s).map_err(|e| format!("{flag} {s:?}: {e}")))
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(format!("{flag} needs at least one value"));
    }
    Ok(items)
}

fn parse_arch(s: &str) -> Result<Architecture, String> {
    match s {
        "wireless" => Ok(Architecture::Wireless),
        "interposer" => Ok(Architecture::Interposer),
        "substrate" => Ok(Architecture::Substrate),
        other => Err(format!("unknown architecture {other:?}")),
    }
}

fn parse_wireless(s: &str) -> Result<WirelessModel, String> {
    if s == "p2p" {
        return Ok(WirelessModel::default());
    }
    if s == "token" {
        return Ok(WirelessModel::SharedChannel { mac: MacKind::Token });
    }
    if s == "control" {
        return Ok(WirelessModel::SharedChannel { mac: MacKind::ControlPacket });
    }
    if let Some(rest) = s.strip_prefix("p2p:") {
        let (flits, conc) = rest
            .split_once('/')
            .ok_or_else(|| "p2p wants p2p:FLITS/CONC".to_string())?;
        return Ok(WirelessModel::PointToPoint {
            flits_per_cycle: flits.parse().map_err(|e| format!("{e}"))?,
            max_concurrent: conc.parse().map_err(|e| format!("{e}"))?,
        });
    }
    if let Some(flits) = s.strip_prefix("parallel:") {
        return Ok(WirelessModel::ParallelLinks {
            flits_per_cycle: flits.parse().map_err(|e| format!("{e}"))?,
        });
    }
    Err(format!("unknown wireless model {s:?}"))
}

fn parse_stream(s: &str) -> Result<AddressStreamSpec, String> {
    if s == "seq" {
        return Ok(AddressStreamSpec::Sequential);
    }
    if let Some(blocks) = s.strip_prefix("stride:") {
        return Ok(AddressStreamSpec::Strided {
            stride_blocks: blocks.parse().map_err(|e| format!("{e}"))?,
        });
    }
    if let Some(blocks) = s.strip_prefix("uniform:") {
        return Ok(AddressStreamSpec::Uniform {
            region_blocks: blocks.parse().map_err(|e| format!("{e}"))?,
        });
    }
    if let Some(rest) = s.strip_prefix("hotrow:") {
        let (sizes, frac) = rest
            .split_once('@')
            .ok_or_else(|| "hotrow wants hotrow:HOT/REGION@FRAC".to_string())?;
        let (hot, region) = sizes
            .split_once('/')
            .ok_or_else(|| "hotrow wants hotrow:HOT/REGION@FRAC".to_string())?;
        return Ok(AddressStreamSpec::HotRow {
            region_blocks: region.parse().map_err(|e| format!("{e}"))?,
            hot_blocks: hot.parse().map_err(|e| format!("{e}"))?,
            hot_fraction: frac.parse().map_err(|e| format!("{e}"))?,
        });
    }
    Err(format!("unknown address stream {s:?}"))
}

fn parse_scheduler(s: &str) -> Result<SchedulerPolicy, String> {
    match s {
        "frfcfs" => Ok(SchedulerPolicy::FrFcfs),
        "fcfs" => Ok(SchedulerPolicy::Fcfs),
        other => Err(format!("unknown scheduler {other:?}")),
    }
}

fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|e| format!("{e}"))
}

fn parse_shard(s: &str) -> Result<(usize, usize), String> {
    let (i, n) = s.split_once('/').ok_or_else(|| "--shard wants I/N".to_string())?;
    let i: usize = i.parse().map_err(|e| format!("{e}"))?;
    let n: usize = n.parse().map_err(|e| format!("{e}"))?;
    if n == 0 || i >= n {
        return Err(format!("--shard {s:?}: need 0 <= I < N"));
    }
    Ok((i, n))
}

fn parse_cli() -> Result<Cli, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match args.first() {
        Some(c)
            if ["submit", "status", "fetch", "checkpoint", "resume", "trace"]
                .contains(&c.as_str()) =>
        {
            c.clone()
        }
        _ => return Err(usage()),
    };

    let mut name = "sweep".to_string();
    let mut scale = Scale::Paper;
    let mut grid_archs: Option<Vec<Architecture>> = None;
    let mut chips: Option<Vec<usize>> = None;
    let mut stacks: Option<Vec<usize>> = None;
    let mut wireless: Option<Vec<WirelessModel>> = None;
    let mut mem_fractions: Option<Vec<f64>> = None;
    let mut streams: Option<Vec<AddressStreamSpec>> = None;
    let mut schedulers: Option<Vec<SchedulerPolicy>> = None;
    let mut loads: Option<Vec<f64>> = None;
    let mut saturation = false;
    let mut seeds: Option<Vec<u64>> = None;
    let mut read_share: Option<f64> = None;
    let mut catalog_dir: Option<PathBuf> = None;
    let mut checkpoints_dir: Option<PathBuf> = None;
    let mut every = 500u64;
    let mut kill_at: Option<u64> = None;
    let mut threads = default_threads();
    let mut chunk = 4usize;
    let mut shard = (0usize, 1usize);
    let mut abort_after_misses: Option<usize> = None;
    let mut json = false;
    let mut out: Option<PathBuf> = None;

    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--quick" | "-q" => scale = Scale::Quick,
            "--paper" => scale = Scale::Paper,
            "--saturation" => saturation = true,
            "--name" => name = value("--name")?,
            "--archs" => {
                grid_archs = Some(parse_list("--archs", &value("--archs")?, parse_arch)?)
            }
            "--chips" => {
                chips = Some(parse_list("--chips", &value("--chips")?, str::parse::<usize>)?)
            }
            "--stacks" => {
                stacks =
                    Some(parse_list("--stacks", &value("--stacks")?, str::parse::<usize>)?)
            }
            "--wireless" => {
                wireless =
                    Some(parse_list("--wireless", &value("--wireless")?, parse_wireless)?)
            }
            "--mem-fractions" => {
                mem_fractions = Some(parse_list(
                    "--mem-fractions",
                    &value("--mem-fractions")?,
                    str::parse::<f64>,
                )?)
            }
            "--streams" => {
                streams = Some(parse_list("--streams", &value("--streams")?, parse_stream)?)
            }
            "--schedulers" => {
                schedulers = Some(parse_list(
                    "--schedulers",
                    &value("--schedulers")?,
                    parse_scheduler,
                )?)
            }
            "--loads" => {
                loads = Some(parse_list("--loads", &value("--loads")?, str::parse::<f64>)?)
            }
            "--seeds" => seeds = Some(parse_list("--seeds", &value("--seeds")?, parse_seed)?),
            "--read-share" => {
                read_share = Some(
                    value("--read-share")?
                        .parse()
                        .map_err(|e| format!("--read-share: {e}"))?,
                )
            }
            "--catalog" => catalog_dir = Some(PathBuf::from(value("--catalog")?)),
            "--checkpoints" => {
                checkpoints_dir = Some(PathBuf::from(value("--checkpoints")?))
            }
            "--every" => {
                every = value("--every")?.parse().map_err(|e| format!("--every: {e}"))?
            }
            "--kill-at" => {
                kill_at = Some(
                    value("--kill-at")?
                        .parse()
                        .map_err(|e| format!("--kill-at: {e}"))?,
                )
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--chunk" => {
                chunk =
                    value("--chunk")?.parse().map_err(|e| format!("--chunk: {e}"))?
            }
            "--shard" => shard = parse_shard(&value("--shard")?)?,
            "--abort-after-misses" => {
                abort_after_misses = Some(
                    value("--abort-after-misses")?
                        .parse()
                        .map_err(|e| format!("--abort-after-misses: {e}"))?,
                )
            }
            "--json" => json = true,
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            other => return Err(format!("unknown flag {other:?}\n\n{}", usage())),
        }
    }

    let mut grid = ScenarioGrid::new(name).scale(scale);
    if let Some(v) = grid_archs {
        grid = grid.architectures(&v);
    }
    if let Some(v) = chips {
        grid = grid.chips(&v);
    }
    if let Some(v) = stacks {
        grid = grid.stacks(&v);
    }
    if let Some(v) = wireless {
        grid = grid.wireless_models(&v);
    }
    if let Some(v) = mem_fractions {
        grid = grid.memory_fractions(&v);
    }
    if let Some(v) = streams {
        grid = grid.address_streams(&v);
    }
    if let Some(v) = schedulers {
        grid = grid.schedulers(&v);
    }
    let mut injections: Vec<InjectionProcess> = loads
        .map(|ls| {
            ls.into_iter()
                .map(|rate| InjectionProcess::Bernoulli { rate })
                .collect()
        })
        .unwrap_or_default();
    if saturation || injections.is_empty() {
        injections.push(InjectionProcess::Saturation);
    }
    grid = grid.injections(&injections);
    if let Some(v) = seeds {
        grid = grid.seeds(&v);
    }
    if let Some(share) = read_share {
        if !(0.0..=1.0).contains(&share) {
            return Err(format!("--read-share {share} outside [0, 1]"));
        }
        grid = grid.read_share(share);
    }
    if every == 0 {
        return Err("--every must be positive (the cadence is the resume grain)".into());
    }
    grid = grid.checkpoint_every(every);

    Ok(Cli {
        command,
        grid,
        catalog_dir: catalog_dir.unwrap_or_else(|| results_dir().join("catalog")),
        checkpoints_dir: checkpoints_dir
            .unwrap_or_else(|| results_dir().join("checkpoints")),
        threads,
        chunk,
        shard,
        abort_after_misses,
        kill_at,
        json,
        out,
    })
}

fn submit(cli: &Cli, catalog: &Catalog) -> Result<ExitCode, String> {
    let (shard, shards) = cli.shard;
    let range = cli.grid.shard_range(shard, shards);
    println!(
        "submit: grid {:?}, {} points, shard {shard}/{shards} -> indices {}..{}",
        cli.grid.name(),
        cli.grid.len(),
        range.start,
        range.end
    );
    let swept = catalog.sweep_temps();
    if swept > 0 {
        println!("cleared {swept} abandoned temp file(s) from a crashed writer");
    }
    let report = cli
        .grid
        .run_cached_shard_with_budget(
            catalog,
            shard,
            shards,
            cli.threads,
            cli.chunk,
            cli.abort_after_misses,
        )
        .map_err(|e| format!("{e}"))?;
    println!(
        "hits {} / simulated {} / pending {}  (catalog {} holds {} entries)",
        report.hits,
        report.misses,
        report.pending,
        catalog.dir().display(),
        catalog.len()
    );
    if catalog.quarantined() > 0 {
        println!("quarantined {} unserveable entr(ies)", catalog.quarantined());
    }
    if !report.is_complete() {
        println!(
            "aborted by --abort-after-misses with {} point(s) unsimulated; \
             resubmit to resume",
            report.pending
        );
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

fn status(cli: &Cli, catalog: &Catalog) -> Result<ExitCode, String> {
    if cli.json {
        return status_json(cli, catalog);
    }
    let points = cli.grid.points();
    let mut missing: Vec<&str> = Vec::new();
    for point in &points {
        if !catalog.contains(&cli.grid.point_fingerprint(point)) {
            missing.push(&point.label);
        }
    }
    println!(
        "status: grid {:?} — {} of {} points cached in {}",
        cli.grid.name(),
        points.len() - missing.len(),
        points.len(),
        catalog.dir().display()
    );
    if missing.is_empty() {
        println!("complete: ready to fetch");
    } else {
        println!("missing {}:", missing.len());
        for label in missing.iter().take(8) {
            println!("  {label}");
        }
        if missing.len() > 8 {
            println!("  ... and {} more", missing.len() - 8);
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `status --json`: one machine-readable document with hit / miss /
/// pending / quarantine counts per shard (shard count from `--shard
/// I/N`), plus grid-level totals.  Unlike the human `status`, this
/// *opens* every cached envelope (`Catalog::lookup`), so entries that
/// cannot be served — wrong engine version, corrupt payload — count as
/// `quarantined` rather than inflating `hits`; `pending` is what a
/// submit would still have to simulate (`misses + quarantined`).
fn status_json(cli: &Cli, catalog: &Catalog) -> Result<ExitCode, String> {
    let points = cli.grid.points();
    let (_, shards) = cli.shard;
    let mut shard_rows = Vec::with_capacity(shards);
    let (mut hits, mut misses, mut quarantined) = (0u64, 0u64, 0u64);
    for shard in 0..shards {
        let range = cli.grid.shard_range(shard, shards);
        let (mut h, mut m, mut q) = (0u64, 0u64, 0u64);
        for point in &points[range.clone()] {
            let fp = cli.grid.point_fingerprint(point);
            if !catalog.contains(&fp) {
                m += 1;
            } else if catalog.lookup(&fp).is_some() {
                h += 1;
            } else {
                q += 1;
            }
        }
        hits += h;
        misses += m;
        quarantined += q;
        shard_rows.push(Value::Map(vec![
            ("shard".to_string(), Value::UInt(shard as u64)),
            ("of".to_string(), Value::UInt(shards as u64)),
            ("points".to_string(), Value::UInt(range.len() as u64)),
            ("hits".to_string(), Value::UInt(h)),
            ("misses".to_string(), Value::UInt(m)),
            ("pending".to_string(), Value::UInt(m + q)),
            ("quarantined".to_string(), Value::UInt(q)),
        ]));
    }
    let doc = Value::Map(vec![
        ("grid".to_string(), Value::Str(cli.grid.name().to_string())),
        ("engine".to_string(), Value::Str(ENGINE_VERSION.to_string())),
        ("catalog".to_string(), Value::Str(cli.catalog_dir.display().to_string())),
        ("points".to_string(), Value::UInt(points.len() as u64)),
        ("hits".to_string(), Value::UInt(hits)),
        ("misses".to_string(), Value::UInt(misses)),
        ("pending".to_string(), Value::UInt(misses + quarantined)),
        ("quarantined".to_string(), Value::UInt(quarantined)),
        ("complete".to_string(), Value::Bool(misses + quarantined == 0)),
        ("shards".to_string(), Value::Seq(shard_rows)),
    ]);
    let json = serde_json::to_string_pretty(&doc).map_err(|e| format!("{e}"))?;
    match &cli.out {
        Some(path) => std::fs::write(path, json)
            .map_err(|e| format!("write {}: {e}", path.display()))?,
        None => println!("{json}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// `trace`: re-run the grid's first point with full trace recording and
/// emit validated Chrome-trace/Perfetto JSON (load into
/// `chrome://tracing` or <https://ui.perfetto.dev>).  The traced run
/// never touches the catalog — telemetry is excluded from scenario
/// fingerprints, and by the zero-observer-effect contract its outcome
/// is bit-identical to the cataloged one anyway.
fn trace(cli: &Cli) -> Result<ExitCode, String> {
    let points = cli.grid.points();
    let point = points.first().ok_or("trace: the grid has no points")?;
    if points.len() > 1 {
        eprintln!(
            "trace: grid has {} points; tracing point 0 ({})",
            points.len(),
            point.label
        );
    }
    let mut exp = cli.grid.experiment(point);
    exp.config_mut().telemetry = TelemetryConfig::tracing();
    let (outcome, trace) = exp.run_traced().map_err(|e| format!("{e}"))?;
    let json = trace.ok_or("trace: the engine produced no trace buffer")?;
    let events = validate_chrome_trace(&json)
        .map_err(|e| format!("trace: emitted JSON failed schema validation: {e}"))?;
    match &cli.out {
        Some(path) => {
            std::fs::write(path, &json)
                .map_err(|e| format!("write {}: {e}", path.display()))?;
            println!(
                "wrote {events} trace event(s) for {:?} ({} packets delivered) to {}",
                point.label,
                outcome.packets_delivered(),
                path.display()
            );
        }
        None => println!("{json}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn fetch(cli: &Cli, catalog: &Catalog) -> Result<ExitCode, String> {
    let points = cli.grid.points();
    let mut rows = Vec::with_capacity(points.len());
    let mut missing = 0usize;
    for point in &points {
        let fp = cli.grid.point_fingerprint(point);
        match catalog.lookup(&fp) {
            Some(outcome) => rows.push(Value::Map(vec![
                ("index".to_string(), Value::UInt(point.index as u64)),
                ("label".to_string(), Value::Str(point.label.clone())),
                ("fingerprint".to_string(), Value::Str(fp.hex())),
                ("outcome".to_string(), outcome.to_value()),
            ])),
            None => missing += 1,
        }
    }
    if missing > 0 {
        return Err(format!(
            "fetch: {missing} of {} points not cached (quarantined this pass: {}) — \
             run `sweep submit` first",
            points.len(),
            catalog.quarantined()
        ));
    }
    let json = serde_json::to_string_pretty(&Value::Seq(rows)).map_err(|e| format!("{e}"))?;
    match &cli.out {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
            println!("wrote {} outcomes to {}", points.len(), path.display());
        }
        None => println!("{json}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// `checkpoint` and `resume`: a catalog run whose misses snapshot
/// their engine state every `--every` cycles.  `checkpoint` may carry
/// `--kill-at` to die mid-point (exit 3, snapshots left behind);
/// `resume` never kills — it warm-starts every unfinished point from
/// its latest snapshot and completes the grid.
fn checkpointed(cli: &Cli, catalog: &Catalog, kill_at: Option<u64>) -> Result<ExitCode, String> {
    let store =
        CheckpointStore::open(&cli.checkpoints_dir).map_err(|e| format!("{e}"))?;
    println!(
        "{}: grid {:?}, {} points, checkpoints in {}",
        cli.command,
        cli.grid.name(),
        cli.grid.len(),
        store.dir().display()
    );
    let swept = catalog.sweep_temps() + store.sweep_temps();
    if swept > 0 {
        println!("cleared {swept} abandoned temp file(s) from crashed writer(s)");
    }
    let report = cli
        .grid
        .run_cached_resumable(catalog, &store, cli.threads, cli.chunk, kill_at)
        .map_err(|e| format!("{e}"))?;
    println!(
        "hits {} / simulated {} / killed {}  (catalog {} entries, {} checkpoint(s) on disk)",
        report.hits,
        report.misses,
        report.pending,
        catalog.len(),
        store.len()
    );
    if store.quarantined() > 0 {
        println!(
            "quarantined {} unserveable checkpoint(s); those points restarted cold",
            store.quarantined()
        );
    }
    if !report.is_complete() {
        println!(
            "killed by --kill-at with {} point(s) mid-flight; \
             `sweep resume` finishes from the snapshots",
            report.pending
        );
        return Ok(ExitCode::from(3));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    // `trace` never touches the catalog — don't create its directory.
    if cli.command == "trace" {
        return match trace(&cli) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::from(2)
            }
        };
    }
    let catalog = match Catalog::open(&cli.catalog_dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(1);
        }
    };
    let result = match cli.command.as_str() {
        "submit" => submit(&cli, &catalog),
        "status" => status(&cli, &catalog),
        "fetch" => fetch(&cli, &catalog),
        "checkpoint" => checkpointed(&cli, &catalog, cli.kill_at),
        "resume" => checkpointed(&cli, &catalog, None),
        _ => unreachable!("parse_cli validates the command"),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
