//! Shared plumbing for the figure-reproduction binaries.
//!
//! Every binary accepts `--quick` (reduced windows/sweeps, seconds) or
//! `--paper` (the full §IV windows, default), prints the paper's
//! rows/series as an aligned table, and drops a CSV into `results/`.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use wimnet_core::Scale;

/// Parses the common `--quick` / `--paper` flag.
pub fn scale_from_args() -> Scale {
    let quick = std::env::args().any(|a| a == "--quick" || a == "-q");
    if quick {
        Scale::Quick
    } else {
        Scale::Paper
    }
}

/// Parses the optional `--trace FILE` flag carried by experiment
/// binaries that can export a Chrome-trace/Perfetto JSON view of one
/// of their runs (`docs/observability.md` "Trace schema").  Returns
/// the destination path, or `None` when tracing was not requested.
pub fn trace_path_from_args() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--trace" {
            return Some(PathBuf::from(
                args.next().expect("--trace needs a FILE argument"),
            ));
        }
    }
    None
}

/// Where CSV outputs land (`results/` under the workspace root, or the
/// current directory as a fallback).
pub fn results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    // Walk up until a Cargo workspace root is found.
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

/// Prints a figure banner.
pub fn banner(title: &str, scale: Scale) {
    println!("================================================================");
    println!("{title}");
    println!(
        "scale: {}",
        match scale {
            Scale::Paper => "paper (1,000 warmup + 9,000 measured cycles)",
            Scale::Quick => "quick (300 warmup + 1,500 measured cycles)",
        }
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_under_workspace() {
        let d = results_dir();
        assert!(d.ends_with("results"));
    }
}
