//! Schema sanity for the checked-in `BENCH_engine.json`: every scenario
//! row must carry an interleaved-minimum wall clock, traffic rows must
//! carry complete determinism fingerprints in *both* the before and
//! after blocks, and the two blocks must cover the same scenarios with
//! bit-identical fingerprints.  Bench bit-rot (a renamed scenario, a
//! dropped fingerprint field, a block regenerated against a different
//! engine) fails the pipeline here instead of surfacing three PRs
//! later.

use serde::Value;

/// Scenarios that intentionally carry no fingerprint (no traffic, or a
/// sweep whose outcome is asserted inside `bench_engine` itself).
const FINGERPRINTLESS: &[&str] = &["idle", "fig3_sweep"];

/// Rows that must exist in both blocks: the fast-forward tentpole's
/// measured scenarios (the quiescence-capable MAC comparison and the
/// event-driven app workload), the replica-batch tentpole's A/B rows
/// (per-replica `run_pool` vs `run_pool_batched` over the masked fast
/// stepper), the observability tentpole's zero-observer-effect A/B
/// (`telemetry_overhead`), and the long-standing engine rows.
const REQUIRED_ROWS: &[&str] = &[
    "idle",
    "fig3_anchor_load",
    "shared_channel",
    "mac_comparison_ff",
    "deep_idle_ff",
    "app_workload_ff",
    "app_blackscholes",
    "memory_bound_ff",
    "saturated",
    "telemetry_overhead",
    "sweep_grid_pool",
    "fig3_sweep_batched",
    "sweep_grid_pool_batched",
];

/// Fields every fingerprint must provide.
const FINGERPRINT_FIELDS: &[&str] =
    &["packets", "flits", "latency_bits", "energy_pj_bits", "energy_pj"];

fn load() -> Value {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("BENCH_engine.json must be checked in at {path}: {e}"));
    serde_json::parse_value(&text).expect("BENCH_engine.json parses as JSON")
}

fn map<'a>(v: &'a Value, what: &str) -> &'a [(String, Value)] {
    match v {
        Value::Map(entries) => entries,
        other => panic!("{what} must be a JSON object, got {other:?}"),
    }
}

fn field<'a>(v: &'a Value, key: &str, what: &str) -> &'a Value {
    map(v, what)
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("{what} lacks required key `{key}`"))
}

fn scenarios(root: &Value, block: &str) -> Vec<(String, Value)> {
    let b = field(root, block, "BENCH_engine.json");
    map(field(b, "scenarios", block), block).to_vec()
}

fn number(v: &Value) -> f64 {
    match *v {
        Value::Float(f) => f,
        Value::Int(i) => i as f64,
        Value::UInt(u) => u as f64,
        ref other => panic!("expected a number, got {other:?}"),
    }
}

#[test]
fn bench_engine_json_has_before_and_after_blocks_with_fingerprints() {
    let root = load();
    let before = scenarios(&root, "before");
    let after = scenarios(&root, "after");

    let names = |rows: &[(String, Value)]| {
        let mut v: Vec<String> = rows.iter().map(|(k, _)| k.clone()).collect();
        v.sort();
        v
    };
    assert_eq!(
        names(&before),
        names(&after),
        "before/after must cover the same scenarios"
    );
    assert!(!before.is_empty(), "no scenarios recorded");

    for rows in [&before, &after] {
        for (name, row) in rows.iter() {
            let wall = number(field(row, "wall_ms", name));
            assert!(wall > 0.0, "{name}: wall_ms must be a positive minimum");
            assert!(
                number(field(row, "cycles", name)) > 0.0,
                "{name}: cycles must be positive"
            );
            let fp = map(row, name).iter().find(|(k, _)| k == "fingerprint");
            if FINGERPRINTLESS.contains(&name.as_str()) {
                continue;
            }
            let (_, fp) = fp.unwrap_or_else(|| {
                panic!("{name}: traffic scenarios must record a fingerprint")
            });
            for key in FINGERPRINT_FIELDS {
                field(fp, key, name);
            }
        }
    }
}

/// The versioning guard (`docs/sweeps.md` §4): `BENCH_engine.json` is
/// only meaningful for the engine version it was generated against —
/// fingerprints are version-scoped exactly like catalog entries.  The
/// file must record `engine_version`, and the string must match
/// `wimnet_core::ENGINE_VERSION`, so a future outcome-changing PR
/// cannot bump the engine without regenerating the bench file (or vice
/// versa).
#[test]
fn bench_file_records_the_current_engine_version() {
    let root = load();
    let recorded = match field(&root, "engine_version", "BENCH_engine.json") {
        Value::Str(s) => s.clone(),
        other => panic!("engine_version must be a string, got {other:?}"),
    };
    assert_eq!(
        recorded,
        wimnet_core::ENGINE_VERSION,
        "BENCH_engine.json was generated against a different engine version — \
         regenerate it (see the file's `regenerate` key)"
    );
}

#[test]
fn required_rows_are_present_in_both_blocks() {
    let root = load();
    for block in ["before", "after"] {
        let rows = scenarios(&root, block);
        for required in REQUIRED_ROWS {
            assert!(
                rows.iter().any(|(k, _)| k == required),
                "{block} block lost the `{required}` row"
            );
        }
    }
}

/// The observability tentpole's cost ceiling: on `telemetry_overhead`
/// the blocks compare telemetry-off (`before`) against counters + time
/// series attached (`after`) at uniform saturation — the worst case,
/// every hook firing every cycle.  Attached observation must stay
/// within ~5% of the unobserved wall clock (small slack on top for
/// measurement noise in the recorded minima; the *outcome* equality is
/// asserted separately by `before_and_after_fingerprints_are_bit_identical`
/// and at measurement time inside `bench_engine` itself).
#[test]
fn telemetry_overhead_stays_within_five_percent() {
    let root = load();
    let wall = |block: &str| {
        let rows = scenarios(&root, block);
        let (_, row) = rows
            .iter()
            .find(|(k, _)| k == "telemetry_overhead")
            .expect("required_rows_are_present_in_both_blocks covers absence");
        number(field(row, "wall_ms", "telemetry_overhead"))
    };
    let (off, on) = (wall("before"), wall("after"));
    assert!(
        on <= off * 1.08,
        "telemetry on ({on:.3} ms) exceeds ~5% overhead budget over \
         telemetry off ({off:.3} ms) at saturation"
    );
}

#[test]
fn before_and_after_fingerprints_are_bit_identical() {
    // This PR's contract (and every behavior-preserving perf PR's): the
    // speedup blocks describe the *same* simulation.  A PR that changes
    // behavior on purpose must say so in `rng_change_note` instead.
    let root = load();
    if map(&root, "root").iter().any(|(k, _)| k == "rng_change_note") {
        return; // documented behavioral change: blocks differ by design
    }
    let before = scenarios(&root, "before");
    let after = scenarios(&root, "after");
    for (name, row) in &before {
        if FINGERPRINTLESS.contains(&name.as_str()) {
            continue;
        }
        let b_fp = field(row, "fingerprint", name);
        let a_row = after
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .expect("name sets already checked equal");
        let a_fp = field(a_row, "fingerprint", name);
        for key in ["packets", "flits", "latency_bits", "energy_pj_bits"] {
            // Exact Value comparison: these are u64 bit patterns that
            // must not round-trip through f64.
            assert_eq!(
                field(b_fp, key, name),
                field(a_fp, key, name),
                "{name}: fingerprint field `{key}` diverged between blocks"
            );
        }
    }
}
