//! Offline shim of the `criterion` API surface used by the workspace's
//! benches: `criterion_group!`/`criterion_main!`, `Criterion`,
//! benchmark groups, `Bencher::iter`/`iter_batched` and `BatchSize`.
//!
//! Measurement is a simple timed loop (warmup + fixed sample count,
//! median-of-samples reporting) rather than criterion's statistical
//! machinery — enough to compare engine revisions on the same machine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepts CLI args for API compatibility (no-op).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the default per-benchmark sample count.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), self.sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { samples: Vec::with_capacity(samples), sample_target: samples };
    f(&mut bencher);
    let mut times = bencher.samples;
    if times.is_empty() {
        println!("{name:<50} no samples collected");
        return;
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let best = times[0];
    let worst = *times.last().expect("non-empty");
    println!(
        "{name:<50} median {:>12?}  (best {:>12?}, worst {:>12?}, n={})",
        median,
        best,
        worst,
        times.len()
    );
}

/// Runs closures and records wall-clock samples.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_target: usize,
}

impl Bencher {
    /// Times `routine`, repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call, then the sampled calls.
        black_box(routine());
        for _ in 0..self.sample_target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over inputs built by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
