//! Offline shim of the `proptest` subset used by this workspace:
//! the `proptest!` macro, range / `Just` / tuple / collection
//! strategies, `any::<T>()`, `prop_oneof!`, and the `prop_assert*`
//! macros.
//!
//! Unlike the real proptest there is **no shrinking**: a failing case
//! panics with the sampled inputs so it can be reproduced.  Sampling is
//! deterministic per test (seeded from the test name), so failures are
//! stable across runs.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::ops::Range;

pub use rand::rngs::SmallRng as TestRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration (`cases` is the only knob honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Unused; kept so `..ProptestConfig::default()` update syntax works.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Failure raised by `prop_assert*` and `TestCaseError::fail`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// An explicit test-case failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias of [`TestCaseError::fail`] (proptest names this `Reject`).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Full-domain strategies for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>() < 0.5
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy adapter for [`Arbitrary`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<S>(pub Vec<S>);

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one case");
        let i = rng.gen_range(0..self.0.len());
        self.0[i].sample(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};
    use rand::Rng;

    /// `Vec` of `len ∈ range` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// `BTreeSet` with *up to* `len.end - 1` distinct elements
    /// (duplicates collapse, as in real proptest).
    pub fn btree_set<S: Strategy>(element: S, len: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = super::BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Mirror of proptest's `prop` module paths.
pub mod prop {
    pub use crate::collection;
}

/// Seeds the per-test RNG from the test's name, deterministically.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything a proptest file usually imports.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof,
        proptest, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) so the harness can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (`{:?}` != `{:?}`)",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (`{:?}` == `{:?}`)",
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Uniform choice among strategy expressions of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($strategy),+])
    };
}

/// The property-test harness macro.  Each `fn name(arg in strategy, …)`
/// becomes a `#[test]` that samples `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::rng_for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)*
                let inputs = format!("{:?}", ($(&$arg,)*));
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
    // With a leading #![proptest_config(...)].
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // Without configuration.
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in 0.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..2.0).contains(&f));
        }

        #[test]
        fn oneof_and_tuples(pair in (0usize..4, 10u64..20), pick in prop_oneof![Just(1u8), Just(3)]) {
            prop_assert!(pair.0 < 4);
            prop_assert!((10..20).contains(&pair.1));
            prop_assert!(pick == 1 || pick == 3);
        }

        #[test]
        fn collections_respect_length(v in collection::vec(0usize..9, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 9));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            #[allow(unreachable_code)]
            fn inner(x in 0usize..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }
}
