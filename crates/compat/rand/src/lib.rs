//! Minimal, deterministic shim for the subset of the `rand` 0.8 API used
//! by the `wimnet` workspace (`SmallRng`, `Rng::gen::<f64>()`,
//! `Rng::gen_range(a..b)`, `SeedableRng::seed_from_u64`).
//!
//! The build container has no network access, so the real crate cannot be
//! fetched; this shim keeps the public surface source-compatible.  The
//! generator is xoshiro256++ seeded through SplitMix64 — the same family
//! the real `SmallRng` uses on 64-bit targets, though the exact stream
//! differs.  Everything in the workspace only relies on *determinism for
//! a fixed seed*, which this provides.

#![forbid(unsafe_code)]

/// Seedable random generators (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling primitives available through [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator's raw 64-bit output.
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (src() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        (src() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        src() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        src()
    }
}

impl Standard for u32 {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        (src() >> 32) as u32
    }
}

impl Standard for usize {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        src() as usize
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range(lo: Self, hi: Self, src: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, src: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Modulo bias is < 2^-40 for every span used in this
                // workspace; determinism, not entropy quality, is the
                // contract here.
                lo.wrapping_add((src() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(lo: Self, hi: Self, src: &mut dyn FnMut() -> u64) -> Self {
        assert!(lo < hi, "gen_range called with an empty range");
        let u = (src() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

/// The user-facing generator trait (mirror of `rand::Rng`).
pub trait Rng {
    /// Raw 64-bit output; everything else derives from this.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` (only the types the workspace uses).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64_source(&mut || self.next_u64())
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(range.start, range.end, &mut || self.next_u64())
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Counter-based (stateless) random generation.
///
/// A counter-based RNG derives every output from a *pure function* of
/// `(seed, stream, index)` instead of walking a sequential state.  That
/// property is what makes idle fast-forward sound for Bernoulli
/// injection: whether core `c` fires at cycle `t` can be answered
/// without having drawn (or skipped) any other `(core, cycle)` pair, so
/// a simulation driver may jump over quiet cycles and still produce the
/// bit-identical event stream (see `docs/sweeps.md` for the argument).
///
/// The mixer is the SplitMix64 finalizer applied to a Weyl-sequence
/// absorption of the three input words — the same avalanche structure
/// philox-style generators use, strong enough that adjacent cycles and
/// adjacent cores are statistically independent draws.
pub mod counter {
    use super::Rng;

    /// Golden-ratio Weyl increment (the SplitMix64 stream constant).
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

    /// The SplitMix64 output finalizer: full-avalanche bijection on
    /// `u64` (every input bit flips each output bit with probability
    /// ~1/2).
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Stateless hash of `(seed, stream, index)` — the draw a sequential
    /// generator would have to walk to.  Each word is absorbed onto a
    /// fully mixed state (three finalizer rounds), so single-bit changes
    /// in any input avalanche through the output.
    #[inline]
    pub fn mix3(seed: u64, stream: u64, index: u64) -> u64 {
        StreamKey::new(seed, stream).key(index)
    }

    /// The first `f64` a [`CounterRng`] yields from a raw 64-bit word —
    /// identical to [`super::Standard`]'s `f64` conversion (53 mantissa
    /// bits, uniform in `[0, 1)`).  Exposed so hot loops can test a
    /// single draw without constructing a generator.
    #[inline]
    pub fn unit_f64(z: u64) -> f64 {
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The precomputed `(seed, stream)` prefix of the counter hash.
    ///
    /// Workloads that draw per `(core, cycle)` build one `StreamKey`
    /// per core once, then pay only the final absorb-finalize round per
    /// cycle — [`StreamKey::rng`]`(index)` is bit-equivalent to
    /// [`CounterRng::at`]`(seed, stream, index)` at a third of the
    /// mixing cost.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct StreamKey(u64);

    impl StreamKey {
        /// Absorbs `seed` and `stream` (two finalizer rounds).
        #[inline]
        pub fn new(seed: u64, stream: u64) -> Self {
            let z = mix(seed.wrapping_add(GOLDEN));
            StreamKey(mix(z.wrapping_add(stream.wrapping_mul(GOLDEN))))
        }

        /// The per-index generator key (the last `mix3` round).
        #[inline]
        fn key(self, index: u64) -> u64 {
            mix(self.0.wrapping_add(index.wrapping_mul(GOLDEN)))
        }

        /// Draw 0 of [`StreamKey::rng`]`(index)` without building the
        /// generator — two mixes total, fully inlinable.  Hot loops
        /// (per-cycle Bernoulli coins, next-fire scans) use this.
        #[inline]
        pub fn draw0(self, index: u64) -> u64 {
            mix(self.key(index))
        }

        /// The full generator for `index`, starting at draw 0.
        #[inline]
        pub fn rng(self, index: u64) -> CounterRng {
            CounterRng { key: self.key(index), ctr: 0 }
        }
    }

    /// A small counter-based generator: a key derived from
    /// `(seed, stream, index)` plus a draw counter.  Draw `k` is
    /// `mix(key + k·GOLDEN)` — a pure function of the constructor
    /// inputs and `k`, so two `CounterRng`s built from the same triple
    /// always replay the same sequence regardless of what happened to
    /// any other triple.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct CounterRng {
        key: u64,
        ctr: u64,
    }

    impl CounterRng {
        /// The generator for position `(stream, index)` of `seed`'s
        /// random field (e.g. `stream` = core, `index` = cycle).
        #[inline]
        pub fn at(seed: u64, stream: u64, index: u64) -> Self {
            StreamKey::new(seed, stream).rng(index)
        }
    }

    impl Rng for CounterRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let z = mix(self.key.wrapping_add(self.ctr.wrapping_mul(GOLDEN)));
            self.ctr += 1;
            z
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The raw xoshiro256++ state, for checkpoint/restore.  Together
        /// with [`SmallRng::from_state`] this round-trips the generator
        /// exactly: the restored instance replays the identical stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`SmallRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }

        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = SmallRng::splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn stream_key_paths_are_bit_equivalent() {
        use super::counter::{mix3, unit_f64, CounterRng, StreamKey};
        for (seed, stream) in [(0u64, 0u64), (7, 3), (0x5177, 63), (u64::MAX, 1)] {
            let key = StreamKey::new(seed, stream);
            for index in [0u64, 1, 999, u64::MAX / 2] {
                // draw0 == first draw of the full generator == mix of mix3.
                let mut full = CounterRng::at(seed, stream, index);
                let draw0 = full.next_u64();
                let draw1 = full.next_u64();
                assert_eq!(key.draw0(index), draw0);
                let mut via_key = key.rng(index);
                assert_eq!(via_key.next_u64(), draw0);
                assert_eq!(via_key.next_u64(), draw1);
                // And the f64 shortcut matches the trait conversion.
                let mut again = CounterRng::at(seed, stream, index);
                assert_eq!(unit_f64(key.draw0(index)), again.gen::<f64>());
                let _ = mix3(seed, stream, index);
            }
        }
    }

    #[test]
    fn counter_rng_is_a_pure_function_of_its_triple() {
        use super::counter::CounterRng;
        let mut a = CounterRng::at(7, 3, 1000);
        let mut b = CounterRng::at(7, 3, 1000);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Any single input change gives an unrelated stream.
        for (seed, stream, index) in [(8, 3, 1000), (7, 4, 1000), (7, 3, 1001)] {
            let mut c = CounterRng::at(seed, stream, index);
            let mut a = CounterRng::at(7, 3, 1000);
            assert_ne!(
                (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
                (0..4).map(|_| c.next_u64()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn counter_draws_are_roughly_uniform_across_the_index_axis() {
        use super::counter::CounterRng;
        // Walk the index (cycle) axis the way a workload does and check
        // the first f64 draw is uniform: mean ~0.5, all in [0, 1).
        let n = 100_000u64;
        let mut sum = 0.0;
        for index in 0..n {
            let x: f64 = CounterRng::at(0x5177, 11, index).gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn mix3_avalanches_on_small_index_deltas() {
        use super::counter::mix3;
        // Adjacent cycles must not produce correlated outputs: the
        // popcount of the xor between neighbours stays near 32.
        let mut total = 0u32;
        for i in 0..1_000u64 {
            total += (mix3(1, 2, i) ^ mix3(1, 2, i + 1)).count_ones();
        }
        let mean = f64::from(total) / 1_000.0;
        assert!((mean - 32.0).abs() < 1.5, "mean flipped bits {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..1 << 24);
            assert!(v < 1 << 24);
        }
    }
}
