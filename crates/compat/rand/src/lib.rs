//! Minimal, deterministic shim for the subset of the `rand` 0.8 API used
//! by the `wimnet` workspace (`SmallRng`, `Rng::gen::<f64>()`,
//! `Rng::gen_range(a..b)`, `SeedableRng::seed_from_u64`).
//!
//! The build container has no network access, so the real crate cannot be
//! fetched; this shim keeps the public surface source-compatible.  The
//! generator is xoshiro256++ seeded through SplitMix64 — the same family
//! the real `SmallRng` uses on 64-bit targets, though the exact stream
//! differs.  Everything in the workspace only relies on *determinism for
//! a fixed seed*, which this provides.

#![forbid(unsafe_code)]

/// Seedable random generators (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling primitives available through [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator's raw 64-bit output.
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for f64 {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (src() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        (src() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        src() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        src()
    }
}

impl Standard for u32 {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        (src() >> 32) as u32
    }
}

impl Standard for usize {
    fn from_u64_source(src: &mut dyn FnMut() -> u64) -> Self {
        src() as usize
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range(lo: Self, hi: Self, src: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, src: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Modulo bias is < 2^-40 for every span used in this
                // workspace; determinism, not entropy quality, is the
                // contract here.
                lo.wrapping_add((src() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(lo: Self, hi: Self, src: &mut dyn FnMut() -> u64) -> Self {
        assert!(lo < hi, "gen_range called with an empty range");
        let u = (src() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

/// The user-facing generator trait (mirror of `rand::Rng`).
pub trait Rng {
    /// Raw 64-bit output; everything else derives from this.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` (only the types the workspace uses).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64_source(&mut || self.next_u64())
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(range.start, range.end, &mut || self.next_u64())
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = SmallRng::splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x1;
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..1 << 24);
            assert!(v < 1 << 24);
        }
    }
}
