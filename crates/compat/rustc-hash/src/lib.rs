//! Offline shim of the `rustc-hash` crate: the Fx hash function used by
//! the Rust compiler — a fast non-cryptographic multiply-rotate hash,
//! well suited to the small integer keys (`PacketId`, node indices) on
//! the simulator's hot paths.

#![forbid(unsafe_code)]

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        use std::hash::Hash;
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            x.hash(&mut hasher);
            hasher.finish()
        };
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(2));
    }
}
