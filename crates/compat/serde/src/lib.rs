//! Offline shim of `serde`: a small self-describing value model with
//! `Serialize`/`Deserialize` traits and derive macros.
//!
//! The real serde's visitor architecture is replaced by a concrete
//! [`Value`] tree (the same data model JSON uses); `serde_json` in this
//! workspace renders and parses that tree.  The derives produced by the
//! sibling `serde_derive` shim follow serde's default encodings:
//!
//! * struct → map of fields;
//! * newtype struct → the inner value;
//! * unit enum variant → the variant name as a string;
//! * data-carrying enum variant → externally tagged
//!   (`{"Variant": ...}`).
//!
//! Only the attribute subset the workspace uses is honoured
//! (`#[serde(skip)]`, `#[serde(default)]`).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};

/// The self-describing data model all (de)serialization routes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered map (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// (De)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Mirror of real serde's `de` module so bounds written as
/// `serde::de::DeserializeOwned` compile against both this shim and
/// crates.io serde (the shim's lifetime-free `Deserialize` is already
/// owned deserialization).
pub mod de {
    pub use crate::Deserialize as DeserializeOwned;
}

/// [`Value`] serializes as itself — hand-assembled trees (e.g. the
/// `sweep` CLI's fetch envelopes) render through `serde_json` like any
/// derived type.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// [`Value`] deserializes as itself (schema-free capture of arbitrary
/// JSON subtrees).
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// --------------------------------------------------------------------
// Primitive impls.
// --------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| Error::msg("unsigned out of range")),
                    Value::Int(i) if i >= 0 => <$t>::try_from(i as u64)
                        .map_err(|_| Error::msg("unsigned out of range")),
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 =>
                        <$t>::try_from(f as u64)
                            .map_err(|_| Error::msg("unsigned out of range")),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| Error::msg("signed out of range")),
                    Value::UInt(u) => i64::try_from(u)
                        .ok()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::msg("signed out of range")),
                    Value::Float(f) if f.fract() == 0.0 => Ok(f as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            _ => Err(Error::msg("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// `&'static str` deserialization leaks the parsed string.  The seed
/// code derives `Deserialize` on profile structs whose names are static
/// string literals; round-trips through this impl are rare and small.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::msg("expected null")),
        }
    }
}

// --------------------------------------------------------------------
// Containers.
// --------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::msg("wrong array length"))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$(stringify!($n)),+].len();
                        if items.len() != expected {
                            return Err(Error::msg("wrong tuple length"));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(Error::msg("expected tuple sequence")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// Maps serialize as sequences of `[key, value]` pairs: JSON object keys
// must be strings, and the workspace's maps are keyed by newtype ids.
// Both sides of the round trip go through this shim, so the encoding
// only needs to be self-consistent.
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<(K, V)>::from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Seq(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<(K, V)>::from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-3i32).to_value()), Ok(-3));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, Some(2.5f64)), (3, None)];
        let back = Vec::<(u32, Option<f64>)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
        let arr = [1u64, 2, 3];
        assert_eq!(<[u64; 3]>::from_value(&arr.to_value()), Ok(arr));
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_value(&Value::Int(2)), Ok(2.0));
        assert_eq!(u64::from_value(&Value::Int(7)), Ok(7));
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }
}
