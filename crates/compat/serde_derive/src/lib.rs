//! Derive macros for the offline `serde` shim.
//!
//! `syn`/`quote` are unavailable in the no-network build container, so
//! the item is parsed directly from the `proc_macro` token stream.  The
//! supported shapes are exactly what the workspace derives on:
//! non-generic structs (named, tuple, unit) and non-generic enums with
//! unit / newtype / tuple / struct variants, plus the `#[serde(skip)]`
//! and `#[serde(default)]` field attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone, Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Debug, Clone)]
struct Field {
    name: String, // field name, or index for tuple fields
    attrs: FieldAttrs,
}

#[derive(Debug, Clone)]
enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug, Clone)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    body: Body,
}

/// Parses `#[serde(...)]` contents into field attrs; returns default
/// attrs for every other attribute.
fn parse_attr(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> FieldAttrs {
    // Caller consumed `#`; next must be the bracket group.
    let mut attrs = FieldAttrs::default();
    if let Some(TokenTree::Group(g)) = tokens.next() {
        let mut inner = g.stream().into_iter();
        if let Some(TokenTree::Ident(tag)) = inner.next() {
            if tag.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    for t in args.stream() {
                        if let TokenTree::Ident(i) = t {
                            match i.to_string().as_str() {
                                "skip" => attrs.skip = true,
                                "default" => attrs.default = true,
                                "skip_serializing" | "skip_deserializing" => attrs.skip = true,
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
    }
    attrs
}

/// Skips leading attributes, merging any `#[serde(...)]` flags.
fn skip_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next(); // '#'
        let a = parse_attr(tokens);
        attrs.skip |= a.skip;
        attrs.default |= a.default;
    }
    attrs
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

/// Consumes type tokens up to a top-level comma (tracking `<`/`>`
/// nesting, which is not grouped in `proc_macro` streams).
fn skip_type(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth = 0i32;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    return;
                }
                if c == '<' {
                    angle_depth += 1;
                }
                if c == '>' {
                    angle_depth -= 1;
                    if angle_depth < 0 {
                        angle_depth = 0;
                    }
                }
                tokens.next();
            }
            _ => {
                tokens.next();
            }
        }
    }
}

/// Parses the fields of a brace-delimited (named) field list.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            break;
        };
        // ':'
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde_derive shim: expected `:` after field `{name}`"),
        }
        skip_type(&mut tokens);
        // Optional trailing comma.
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
        fields.push(Field { name: name.to_string(), attrs });
    }
    fields
}

/// Counts the fields of a paren-delimited (tuple) field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    loop {
        let _ = skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_type(&mut tokens);
        count += 1;
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _ = skip_attrs(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            break;
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        // Skip a discriminant (`= expr`) if present, then the comma.
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            tokens.next();
            while let Some(tt) = tokens.peek() {
                if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                tokens.next();
            }
        }
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
        variants.push(Variant { name: name.to_string(), kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let _ = skip_attrs(&mut tokens);
    skip_visibility(&mut tokens);
    let kw = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (derive on `{name}`)");
    }
    let body = match kw.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde_derive shim: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive on `{other}`"),
    };
    Item { name, body }
}

/// Derives `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "entries.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Map(entries)"
            )
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), \
                         ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(vec![(\"{vname}\".to_string(), \
                             ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.attrs.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Map(vec![(\"{vname}\".to_string(), \
                             ::serde::Value::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    );
    out.parse().expect("serde_derive shim: generated invalid Serialize impl")
}

fn named_field_reads(fields: &[Field], source: &str, context: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.attrs.skip {
            out.push_str(&format!(
                "{0}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else if f.attrs.default {
            out.push_str(&format!(
                "{0}: match {source}.get(\"{0}\") {{\n\
                 Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                 None => ::std::default::Default::default(),\n}},\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "{0}: match {source}.get(\"{0}\") {{\n\
                 Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                 None => return ::std::result::Result::Err(::serde::Error::msg(\
                 \"missing field `{0}` in {context}\")),\n}},\n",
                f.name
            ));
        }
    }
    out
}

/// Derives `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::NamedStruct(fields) => {
            let reads = named_field_reads(fields, "v", name);
            format!(
                "match v {{\n\
                 ::serde::Value::Map(_) => ::std::result::Result::Ok({name} {{\n{reads}}}),\n\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\"expected map for {name}\")),\n\
                 }}"
            )
        }
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::TupleStruct(n) => {
            let reads: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Seq(items) if items.len() == {n} => \
                 ::std::result::Result::Ok({name}({})),\n\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected {n}-element sequence for {name}\")),\n}}",
                reads.join(", ")
            )
        }
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let reads: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match inner {{\n\
                             ::serde::Value::Seq(items) if items.len() == {n} => \
                             ::std::result::Result::Ok({name}::{vname}({})),\n\
                             _ => ::std::result::Result::Err(::serde::Error::msg(\
                             \"expected {n}-element sequence for {name}::{vname}\")),\n}},\n",
                            reads.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let reads = named_field_reads(fields, "inner", &format!("{name}::{vname}"));
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{\n{reads}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(format!(\
                 \"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\"expected variant of {name}\")),\n\
                 }}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    );
    out.parse().expect("serde_derive shim: generated invalid Deserialize impl")
}
