//! Offline shim of `serde_json` over the `serde` shim's [`Value`] model:
//! `to_string`, `to_string_pretty` and `from_str`, with a small
//! recursive-descent JSON parser.

#![forbid(unsafe_code)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails in this shim (kept for API compatibility).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable JSON.
///
/// # Errors
///
/// Never fails in this shim (kept for API compatibility).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Parses JSON text into the raw [`Value`] tree.
///
/// # Errors
///
/// Malformed JSON.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(v)
}

// --------------------------------------------------------------------
// Writer.
// --------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip float formatting; add `.0`
                // so integral floats stay floats through a round trip.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/inf; serde_json writes null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------------
// Parser.
// --------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected character at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::msg("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's identifiers; map lone
                            // surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::msg("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg("invalid integer"))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value_tree() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::UInt(7)),
            ("b".to_string(), Value::Seq(vec![Value::Float(1.5), Value::Null])),
            ("s".to_string(), Value::Str("hi \"there\"\n".to_string())),
            ("neg".to_string(), Value::Int(-3)),
            ("t".to_string(), Value::Bool(true)),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0);
            s
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0);
            s
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.0, 1.0, 0.1875, 1e-15, 123456.789, -2.5e17] {
            let mut s = String::new();
            write_value(&mut s, &Value::Float(f), None, 0);
            match parse_value(&s).unwrap() {
                Value::Float(g) => assert_eq!(f, g, "{s}"),
                Value::Int(i) => assert_eq!(f, i as f64),
                Value::UInt(u) => assert_eq!(f, u as f64),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn typed_round_trip() {
        let pairs: Vec<(u64, Option<f64>)> = vec![(1, Some(2.5)), (9, None)];
        let json = to_string(&pairs).unwrap();
        let back: Vec<(u64, Option<f64>)> = from_str(&json).unwrap();
        assert_eq!(pairs, back);
    }
}
