//! The fingerprint-keyed on-disk result catalog.
//!
//! PRs 2 and 6 made every [`RunOutcome`] a bit-exact pure function of
//! its scenario: injection is counter-based, the pool and the replica
//! batcher are shape-invisible, and fast-forward is bit-identical to
//! full stepping.  That purity is what makes outcomes *cacheable* — a
//! grid point simulated once never needs simulating again — and sweeps
//! *resumable by construction*: whatever subset of a grid survived a
//! crash is exactly the subset that can be served from disk.
//!
//! This module provides the storage layer:
//!
//! * [`fingerprint`] — a canonical 128-bit content key derived from the
//!   physical scenario (point axes + scale + read share) **and the
//!   engine version**, so an entry computed by older simulation
//!   semantics can never be served;
//! * [`Catalog`] — a directory of one-JSON-file-per-outcome entries
//!   written with write-to-temp + atomic-rename discipline, validated
//!   on read, with unserveable files quarantined (never fatal).
//!
//! [`crate::sweeps::ScenarioGrid::run_cached`] sits on top: hits are
//! served at memcpy speed, only misses simulate (on the replica-batched
//! pool), and the `sweep` CLI in `wimnet-bench` fronts submit / status /
//! fetch / shard.  See `docs/sweeps.md`, "The result catalog".
//!
//! # Key derivation
//!
//! The key material is the compact JSON of a fixed-order record:
//!
//! ```text
//! { engine_version, scale, read_share,
//!   architecture, chips, stacks, wireless, memory_fraction,
//!   address_stream, scheduler, injection, seed }
//! ```
//!
//! i.e. everything [`crate::sweeps::ScenarioGrid::experiment`] feeds
//! into the compiled [`crate::Experiment`], and nothing else.  The
//! point's `index` and `label` are deliberately **excluded** — they are
//! presentation, not physics — so the same physical scenario reached
//! from two differently-shaped grids shares one entry.  Floats render
//! through Rust's shortest-round-trip formatting, which maps distinct
//! finite bit patterns to distinct strings, so the material bytes are
//! canonical.  The bytes are hashed by two independent SplitMix64
//! absorb-finalize lanes into 128 bits.
//!
//! # Versioning rule
//!
//! [`ENGINE_VERSION`] must be bumped by any PR that changes simulation
//! *outcomes* (new mechanisms, changed realisations, fixed bugs).
//! Purely structural PRs that prove bit-identity (slab refactors,
//! batching, fast-forward) keep it.  Because the version participates
//! in the fingerprint, a bump silently invalidates every existing
//! entry: old files are simply never looked up again, and a
//! version-mismatched envelope found *at* a current key (a hand-edited
//! or foreign file) is quarantined and recomputed.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

use wimnet_memory::SchedulerPolicy;
use wimnet_topology::Architecture;
use wimnet_traffic::{AddressStreamSpec, InjectionProcess};

use crate::error::CoreError;
use crate::experiments::Scale;
use crate::metrics::RunOutcome;
use crate::sweeps::ScenarioPoint;
use crate::system::WirelessModel;

/// The simulation-semantics version baked into every fingerprint.
///
/// Bump when a PR changes what any scenario *computes* (see the module
/// docs' versioning rule); keep when a PR only proves bit-identity.
/// v8: the exact-sum energy meter — correctly-rounded superaccumulator
/// read-outs move energy bits relative to v7's sequential f64 adds.
/// v9: rank-exact percentiles from the full log-linear latency
/// histogram — `p99_latency_cycles` was a power-of-two bucket upper
/// bound in v8, so latency read-out bits move (p50/p999 are new).
pub const ENGINE_VERSION: &str = "wimnet-engine-v9";

/// A 128-bit canonical content fingerprint of one cacheable scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint([u64; 2]);

impl Fingerprint {
    /// The 32-hex-digit lowercase rendering used as the entry filename.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }

    /// Parses the [`Fingerprint::hex`] rendering back.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Fingerprint([hi, lo]))
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// SplitMix64 finalizer: full-avalanche mixing of one word.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One hash lane: absorb the bytes as little-endian 64-bit words, a
/// full finalizer round per word, length appended.  Platform-stable by
/// construction (explicit little-endian, no usize arithmetic).
/// Shared with `checkpoint` (content hashes use distinct seeds).
pub(crate) fn lane(bytes: &[u8], seed: u64) -> u64 {
    let mut h = mix(seed ^ 0x9e37_79b9_7f4a_7c15);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = mix(h ^ u64::from_le_bytes(word)).wrapping_add(0x9e37_79b9_7f4a_7c15);
    }
    mix(h ^ bytes.len() as u64)
}

/// The canonical key material (module docs, "Key derivation").  Field
/// order is the serialization order and therefore part of the format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct KeyMaterial {
    engine_version: String,
    scale: Scale,
    read_share: f64,
    architecture: Architecture,
    chips: usize,
    stacks: usize,
    wireless: WirelessModel,
    memory_fraction: f64,
    address_stream: AddressStreamSpec,
    scheduler: SchedulerPolicy,
    injection: InjectionProcess,
    seed: u64,
}

/// Computes the canonical fingerprint of one scenario under the
/// current [`ENGINE_VERSION`].
///
/// `scale` and `read_share` are the grid-wide settings that, together
/// with the point's axes, fully determine the compiled experiment —
/// [`crate::sweeps::ScenarioGrid::point_fingerprint`] passes its own.
pub fn fingerprint(point: &ScenarioPoint, scale: Scale, read_share: f64) -> Fingerprint {
    let material = KeyMaterial {
        engine_version: ENGINE_VERSION.to_string(),
        scale,
        read_share,
        architecture: point.architecture,
        chips: point.chips,
        stacks: point.stacks,
        wireless: point.wireless,
        memory_fraction: point.memory_fraction,
        address_stream: point.address_stream,
        scheduler: point.scheduler,
        injection: point.injection,
        seed: point.seed,
    };
    let bytes = serde_json::to_string(&material)
        .expect("key material serialization is infallible")
        .into_bytes();
    Fingerprint([lane(&bytes, 1), lane(&bytes, 2)])
}

/// One catalog file: a self-validating envelope around the outcome.
///
/// `engine_version` and `fingerprint` are checked against the lookup
/// key on every read; `point` is provenance (the first writer's view —
/// its `index`/`label` may differ from a later reader's grid shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// The [`ENGINE_VERSION`] the outcome was computed under.
    pub engine_version: String,
    /// Hex fingerprint this entry claims to answer.
    pub fingerprint: String,
    /// The scenario point that produced the outcome (provenance).
    pub point: ScenarioPoint,
    /// The memoized result.
    pub outcome: RunOutcome,
}

/// A directory of memoized outcomes, one JSON file per fingerprint.
///
/// All methods take `&self` and are safe to drive from many threads
/// and many *processes* against one directory: writes go to a unique
/// temp file and atomically rename into place (a reader sees either
/// the old complete entry or the new complete entry, never a torn
/// one), and concurrent writers of the same key write byte-identical
/// content (outcomes are deterministic, serialization is canonical),
/// so the race is a benign overwrite.
#[derive(Debug)]
pub struct Catalog {
    dir: PathBuf,
    /// Unique-suffix source for temp and quarantine names.
    nonce: AtomicUsize,
    /// Files this handle moved to quarantine (session counter).
    quarantined: AtomicUsize,
}

impl Catalog {
    /// Opens (creating if needed) the catalog at `dir`.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CoreError::Catalog {
            what: format!("create {}: {e}", dir.display()),
        })?;
        Ok(Catalog { dir, nonce: AtomicUsize::new(0), quarantined: AtomicUsize::new(0) })
    }

    /// The catalog directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, fp: &Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.json", fp.hex()))
    }

    fn unique_suffix(&self) -> String {
        format!("{}-{}", std::process::id(), self.nonce.fetch_add(1, Ordering::Relaxed))
    }

    /// Fast presence probe: does an entry file exist for `fp`?
    ///
    /// Existence only — the file is not validated (a corrupt entry
    /// still answers `true` here and becomes a miss in
    /// [`Catalog::lookup`]).  `status`-style reporting wants this;
    /// serving wants `lookup`.
    pub fn contains(&self, fp: &Fingerprint) -> bool {
        self.entry_path(fp).exists()
    }

    /// Serves the memoized outcome for `fp`, or `None` on a miss.
    ///
    /// A file that exists but cannot be served — unparseable JSON, an
    /// envelope naming a different engine version, or a fingerprint
    /// mismatch — is **quarantined** (moved aside into `quarantine/`)
    /// and reported as a miss, so corruption costs a recompute, never
    /// a wrong answer and never an abort.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<RunOutcome> {
        let path = self.entry_path(fp);
        let text = fs::read_to_string(&path).ok()?;
        match serde_json::from_str::<CatalogEntry>(&text) {
            Ok(entry)
                if entry.engine_version == ENGINE_VERSION
                    && entry.fingerprint == fp.hex() =>
            {
                Some(entry.outcome)
            }
            _ => {
                self.quarantine(&path);
                None
            }
        }
    }

    /// Moves an unserveable file into `quarantine/` (best-effort: a
    /// concurrent quarantine of the same file is fine, and quarantine
    /// failure still leaves the entry unserved).
    fn quarantine(&self, path: &Path) {
        let qdir = self.dir.join("quarantine");
        if fs::create_dir_all(&qdir).is_err() {
            return;
        }
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_string());
        let dest = qdir.join(format!("{name}.{}", self.unique_suffix()));
        if fs::rename(path, dest).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Files this handle has quarantined.
    pub fn quarantined(&self) -> usize {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Memoizes `outcome` under `fp` with write-to-temp +
    /// atomic-rename discipline.  A crash mid-write leaves only a
    /// `*.tmp-*` file, which lookups never read and
    /// [`Catalog::sweep_temps`] clears.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors writing or renaming the entry.
    pub fn store(
        &self,
        fp: &Fingerprint,
        point: &ScenarioPoint,
        outcome: &RunOutcome,
    ) -> Result<(), CoreError> {
        let entry = CatalogEntry {
            engine_version: ENGINE_VERSION.to_string(),
            fingerprint: fp.hex(),
            point: point.clone(),
            outcome: outcome.clone(),
        };
        let json = serde_json::to_string_pretty(&entry)
            .map_err(|e| CoreError::Catalog { what: format!("serialize entry: {e}") })?;
        let final_path = self.entry_path(fp);
        let tmp = self
            .dir
            .join(format!("{}.json.tmp-{}", fp.hex(), self.unique_suffix()));
        fs::write(&tmp, json).map_err(|e| CoreError::Catalog {
            what: format!("write {}: {e}", tmp.display()),
        })?;
        fs::rename(&tmp, &final_path).map_err(|e| CoreError::Catalog {
            what: format!("rename into {}: {e}", final_path.display()),
        })
    }

    /// Number of entry files currently in the catalog (quarantined and
    /// temp files excluded).
    pub fn len(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| {
                e.file_name().to_string_lossy().ends_with(".json")
                    && e.file_type().is_ok_and(|t| t.is_file())
            })
            .count()
    }

    /// `true` when the catalog holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes abandoned `*.tmp-*` files (crashed writers).  Safe to
    /// call while other shards run: live writers use fresh unique
    /// names, and an unlinked live temp would only fail that writer's
    /// rename, which reports an error rather than corrupting anything.
    /// Returns how many were removed.
    pub fn sweep_temps(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.contains(".json.tmp-") && fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweeps::ScenarioGrid;
    use wimnet_energy::EnergyBreakdown;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("wimnet-catalog-unit-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_point(seed: u64) -> ScenarioPoint {
        let grid = ScenarioGrid::new("t").seeds(&[seed]);
        grid.points().remove(0)
    }

    fn sample_outcome(total_packets: u64) -> RunOutcome {
        RunOutcome {
            label: "4C4M (Wireless)".to_string(),
            workload: "uniform".to_string(),
            cores: 64,
            window_cycles: 1500,
            window_packets: total_packets / 2,
            total_packets,
            bandwidth_gbps_per_core: 1.25,
            avg_packet_energy_nj: Some(0.875),
            avg_latency_cycles: Some(31.5),
            max_latency_cycles: Some(211),
            p50_latency_cycles: Some(30),
            p99_latency_cycles: Some(96),
            p999_latency_cycles: Some(180),
            fast_forwarded_cycles: 0,
            meter_ops: 0,
            meter_charges: 0,
            energy: EnergyBreakdown {
                entries: Vec::new(),
                total: wimnet_energy::Energy::from_nj(total_packets as f64),
            },
            memory: Vec::new(),
            telemetry: None,
        }
    }

    #[test]
    fn fingerprints_are_stable_and_axis_sensitive() {
        let p = sample_point(7);
        let a = fingerprint(&p, Scale::Quick, 0.0);
        let b = fingerprint(&p, Scale::Quick, 0.0);
        assert_eq!(a, b, "same material must fingerprint identically");
        // Every ingredient moves the key.
        assert_ne!(a, fingerprint(&p, Scale::Paper, 0.0));
        assert_ne!(a, fingerprint(&p, Scale::Quick, 0.5));
        assert_ne!(a, fingerprint(&sample_point(8), Scale::Quick, 0.0));
        let mut other = p.clone();
        other.chips = 8;
        assert_ne!(a, fingerprint(&other, Scale::Quick, 0.0));
        // index and label are presentation, not physics.
        let mut relabeled = p.clone();
        relabeled.index = 999;
        relabeled.label = "renamed".to_string();
        assert_eq!(a, fingerprint(&relabeled, Scale::Quick, 0.0));
    }

    #[test]
    fn fingerprint_hex_round_trips() {
        let fp = fingerprint(&sample_point(1), Scale::Quick, 0.0);
        let hex = fp.hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
        assert_eq!(Fingerprint::from_hex("zz"), None);
        assert_eq!(Fingerprint::from_hex(&hex[..31]), None);
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let dir = test_dir("roundtrip");
        let catalog = Catalog::open(&dir).unwrap();
        let point = sample_point(3);
        let fp = fingerprint(&point, Scale::Quick, 0.0);
        assert!(!catalog.contains(&fp));
        assert!(catalog.lookup(&fp).is_none());
        let outcome = sample_outcome(42);
        catalog.store(&fp, &point, &outcome).unwrap();
        assert!(catalog.contains(&fp));
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.lookup(&fp), Some(outcome));
        assert_eq!(catalog.quarantined(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_entries_are_quarantined_misses() {
        let dir = test_dir("quarantine");
        let catalog = Catalog::open(&dir).unwrap();
        let point = sample_point(4);
        let fp = fingerprint(&point, Scale::Quick, 0.0);

        // Corrupted JSON at the key's path.
        fs::write(dir.join(format!("{}.json", fp.hex())), "{ truncated").unwrap();
        assert!(catalog.lookup(&fp).is_none());
        assert_eq!(catalog.quarantined(), 1);
        assert!(!catalog.contains(&fp), "quarantine must move the file aside");

        // A well-formed entry claiming a different engine version.
        let mut entry = CatalogEntry {
            engine_version: "wimnet-engine-v0".to_string(),
            fingerprint: fp.hex(),
            point: point.clone(),
            outcome: sample_outcome(1),
        };
        fs::write(
            dir.join(format!("{}.json", fp.hex())),
            serde_json::to_string(&entry).unwrap(),
        )
        .unwrap();
        assert!(catalog.lookup(&fp).is_none(), "stale engine version must never serve");

        // A well-formed entry whose fingerprint does not match its name.
        entry.engine_version = ENGINE_VERSION.to_string();
        entry.fingerprint = "0".repeat(32);
        fs::write(
            dir.join(format!("{}.json", fp.hex())),
            serde_json::to_string(&entry).unwrap(),
        )
        .unwrap();
        assert!(catalog.lookup(&fp).is_none(), "fingerprint mismatch must never serve");
        assert_eq!(catalog.quarantined(), 3);

        // Quarantine preserved the bad files for forensics.
        assert_eq!(fs::read_dir(dir.join("quarantine")).unwrap().count(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_temps_clears_only_abandoned_writes() {
        let dir = test_dir("temps");
        let catalog = Catalog::open(&dir).unwrap();
        let point = sample_point(5);
        let fp = fingerprint(&point, Scale::Quick, 0.0);
        catalog.store(&fp, &point, &sample_outcome(9)).unwrap();
        fs::write(dir.join(format!("{}.json.tmp-999-0", fp.hex())), "half-writ").unwrap();
        assert_eq!(catalog.sweep_temps(), 1);
        assert_eq!(catalog.sweep_temps(), 0);
        assert_eq!(catalog.lookup(&fp), Some(sample_outcome(9)));
        let _ = fs::remove_dir_all(&dir);
    }
}
