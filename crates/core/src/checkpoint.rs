//! Checkpoint/restore: full-engine snapshots and the on-disk store.
//!
//! PRs 2–8 made every run a bit-exact pure function of its scenario;
//! PR 7's catalog exploited that purity at *run* granularity (a
//! finished outcome never needs recomputing).  This module pushes the
//! same idea inside a run: a [`Snapshot`] captures the complete mutable
//! state of a [`MultichipSystem`] at an iteration boundary — VC slabs,
//! ring lanes, credits and grant owners, active sets and their masks,
//! radio backlog, all three MAC media, the memory controllers' queues,
//! bank state machines and in-flight completions, the workload cursors
//! (per-stack stream ordinals, staged requests, the outstanding-read
//! map), the reply heap, the energy meter's superaccumulator limbs and
//! the engine clock — such that
//!
//! > **snapshot → restore → run ≡ uninterrupted run, bit for bit.**
//!
//! The resulting [`crate::RunOutcome`] is *equal*, not approximately
//! equal: every meter bit, every latency percentile, every memory
//! counter (`tests/checkpoint.rs` proves this differentially for every
//! architecture and both serialized MACs, fast-forward engaged).
//!
//! What is **not** in a snapshot is everything `MultichipSystem::build`
//! reconstructs as a pure function of the [`crate::SystemConfig`]:
//! topology, routes, address map, address streams and energy constants.
//! Restore therefore requires building the same configuration first —
//! the store's scenario fingerprint enforces exactly that.  Workload
//! objects are likewise excluded: resumption requires counter-based
//! workloads (generation a pure function of the queried cycle), which
//! every workload in this repository satisfies by design.
//!
//! # The on-disk store
//!
//! [`CheckpointStore`] mirrors the result catalog's discipline
//! (`docs/sweeps.md`): one file per scenario fingerprint
//! (`{hex}.ckpt.json`), written to a unique temp name and atomically
//! renamed into place, validated on every read — engine version,
//! claimed fingerprint, **and** a 128-bit content hash of the
//! snapshot's canonical JSON (re-derived from the parsed bytes, so a
//! flipped bit anywhere in the state is caught) — with unserveable
//! files quarantined and reported as a miss, never served and never
//! fatal.  A corrupt checkpoint costs a cold start, not a wrong resume.
//!
//! # Versioning rule
//!
//! Snapshots embed [`ENGINE_VERSION`] and are never served across a
//! bump: engine semantics changes invalidate mid-run state exactly as
//! they invalidate finished outcomes.  This PR proves bit-identity
//! (checkpointing changes wall-clock and disk traffic only), so the
//! version holds at v8.  See `docs/checkpoint.md`.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};

use wimnet_traffic::Workload;

use crate::catalog::{lane, Fingerprint, ENGINE_VERSION};
use crate::error::CoreError;
use crate::metrics::RunOutcome;
use crate::system::{MultichipSystem, SystemState};

/// A complete engine snapshot: the run-loop cursor plus the full
/// [`SystemState`] at that iteration boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// The run-loop cursor, equal to the engine clock
    /// (`Network::now`) at the boundary where the snapshot was taken.
    pub cycle: u64,
    state: SystemState,
}

/// One store file: a self-validating envelope around a snapshot.
///
/// `engine_version` and `fingerprint` are checked against the lookup
/// key on every read; `content` is the 128-bit hash of the snapshot's
/// canonical compact JSON, recomputed from the parsed snapshot at
/// lookup (canonical serialization makes re-encoding byte-identical,
/// which `tests/serde_roundtrip.rs` pins), so state corruption that
/// still parses is quarantined too.  `cycle` duplicates the snapshot
/// cursor for cheap `status`-style display.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointEntry {
    /// The [`ENGINE_VERSION`] the snapshot was taken under.
    pub engine_version: String,
    /// Hex scenario fingerprint this checkpoint claims to answer.
    pub fingerprint: String,
    /// Hex content hash of the snapshot's compact JSON.
    pub content: String,
    /// The snapshot's run-loop cursor (display convenience).
    pub cycle: u64,
    /// The snapshot itself.
    pub snapshot: Snapshot,
}

/// The 128-bit content hash of a snapshot's canonical JSON bytes:
/// the catalog's two-lane SplitMix64 construction on fresh seeds (3
/// and 4; the scenario fingerprint uses 1 and 2).
fn content_hex(bytes: &[u8]) -> String {
    format!("{:016x}{:016x}", lane(bytes, 3), lane(bytes, 4))
}

/// A directory of mid-run snapshots, one file per scenario
/// fingerprint, with the catalog's crash-safety discipline: atomic
/// rename on write, validate-or-quarantine on read, `*.tmp-*` debris
/// swept explicitly.  A store holds at most one checkpoint per
/// scenario — each cadence crossing atomically replaces the previous
/// snapshot, so the file is always the *latest* resume point.
///
/// All methods take `&self` and tolerate concurrent use from many
/// threads and processes against one directory, for the same reasons
/// as the catalog: unique temp names, atomic renames, and
/// byte-identical content for concurrent writers of the same key at
/// the same cycle.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    /// Unique-suffix source for temp and quarantine names.
    nonce: AtomicUsize,
    /// Files this handle moved to quarantine (session counter).
    quarantined: AtomicUsize,
}

impl CheckpointStore {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CoreError::Checkpoint {
            what: format!("create {}: {e}", dir.display()),
        })?;
        Ok(CheckpointStore {
            dir,
            nonce: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, fp: &Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.ckpt.json", fp.hex()))
    }

    fn unique_suffix(&self) -> String {
        format!("{}-{}", std::process::id(), self.nonce.fetch_add(1, Ordering::Relaxed))
    }

    /// Fast presence probe: does a checkpoint file exist for `fp`?
    /// Existence only — validation happens in [`CheckpointStore::lookup`].
    pub fn contains(&self, fp: &Fingerprint) -> bool {
        self.entry_path(fp).exists()
    }

    /// Serves the latest snapshot for `fp`, or `None` on a miss.
    ///
    /// A file that exists but cannot be served — unparseable JSON, a
    /// foreign engine version, a fingerprint mismatch, or a content
    /// hash that does not match the re-encoded snapshot — is
    /// **quarantined** (moved aside into `quarantine/`) and reported as
    /// a miss, so corruption costs a cold start, never a wrong resume
    /// and never an abort.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<Snapshot> {
        let path = self.entry_path(fp);
        let text = fs::read_to_string(&path).ok()?;
        if let Ok(entry) = serde_json::from_str::<CheckpointEntry>(&text) {
            if entry.engine_version == ENGINE_VERSION
                && entry.fingerprint == fp.hex()
                && serde_json::to_string(&entry.snapshot)
                    .is_ok_and(|body| content_hex(body.as_bytes()) == entry.content)
            {
                return Some(entry.snapshot);
            }
        }
        self.quarantine(&path);
        None
    }

    /// Moves an unserveable file into `quarantine/` (best-effort, like
    /// the catalog's).
    fn quarantine(&self, path: &Path) {
        let qdir = self.dir.join("quarantine");
        if fs::create_dir_all(&qdir).is_err() {
            return;
        }
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_string());
        let dest = qdir.join(format!("{name}.{}", self.unique_suffix()));
        if fs::rename(path, dest).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Files this handle has quarantined.
    pub fn quarantined(&self) -> usize {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Persists `snapshot` as the latest checkpoint for `fp`, with
    /// write-to-temp + atomic-rename discipline.  Replaces any previous
    /// checkpoint for the scenario; a crash mid-write leaves only a
    /// `*.tmp-*` file, which lookups never read and
    /// [`CheckpointStore::sweep_temps`] clears.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors writing or renaming the entry.
    pub fn store(&self, fp: &Fingerprint, snapshot: &Snapshot) -> Result<(), CoreError> {
        let body = serde_json::to_string(snapshot).map_err(|e| CoreError::Checkpoint {
            what: format!("serialize snapshot: {e}"),
        })?;
        let entry = CheckpointEntry {
            engine_version: ENGINE_VERSION.to_string(),
            fingerprint: fp.hex(),
            content: content_hex(body.as_bytes()),
            cycle: snapshot.cycle,
            snapshot: snapshot.clone(),
        };
        let json = serde_json::to_string_pretty(&entry).map_err(|e| {
            CoreError::Checkpoint { what: format!("serialize entry: {e}") }
        })?;
        let final_path = self.entry_path(fp);
        let tmp = self
            .dir
            .join(format!("{}.ckpt.json.tmp-{}", fp.hex(), self.unique_suffix()));
        fs::write(&tmp, json).map_err(|e| CoreError::Checkpoint {
            what: format!("write {}: {e}", tmp.display()),
        })?;
        fs::rename(&tmp, &final_path).map_err(|e| CoreError::Checkpoint {
            what: format!("rename into {}: {e}", final_path.display()),
        })
    }

    /// Deletes the checkpoint for `fp`, if any; returns whether a file
    /// was removed.  Called once a scenario's final outcome reaches the
    /// result catalog — the resume point is then dead weight.
    pub fn remove(&self, fp: &Fingerprint) -> bool {
        fs::remove_file(self.entry_path(fp)).is_ok()
    }

    /// Number of checkpoint files currently in the store (quarantined
    /// and temp files excluded).
    pub fn len(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| {
                e.file_name().to_string_lossy().ends_with(".ckpt.json")
                    && e.file_type().is_ok_and(|t| t.is_file())
            })
            .count()
    }

    /// `true` when the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes abandoned `*.tmp-*` files (crashed writers), exactly
    /// like the catalog's sweep.  Returns how many were removed.
    pub fn sweep_temps(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.contains(".ckpt.json.tmp-") && fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

impl MultichipSystem {
    /// Captures a [`Snapshot`] at the current iteration boundary: the
    /// engine clock as the resume cursor plus the complete
    /// [`SystemState`].
    pub fn snapshot(&self) -> Snapshot {
        Snapshot { cycle: self.network().now(), state: self.state() }
    }

    /// Reinstates `snapshot` on a freshly built system with the same
    /// [`crate::SystemConfig`], after which
    /// [`MultichipSystem::run_from`] at `snapshot.cycle` continues the
    /// interrupted run bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] when the snapshot's shape does not
    /// match this system, or its recorded cursor disagrees with the
    /// restored engine clock (the run-loop invariant `cursor ==
    /// Network::now` must hold at every boundary).
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), CoreError> {
        self.restore_state(&snapshot.state)?;
        let now = self.network().now();
        if now != snapshot.cycle {
            return Err(CoreError::Checkpoint {
                what: format!(
                    "snapshot cursor {} disagrees with restored engine clock {now}",
                    snapshot.cycle
                ),
            });
        }
        Ok(())
    }
}

/// Drives `system` through its run loop with periodic checkpointing
/// against `store`, resuming from the scenario's latest snapshot if one
/// is serveable.
///
/// * With `system.config().checkpoint_every == n > 0`, a snapshot is
///   persisted at the first iteration boundary at or past each
///   `n`-cycle mark (fast-forward can jump several marks at once — one
///   snapshot covers them all).  `0` checkpoints nothing, making this a
///   plain resumable run.
/// * `kill_at: Some(k)` simulates a crash: the loop stops *before* the
///   first iteration at cursor ≥ `k` and returns `Ok(None)`, leaving
///   whatever checkpoints were already persisted.  A later call with
///   `kill_at: None` picks up from the latest one and returns the
///   outcome — bit-identical to a run that was never killed.
///
/// The final outcome is **not** written here; callers
/// ([`crate::sweeps::ScenarioGrid::run_cached_resumable`]) store it in
/// the result catalog and then [`CheckpointStore::remove`] the spent
/// checkpoint.
///
/// # Errors
///
/// Propagates run errors ([`CoreError::Stalled`]), restore shape
/// mismatches and store I/O failures.
pub fn run_with_checkpoints(
    system: &mut MultichipSystem,
    workload: &mut dyn Workload,
    store: &CheckpointStore,
    fp: &Fingerprint,
    kill_at: Option<u64>,
) -> Result<Option<RunOutcome>, CoreError> {
    let every = system.config().checkpoint_every;
    let total = system.run_total_cycles();
    let mut cycle = 0u64;
    if let Some(snapshot) = store.lookup(fp) {
        system.restore(&snapshot)?;
        cycle = snapshot.cycle;
    }
    let mut next_mark = cycle.checked_div(every).map_or(u64::MAX, |q| (q + 1) * every);
    while cycle < total {
        if kill_at.is_some_and(|k| cycle >= k) {
            return Ok(None);
        }
        cycle = system.run_iteration(workload, cycle, false)?;
        if cycle >= next_mark && cycle < total {
            store.store(fp, &system.snapshot())?;
            next_mark = (cycle / every + 1) * every;
        }
    }
    Ok(Some(system.collect_outcome(workload.name())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use wimnet_topology::Architecture;
    use wimnet_traffic::{InjectionProcess, UniformRandom};

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("wimnet-checkpoint-unit-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn quick() -> SystemConfig {
        SystemConfig::xcym(2, 2, Architecture::Wireless).quick_test_profile()
    }

    fn uniform(cfg: &SystemConfig, rate: f64) -> UniformRandom {
        UniformRandom::new(
            cfg.multichip.total_cores(),
            cfg.multichip.num_stacks,
            0.2,
            InjectionProcess::Bernoulli { rate },
            cfg.packet_flits,
            cfg.seed,
        )
        .with_memory_reads(0.5, 8)
    }

    fn sample_fp(seed: u64) -> Fingerprint {
        use crate::experiments::Scale;
        use crate::sweeps::ScenarioGrid;
        let grid = ScenarioGrid::new("ckpt-unit").seeds(&[seed]);
        crate::catalog::fingerprint(&grid.points()[0], Scale::Quick, 0.0)
    }

    #[test]
    fn store_roundtrips_and_replaces() {
        let store = CheckpointStore::open(test_dir("roundtrip")).unwrap();
        let fp = sample_fp(1);
        assert!(store.is_empty());
        assert!(!store.contains(&fp));
        assert!(store.lookup(&fp).is_none());
        // A pre-lookup miss on a nonexistent file quarantines nothing.
        assert_eq!(store.quarantined(), 0);

        let cfg = quick();
        let mut sys = MultichipSystem::build(&cfg).unwrap();
        let mut w = uniform(&cfg, 0.01);
        let cursor = sys.run_until(&mut w, 0, 200).unwrap();
        let snap = sys.snapshot();
        assert_eq!(snap.cycle, cursor);
        store.store(&fp, &snap).unwrap();
        assert!(store.contains(&fp));
        assert_eq!(store.len(), 1);

        let served = store.lookup(&fp).expect("fresh checkpoint must serve");
        assert_eq!(served.cycle, cursor);
        // Replacement: a later snapshot overwrites in place.
        let cursor = sys.run_until(&mut w, cursor, 400).unwrap();
        store.store(&fp, &sys.snapshot()).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup(&fp).unwrap().cycle, cursor);
        // Removal after the outcome lands in the catalog.
        assert!(store.remove(&fp));
        assert!(!store.remove(&fp));
        assert!(store.is_empty());
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_served() {
        let store = CheckpointStore::open(test_dir("corrupt")).unwrap();
        let cfg = quick();
        let mut sys = MultichipSystem::build(&cfg).unwrap();
        let mut w = uniform(&cfg, 0.01);
        sys.run_until(&mut w, 0, 150).unwrap();
        let snap = sys.snapshot();

        // Unparseable JSON.
        let fp = sample_fp(2);
        store.store(&fp, &snap).unwrap();
        fs::write(store.dir().join(format!("{}.ckpt.json", fp.hex())), "{ nope").unwrap();
        assert!(store.lookup(&fp).is_none());
        assert_eq!(store.quarantined(), 1);

        // Foreign engine version.
        let fp = sample_fp(3);
        store.store(&fp, &snap).unwrap();
        let path = store.dir().join(format!("{}.ckpt.json", fp.hex()));
        let doctored = fs::read_to_string(&path)
            .unwrap()
            .replace(ENGINE_VERSION, "wimnet-engine-v0");
        fs::write(&path, doctored).unwrap();
        assert!(store.lookup(&fp).is_none());
        assert_eq!(store.quarantined(), 2);

        // Content hash mismatch: flip a digit of the recorded hash.
        let fp = sample_fp(4);
        store.store(&fp, &snap).unwrap();
        let path = store.dir().join(format!("{}.ckpt.json", fp.hex()));
        let text = fs::read_to_string(&path).unwrap();
        let entry: CheckpointEntry = serde_json::from_str(&text).unwrap();
        let flipped = if entry.content.starts_with('0') {
            format!("1{}", &entry.content[1..])
        } else {
            format!("0{}", &entry.content[1..])
        };
        fs::write(&path, text.replacen(&entry.content, &flipped, 1)).unwrap();
        assert!(store.lookup(&fp).is_none());
        assert_eq!(store.quarantined(), 3);

        // Every quarantined file is preserved for forensics.
        let qdir = store.dir().join("quarantine");
        assert_eq!(fs::read_dir(&qdir).unwrap().count(), 3);
        assert!(store.is_empty());
    }

    #[test]
    fn sweep_temps_clears_crashed_writers() {
        let store = CheckpointStore::open(test_dir("temps")).unwrap();
        let fp = sample_fp(5);
        let debris = store
            .dir()
            .join(format!("{}.ckpt.json.tmp-999-0", fp.hex()));
        fs::write(&debris, "torn").unwrap();
        assert_eq!(store.len(), 0, "temps are not entries");
        assert_eq!(store.sweep_temps(), 1);
        assert!(!debris.exists());
    }

    #[test]
    fn kill_and_resume_equals_uninterrupted() {
        let cfg = quick();
        let fp = sample_fp(6);
        let store = CheckpointStore::open(test_dir("kill-resume")).unwrap();

        let mut reference_sys = MultichipSystem::build(&cfg).unwrap();
        let mut w = uniform(&cfg, 0.01);
        let reference = reference_sys.run(&mut w).unwrap();

        let mut cfg_ck = cfg.clone();
        cfg_ck.checkpoint_every = 128;
        let mut sys = MultichipSystem::build(&cfg_ck).unwrap();
        let mut w = uniform(&cfg, 0.01);
        let killed =
            run_with_checkpoints(&mut sys, &mut w, &store, &fp, Some(700)).unwrap();
        assert!(killed.is_none(), "the kill must interrupt the run");
        assert!(store.contains(&fp), "a checkpoint must have been left behind");

        let mut sys = MultichipSystem::build(&cfg_ck).unwrap();
        let mut w = uniform(&cfg, 0.01);
        let resumed = run_with_checkpoints(&mut sys, &mut w, &store, &fp, None)
            .unwrap()
            .expect("no kill: the resumed run must finish");
        assert_eq!(
            serde_json::to_string(&resumed).unwrap(),
            serde_json::to_string(&reference).unwrap(),
            "resume must be bit-identical to the uninterrupted run"
        );
    }

    #[test]
    fn restore_rejects_mismatched_shapes() {
        let cfg = quick();
        let mut sys = MultichipSystem::build(&cfg).unwrap();
        let mut w = uniform(&cfg, 0.01);
        sys.run_until(&mut w, 0, 100).unwrap();
        let snap = sys.snapshot();

        // Different scale: controller/switch counts differ.
        let other = SystemConfig::xcym(4, 4, Architecture::Wireless).quick_test_profile();
        let mut other_sys = MultichipSystem::build(&other).unwrap();
        assert!(matches!(
            other_sys.restore(&snap),
            Err(CoreError::Checkpoint { .. })
        ));

        // Different MAC model on the same scale: the medium refuses its
        // foreign state and the restore fails cleanly.
        let mut cfg_mac = quick();
        cfg_mac.wireless = crate::system::WirelessModel::SharedChannel {
            mac: crate::system::MacKind::Token,
        };
        let mut mac_sys = MultichipSystem::build(&cfg_mac).unwrap();
        assert!(matches!(
            mac_sys.restore(&snap),
            Err(CoreError::Checkpoint { .. })
        ));
    }
}
