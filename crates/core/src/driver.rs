//! Higher-level measurement drivers built on [`Experiment`]:
//! latency curves, saturation-point search and identical-trace A/B
//! comparisons.

use wimnet_traffic::{InjectionProcess, Trace, UniformRandom};

use crate::error::CoreError;
use crate::experiments::{run_all, Experiment};
use crate::metrics::RunOutcome;
use crate::system::{MultichipSystem, SystemConfig};

/// Measures the latency-vs-load curve for one configuration (one point
/// per load, all runs in parallel).
///
/// # Errors
///
/// Propagates experiment failures.
pub fn latency_curve(
    config: &SystemConfig,
    loads: &[f64],
) -> Result<Vec<(f64, Option<f64>)>, CoreError> {
    let experiments: Vec<Experiment> = loads
        .iter()
        .map(|&l| Experiment::uniform_random(config, l))
        .collect();
    let outcomes = run_all(&experiments)?;
    Ok(loads
        .iter()
        .copied()
        .zip(outcomes.into_iter().map(|o| o.avg_latency_cycles))
        .collect())
}

/// Finds the saturation injection load by bisection: the smallest load
/// (within `tolerance`, in packets/core/cycle) at which mean latency
/// exceeds `threshold ×` the zero-load latency — the standard definition
/// behind "the network saturates at X" statements like the paper's Fig 3
/// discussion.
///
/// # Errors
///
/// Propagates experiment failures; returns
/// [`CoreError::InvalidParameter`] for a degenerate bracket.
pub fn find_saturation_load(
    config: &SystemConfig,
    threshold: f64,
    tolerance: f64,
) -> Result<f64, CoreError> {
    if threshold <= 1.0 || tolerance <= 0.0 {
        return Err(CoreError::InvalidParameter {
            what: "threshold must exceed 1.0 and tolerance must be positive".into(),
        });
    }
    let base_load = 1e-4;
    let base = Experiment::uniform_random(config, base_load).run()?;
    let Some(zero_load_latency) = base.avg_latency_cycles else {
        return Err(CoreError::InvalidParameter {
            what: "no packets measured at the zero-load anchor".into(),
        });
    };
    let saturated = |load: f64| -> Result<bool, CoreError> {
        let o = Experiment::uniform_random(config, load).run()?;
        Ok(match o.avg_latency_cycles {
            Some(l) => l > threshold * zero_load_latency,
            // Nothing measured: hopelessly saturated.
            None => true,
        })
    };
    let (mut lo, mut hi) = (base_load, 1.0f64);
    if saturated(lo)? {
        return Ok(lo);
    }
    while hi - lo > tolerance {
        let mid = (lo + hi) / 2.0;
        if saturated(mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

/// Records one uniform-random trace and replays it on every
/// configuration — identical packet sequences, so A/B differences come
/// from the architecture alone (generator noise is eliminated).
///
/// All configurations must share the same system shape.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] when shapes differ; otherwise
/// propagates run failures.
pub fn compare_on_shared_trace(
    configs: &[SystemConfig],
    load: f64,
    memory_fraction: f64,
) -> Result<Vec<RunOutcome>, CoreError> {
    let Some(first) = configs.first() else {
        return Ok(Vec::new());
    };
    let shape = (first.multichip.total_cores(), first.multichip.num_stacks);
    for c in configs {
        if (c.multichip.total_cores(), c.multichip.num_stacks) != shape {
            return Err(CoreError::InvalidParameter {
                what: "trace comparison needs identical system shapes".into(),
            });
        }
    }
    let mut generator = UniformRandom::new(
        shape.0,
        shape.1,
        memory_fraction,
        InjectionProcess::Bernoulli { rate: load },
        first.packet_flits,
        first.seed,
    );
    let cycles = first.warmup_cycles + first.measure_cycles;
    let trace = Trace::record(&mut generator, cycles);

    let mut outcomes = Vec::with_capacity(configs.len());
    for config in configs {
        let mut system = MultichipSystem::build(config)?;
        let mut replay = trace.replay();
        outcomes.push(system.run(&mut replay)?);
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimnet_topology::Architecture;

    fn quick(arch: Architecture) -> SystemConfig {
        SystemConfig::xcym(4, 4, arch).quick_test_profile()
    }

    #[test]
    fn latency_curve_is_ordered_by_load() {
        let curve = latency_curve(&quick(Architecture::Wireless), &[0.001, 0.02]).unwrap();
        assert_eq!(curve.len(), 2);
        let low = curve[0].1.unwrap();
        let high = curve[1].1.unwrap();
        assert!(high > low, "latency must rise toward saturation: {low} vs {high}");
    }

    #[test]
    fn saturation_load_is_found_and_bracketed() {
        // The relative-threshold criterion needs a longer window than
        // the quick profile to anchor its zero-load latency reliably
        // (the 1e-4 anchor sees only ~10 packets in 1 500 cycles, so
        // the knee estimate is anchor-noise-limited below ~4 000).
        let windows = |arch| {
            let mut cfg = quick(arch);
            cfg.warmup_cycles = 500;
            cfg.measure_cycles = 4_000;
            cfg
        };
        let wireless =
            find_saturation_load(&windows(Architecture::Wireless), 3.0, 0.01).unwrap();
        assert!(wireless > 0.0 && wireless < 1.0, "got {wireless}");
        // Wireless saturates at no lower an injection load than the
        // interposer (the Fig 3 claim).  The substrate is excluded: its
        // post-saturation latency plateaus from survivor bias, which the
        // threshold criterion cannot bracket.
        let interposer =
            find_saturation_load(&windows(Architecture::Interposer), 3.0, 0.01).unwrap();
        assert!(
            wireless >= interposer,
            "wireless {wireless} vs interposer {interposer}"
        );
    }

    #[test]
    fn saturation_rejects_bad_parameters() {
        assert!(find_saturation_load(&quick(Architecture::Wireless), 0.5, 0.01).is_err());
        assert!(find_saturation_load(&quick(Architecture::Wireless), 3.0, 0.0).is_err());
    }

    #[test]
    fn shared_trace_comparison_is_apples_to_apples() {
        let configs = vec![
            quick(Architecture::Interposer),
            quick(Architecture::Wireless),
        ];
        let outcomes = compare_on_shared_trace(&configs, 0.002, 0.2).unwrap();
        assert_eq!(outcomes.len(), 2);
        // Identical offered traffic: injected packet counts match.
        assert!(outcomes[0].packets_delivered() > 0);
        assert!(outcomes[1].packets_delivered() > 0);
        // The wireless system still wins energy on the identical trace.
        assert!(outcomes[1].packet_energy_nj() < outcomes[0].packet_energy_nj());
    }

    #[test]
    fn shared_trace_rejects_mismatched_shapes() {
        let configs = vec![
            quick(Architecture::Interposer),
            // Two stacks instead of four: a genuinely different shape
            // (8C4M would still be 64 cores x 4 stacks).
            SystemConfig::xcym(4, 2, Architecture::Wireless).quick_test_profile(),
        ];
        assert!(matches!(
            compare_on_shared_trace(&configs, 0.002, 0.2),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn empty_config_list_is_fine() {
        assert!(compare_on_shared_trace(&[], 0.1, 0.2).unwrap().is_empty());
    }
}
