//! Error type for the framework crate.

use std::error::Error;
use std::fmt;

use wimnet_noc::NocError;
use wimnet_routing::RoutingError;
use wimnet_topology::TopologyError;

/// Errors raised while building or running a multichip experiment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// Topology construction failed.
    Topology(TopologyError),
    /// Route computation failed.
    Routing(RoutingError),
    /// Engine construction or stepping failed.
    Noc(NocError),
    /// The simulation made no forward progress — a deadlock with the
    /// chosen (non-guaranteed) routing policy, or a saturated wireless
    /// configuration without an attached medium.
    Stalled {
        /// Cycle at which the watchdog gave up.
        cycle: u64,
    },
    /// An experiment parameter is out of range.
    InvalidParameter {
        /// Description of the offending parameter.
        what: String,
    },
    /// The on-disk result catalog could not be created or written.
    /// (Unreadable/corrupt *entries* are not errors — the catalog
    /// quarantines them and reports a miss; see `catalog::Catalog`.)
    Catalog {
        /// Description of the failing catalog operation.
        what: String,
    },
    /// A checkpoint could not be taken, written, or restored.
    /// (Unreadable/corrupt on-disk *snapshots* are not errors — the
    /// store quarantines them and reports a miss; see
    /// `checkpoint::CheckpointStore`.)
    Checkpoint {
        /// Description of the failing checkpoint operation.
        what: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Topology(e) => write!(f, "topology: {e}"),
            CoreError::Routing(e) => write!(f, "routing: {e}"),
            CoreError::Noc(e) => write!(f, "engine: {e}"),
            CoreError::Stalled { cycle } => {
                write!(f, "simulation stalled at cycle {cycle}")
            }
            CoreError::InvalidParameter { what } => {
                write!(f, "invalid parameter: {what}")
            }
            CoreError::Catalog { what } => {
                write!(f, "result catalog: {what}")
            }
            CoreError::Checkpoint { what } => {
                write!(f, "checkpoint store: {what}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Topology(e) => Some(e),
            CoreError::Routing(e) => Some(e),
            CoreError::Noc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for CoreError {
    fn from(e: TopologyError) -> Self {
        CoreError::Topology(e)
    }
}

impl From<RoutingError> for CoreError {
    fn from(e: RoutingError) -> Self {
        CoreError::Routing(e)
    }
}

impl From<NocError> for CoreError {
    fn from(e: NocError) -> Self {
        CoreError::Noc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CoreError = TopologyError::ZeroSized { what: "chips" }.into();
        assert!(matches!(e, CoreError::Topology(_)));
        assert!(e.source().is_some());
        let e: CoreError = RoutingError::EmptyGraph.into();
        assert!(format!("{e}").contains("routing"));
        let e = CoreError::Stalled { cycle: 12 };
        assert!(e.source().is_none());
        assert!(format!("{e}").contains("12"));
    }
}
