//! The paper's evaluation: one function per figure.
//!
//! Each `figN` function reproduces the corresponding figure of §IV with
//! the same workloads, sweeps and comparisons, returning structured rows
//! ready for the `wimnet-bench` harness to print.  [`Scale::Quick`]
//! shrinks windows and sweep density for tests; [`Scale::Paper`] runs
//! the full 1 000 + 9 000-cycle windows.

use serde::{Deserialize, Serialize};

use wimnet_topology::Architecture;
use wimnet_traffic::profiles;
use wimnet_traffic::{AppProfile, AppWorkload, InjectionProcess, UniformRandom, Workload};

use crate::catalog::Fingerprint;
use crate::checkpoint::{run_with_checkpoints, CheckpointStore};
use crate::error::CoreError;
use crate::metrics::{percentage_gain, percentage_reduction, RunOutcome};
use crate::system::{MultichipSystem, SystemConfig};

/// How much simulation to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// The paper's windows (1 000 warmup + 9 000 measured cycles) and
    /// full sweeps.
    Paper,
    /// Reduced windows and sweeps for tests and CI.
    Quick,
}

impl Scale {
    /// Applies the scale to a config.
    pub fn apply(self, config: SystemConfig) -> SystemConfig {
        match self {
            Scale::Paper => config,
            Scale::Quick => config.quick_test_profile(),
        }
    }
}

/// What traffic an [`Experiment`] drives.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadSpec {
    /// Uniform random with a Bernoulli injection rate (Fig 3 points).
    UniformRandom {
        /// Packets per core per cycle.
        load: f64,
        /// Memory-access share of generated packets.
        memory_fraction: f64,
        /// Share of the memory packets that are read *requests*
        /// (closed-loop traffic through the stack controllers; 0 keeps
        /// the paper's fire-and-forget stores).
        read_share: f64,
    },
    /// Uniform random at maximum load (Figs 2, 4, 5).
    Saturation {
        /// Memory-access share of generated packets.
        memory_fraction: f64,
        /// Share of the memory packets that are read requests.
        read_share: f64,
    },
    /// A SynFull-substitute application model (Fig 6).
    App {
        /// The application profile.
        profile: AppProfile,
    },
    /// A classic permutation pattern (extended evaluation beyond the
    /// paper: transpose, bit-complement, hotspot …).
    Pattern {
        /// The destination pattern.
        pattern: wimnet_traffic::TrafficPattern,
        /// Packets per core per cycle.
        load: f64,
        /// Memory-access share of generated packets.
        memory_fraction: f64,
    },
}

/// One runnable simulation: a system configuration plus a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    config: SystemConfig,
    spec: WorkloadSpec,
}

impl Experiment {
    /// Creates an experiment.
    pub fn new(config: SystemConfig, spec: WorkloadSpec) -> Self {
        Experiment { config, spec }
    }

    /// Uniform random traffic at `load` packets/core/cycle with the
    /// paper's 20 % memory-access share.
    pub fn uniform_random(config: &SystemConfig, load: f64) -> Self {
        Experiment::new(
            config.clone(),
            WorkloadSpec::UniformRandom { load, memory_fraction: 0.20, read_share: 0.0 },
        )
    }

    /// Memory-bound closed-loop traffic: uniform random at `load` with
    /// `memory_fraction` memory packets, all of them read requests that
    /// exercise the stack controllers and pull data replies back.
    pub fn memory_reads(config: &SystemConfig, load: f64, memory_fraction: f64) -> Self {
        Experiment::new(
            config.clone(),
            WorkloadSpec::UniformRandom { load, memory_fraction, read_share: 1.0 },
        )
    }

    /// Saturation (maximum load) with `memory_fraction` memory traffic.
    pub fn saturation(config: &SystemConfig, memory_fraction: f64) -> Self {
        Experiment::new(
            config.clone(),
            WorkloadSpec::Saturation { memory_fraction, read_share: 0.0 },
        )
    }

    /// An application workload.
    pub fn app(config: &SystemConfig, profile: AppProfile) -> Self {
        Experiment::new(config.clone(), WorkloadSpec::App { profile })
    }

    /// A permutation-pattern workload with the paper's 20 % memory share.
    pub fn pattern(
        config: &SystemConfig,
        pattern: wimnet_traffic::TrafficPattern,
        load: f64,
    ) -> Self {
        Experiment::new(
            config.clone(),
            WorkloadSpec::Pattern { pattern, load, memory_fraction: 0.20 },
        )
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Mutable access to the configuration — for sweep drivers that
    /// post-process grid-built experiments (e.g. `bench_engine`
    /// toggling [`SystemConfig::disable_fast_forward`] for its
    /// full-stepping baseline block).
    pub fn config_mut(&mut self) -> &mut SystemConfig {
        &mut self.config
    }

    /// Core→home-stack mapping for NUMA-affine memory traffic.
    fn home_stacks(&self) -> Vec<usize> {
        wimnet_topology::MultichipLayout::build(&self.config.multichip)
            .map(|l| l.home_stacks())
            .unwrap_or_default()
    }

    pub(crate) fn build_workload(&self) -> Box<dyn Workload + Send> {
        let cores = self.config.multichip.total_cores();
        let stacks = self.config.multichip.num_stacks;
        let affine = |w: UniformRandom| -> UniformRandom {
            if self.config.memory_affinity_bias > 0.0 {
                w.with_memory_affinity(self.config.memory_affinity_bias, self.home_stacks())
            } else {
                w
            }
        };
        // Read requests carry the address, not the data: an eighth of
        // a data packet (8 flits at the paper's 64-flit packets), with
        // the full-size reply injected by the stack on completion.
        let request_flits = (self.config.packet_flits / 8).max(1);
        let reads = |w: UniformRandom, share: f64| -> UniformRandom {
            if share > 0.0 {
                w.with_memory_reads(share, request_flits)
            } else {
                w
            }
        };
        match &self.spec {
            WorkloadSpec::UniformRandom { load, memory_fraction, read_share } => {
                Box::new(reads(
                    affine(UniformRandom::new(
                        cores,
                        stacks,
                        *memory_fraction,
                        InjectionProcess::Bernoulli { rate: *load },
                        self.config.packet_flits,
                        self.config.seed,
                    )),
                    *read_share,
                ))
            }
            WorkloadSpec::Saturation { memory_fraction, read_share } => Box::new(reads(
                affine(UniformRandom::new(
                    cores,
                    stacks,
                    *memory_fraction,
                    InjectionProcess::Saturation,
                    self.config.packet_flits,
                    self.config.seed,
                )),
                *read_share,
            )),
            WorkloadSpec::App { profile } => Box::new(AppWorkload::new(
                profile.clone(),
                self.config.multichip.num_chips,
                self.config.multichip.cores_per_chip,
                stacks,
                self.config.seed,
            )),
            WorkloadSpec::Pattern { pattern, load, memory_fraction } => {
                Box::new(wimnet_traffic::patterns::PatternWorkload::new(
                    pattern.clone(),
                    cores,
                    stacks,
                    *memory_fraction,
                    InjectionProcess::Bernoulli { rate: *load },
                    self.config.packet_flits,
                    self.config.seed,
                ))
            }
        }
    }

    /// Builds the system, runs the workload, returns the outcome.
    ///
    /// # Errors
    ///
    /// Propagates construction failures and stalls.
    pub fn run(&self) -> Result<RunOutcome, CoreError> {
        let mut system = MultichipSystem::build(&self.config)?;
        let mut workload = self.build_workload();
        system.run(workload.as_mut())
    }

    /// Like [`Experiment::run`], but also exports the Chrome-trace JSON
    /// when `config.telemetry.trace` is set (`None` otherwise) — the
    /// plumbing behind the experiment binaries' `--trace FILE` flag and
    /// the `sweep trace` verb.  The outcome is bit-identical to an
    /// untraced run (`tests/determinism.rs`); only the side channel
    /// differs.
    ///
    /// # Errors
    ///
    /// Propagates construction failures and stalls.
    pub fn run_traced(&self) -> Result<(RunOutcome, Option<String>), CoreError> {
        let mut system = MultichipSystem::build(&self.config)?;
        let mut workload = self.build_workload();
        let outcome = system.run(workload.as_mut())?;
        let trace = system.export_chrome_trace();
        Ok((outcome, trace))
    }

    /// Runs with checkpointing against `store` under the scenario key
    /// `fp`: resumes from the latest serveable snapshot, persists one at
    /// every `config.checkpoint_every` mark, and — `kill_at` aside —
    /// produces the bit-identical [`RunOutcome`] of [`Experiment::run`].
    /// See [`crate::checkpoint::run_with_checkpoints`] for the `kill_at`
    /// crash-simulation contract (`Ok(None)` when killed).
    ///
    /// # Errors
    ///
    /// Propagates build, run and checkpoint-store failures.
    pub fn run_checkpointed(
        &self,
        store: &CheckpointStore,
        fp: &Fingerprint,
        kill_at: Option<u64>,
    ) -> Result<Option<RunOutcome>, CoreError> {
        let mut system = MultichipSystem::build(&self.config)?;
        let mut workload = self.build_workload();
        run_with_checkpoints(&mut system, workload.as_mut(), store, fp, kill_at)
    }
}

/// Runs experiments in parallel on the work-stealing pool (each
/// simulation is independent and single-threaded; the pool sizes itself
/// to the machine, so lists far longer than the core count are fine).
///
/// Outcomes keep input order and are bit-identical for every pool
/// shape — see [`crate::sweeps::run_pool`] for the stronger contract
/// and explicit thread/chunk control.
///
/// # Errors
///
/// Returns the lowest-indexed failing experiment's error.
pub fn run_all(experiments: &[Experiment]) -> Result<Vec<RunOutcome>, CoreError> {
    crate::sweeps::run_pool(experiments, crate::sweeps::default_threads(), 1)
}

// ---------------------------------------------------------------------
// Fig 2: peak bandwidth per core and average packet energy, 4C4M,
// uniform random, 20% memory accesses, all three architectures.
// ---------------------------------------------------------------------

/// One bar pair of Fig 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Architecture.
    pub architecture: Architecture,
    /// The paper's bar label, e.g. `"4C4M (Wireless)"`.
    pub label: String,
    /// Peak achievable bandwidth per core, Gbps.
    pub peak_bandwidth_gbps_per_core: f64,
    /// Average packet energy, nJ.
    pub avg_packet_energy_nj: f64,
}

/// Reproduces Fig 2.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn fig2(scale: Scale) -> Result<Vec<Fig2Row>, CoreError> {
    let experiments: Vec<Experiment> = Architecture::ALL
        .iter()
        .map(|&arch| {
            let cfg = scale.apply(SystemConfig::xcym(4, 4, arch));
            Experiment::saturation(&cfg, 0.20)
        })
        .collect();
    let outcomes = run_all(&experiments)?;
    Ok(Architecture::ALL
        .iter()
        .zip(outcomes)
        .map(|(&architecture, o)| Fig2Row {
            architecture,
            label: o.label.clone(),
            peak_bandwidth_gbps_per_core: o.bandwidth_gbps_per_core,
            avg_packet_energy_nj: o.packet_energy_nj(),
        })
        .collect())
}

// ---------------------------------------------------------------------
// Fig 3: average packet latency vs injection load, same setup.
// ---------------------------------------------------------------------

/// One latency curve of Fig 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Series {
    /// Architecture.
    pub architecture: Architecture,
    /// The curve label.
    pub label: String,
    /// `(injection load in packets/core/cycle, mean latency in cycles)`;
    /// latency is `None` past saturation when nothing measured finished.
    pub points: Vec<(f64, Option<f64>)>,
}

/// The paper's log-spaced injection loads (packets/core/cycle).
pub fn fig3_loads(scale: Scale) -> Vec<f64> {
    match scale {
        Scale::Paper => vec![0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.125],
        Scale::Quick => vec![0.001, 0.008, 0.064],
    }
}

/// Reproduces Fig 3.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn fig3(scale: Scale) -> Result<Vec<Fig3Series>, CoreError> {
    let loads = fig3_loads(scale);
    let mut series = Vec::new();
    for &arch in &Architecture::ALL {
        let cfg = scale.apply(SystemConfig::xcym(4, 4, arch));
        let experiments: Vec<Experiment> = loads
            .iter()
            .map(|&load| Experiment::uniform_random(&cfg, load))
            .collect();
        let outcomes = run_all(&experiments)?;
        series.push(Fig3Series {
            architecture: arch,
            label: cfg.label(),
            points: loads
                .iter()
                .zip(outcomes)
                .map(|(&l, o)| (l, o.avg_latency_cycles))
                .collect(),
        });
    }
    Ok(series)
}

// ---------------------------------------------------------------------
// Fig 4: % gains (wireless vs interposer) vs chip-to-chip traffic:
// 1C4M (20% off-chip), 4C4M (80%), 8C4M (90%).
// ---------------------------------------------------------------------

/// One configuration column of Fig 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Chips in the disintegrated system.
    pub chips: usize,
    /// The paper's x label, e.g. `"80% (4C4M)"`.
    pub label: String,
    /// Share of traffic leaving the source chip, in percent.
    pub off_chip_traffic_pct: f64,
    /// Bandwidth gain of wireless over interposer, percent.
    pub bandwidth_gain_pct: f64,
    /// Packet energy reduction of wireless under interposer, percent.
    pub energy_gain_pct: f64,
}

/// Expected off-chip share for an `XC4M` system at 20 % memory traffic.
fn off_chip_share(chips: usize) -> f64 {
    let cores = 64.0;
    let per_chip = cores / chips as f64;
    let other = cores - per_chip;
    0.20 + 0.80 * (other / (cores - 1.0))
}

/// Reproduces Fig 4.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn fig4(scale: Scale) -> Result<Vec<Fig4Row>, CoreError> {
    let mut rows = Vec::new();
    for &chips in &[1usize, 4, 8] {
        let wireless = scale.apply(SystemConfig::xcym(chips, 4, Architecture::Wireless));
        let interposer =
            scale.apply(SystemConfig::xcym(chips, 4, Architecture::Interposer));
        let outcomes = run_all(&[
            Experiment::saturation(&wireless, 0.20),
            Experiment::saturation(&interposer, 0.20),
        ])?;
        let (w, i) = (&outcomes[0], &outcomes[1]);
        let off = off_chip_share(chips) * 100.0;
        rows.push(Fig4Row {
            chips,
            label: format!("{:.0}% ({}C4M)", off.round(), chips),
            off_chip_traffic_pct: off,
            bandwidth_gain_pct: percentage_gain(
                i.bandwidth_gbps_per_core,
                w.bandwidth_gbps_per_core,
            ),
            energy_gain_pct: percentage_reduction(
                i.packet_energy_nj(),
                w.packet_energy_nj(),
            ),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// Fig 5: % gains (wireless vs interposer) vs memory-access share,
// 4C4M, 20%..80%.
// ---------------------------------------------------------------------

/// One memory-share column of Fig 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Memory-access share, percent.
    pub memory_access_pct: f64,
    /// Bandwidth gain of wireless over interposer, percent.
    pub bandwidth_gain_pct: f64,
    /// Packet energy reduction of wireless under interposer, percent.
    pub energy_gain_pct: f64,
}

/// Reproduces Fig 5.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn fig5(scale: Scale) -> Result<Vec<Fig5Row>, CoreError> {
    let fractions = match scale {
        Scale::Paper => vec![0.20, 0.40, 0.60, 0.80],
        Scale::Quick => vec![0.20, 0.80],
    };
    let mut rows = Vec::new();
    for &mem in &fractions {
        let wireless = scale.apply(SystemConfig::xcym(4, 4, Architecture::Wireless));
        let interposer = scale.apply(SystemConfig::xcym(4, 4, Architecture::Interposer));
        let outcomes = run_all(&[
            Experiment::saturation(&wireless, mem),
            Experiment::saturation(&interposer, mem),
        ])?;
        let (w, i) = (&outcomes[0], &outcomes[1]);
        rows.push(Fig5Row {
            memory_access_pct: mem * 100.0,
            bandwidth_gain_pct: percentage_gain(
                i.bandwidth_gbps_per_core,
                w.bandwidth_gbps_per_core,
            ),
            energy_gain_pct: percentage_reduction(
                i.packet_energy_nj(),
                w.packet_energy_nj(),
            ),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------
// Fig 6: % gains (wireless vs interposer) per application.
// ---------------------------------------------------------------------

/// One application pair of Fig 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Application name.
    pub app: String,
    /// Benchmark suite.
    pub suite: String,
    /// Latency reduction of wireless under interposer, percent.
    pub latency_gain_pct: f64,
    /// Packet energy reduction of wireless under interposer, percent.
    pub energy_gain_pct: f64,
}

/// The applications evaluated at each scale.
pub fn fig6_apps(scale: Scale) -> Vec<AppProfile> {
    match scale {
        Scale::Paper => profiles::all(),
        Scale::Quick => vec![
            profiles::blackscholes(),
            profiles::canneal(),
            profiles::fft(),
            profiles::radix(),
        ],
    }
}

/// Reproduces Fig 6.
///
/// # Errors
///
/// Propagates experiment failures.
pub fn fig6(scale: Scale) -> Result<Vec<Fig6Row>, CoreError> {
    let mut rows = Vec::new();
    for profile in fig6_apps(scale) {
        let wireless = scale.apply(SystemConfig::xcym(4, 4, Architecture::Wireless));
        let interposer = scale.apply(SystemConfig::xcym(4, 4, Architecture::Interposer));
        let outcomes = run_all(&[
            Experiment::app(&wireless, profile.clone()),
            Experiment::app(&interposer, profile.clone()),
        ])?;
        let (w, i) = (&outcomes[0], &outcomes[1]);
        rows.push(Fig6Row {
            app: profile.name.to_string(),
            suite: profile.suite.to_string(),
            latency_gain_pct: percentage_reduction(i.latency_cycles(), w.latency_cycles()),
            energy_gain_pct: percentage_reduction(
                i.packet_energy_nj(),
                w.packet_energy_nj(),
            ),
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_quick_reproduces_the_paper_ordering() {
        let rows = fig2(Scale::Quick).unwrap();
        assert_eq!(rows.len(), 3);
        let by = |a: Architecture| {
            rows.iter().find(|r| r.architecture == a).unwrap().clone()
        };
        let substrate = by(Architecture::Substrate);
        let interposer = by(Architecture::Interposer);
        let wireless = by(Architecture::Wireless);
        // §IV.B: wireless has the highest bandwidth and lowest energy;
        // interposer beats substrate.
        assert!(
            wireless.peak_bandwidth_gbps_per_core
                > interposer.peak_bandwidth_gbps_per_core,
            "wireless {} vs interposer {}",
            wireless.peak_bandwidth_gbps_per_core,
            interposer.peak_bandwidth_gbps_per_core
        );
        assert!(
            interposer.peak_bandwidth_gbps_per_core
                > substrate.peak_bandwidth_gbps_per_core
        );
        assert!(wireless.avg_packet_energy_nj < interposer.avg_packet_energy_nj);
        assert!(interposer.avg_packet_energy_nj < substrate.avg_packet_energy_nj);
    }

    #[test]
    fn fig3_quick_latency_rises_with_load() {
        let series = fig3(Scale::Quick).unwrap();
        assert_eq!(series.len(), 3);
        for s in &series {
            let first = s.points.first().unwrap().1.expect("low load finishes");
            assert!(first > 0.0);
            // Latency is non-decreasing in load where measured.
            let measured: Vec<f64> = s.points.iter().filter_map(|p| p.1).collect();
            for w in measured.windows(2) {
                assert!(
                    w[1] >= w[0] * 0.8,
                    "{}: latency should not collapse with load: {measured:?}",
                    s.label
                );
            }
        }
        // Wireless has the lowest zero-load latency (§IV.B).  The
        // substrate is excluded from this quick-scale comparison: its
        // slow cross-chip serial packets are censored by the short
        // measurement window (survivor bias), which can deflate its
        // mean below the fully-measured fabrics on some traffic
        // realizations.  The full ordering holds at Scale::Paper.
        let low = |a: Architecture| {
            series
                .iter()
                .find(|s| s.architecture == a)
                .unwrap()
                .points[0]
                .1
                .unwrap()
        };
        assert!(low(Architecture::Wireless) < low(Architecture::Interposer));
    }

    #[test]
    fn fig4_quick_wireless_wins_at_every_disintegration_level() {
        let rows = fig4(Scale::Quick).unwrap();
        assert_eq!(rows.len(), 3);
        // Off-chip shares match §IV.C: 20%, 80%, 90%.
        assert!((rows[0].off_chip_traffic_pct - 20.0).abs() < 1.0);
        assert!((rows[1].off_chip_traffic_pct - 81.0).abs() < 1.5);
        assert!((rows[2].off_chip_traffic_pct - 91.0).abs() < 1.5);
        // The paper's robust claim: wireless wins bandwidth and energy
        // at every disintegration level.  (The paper additionally shows
        // *decreasing* gains with chip count; our mechanism-faithful
        // rebuild inverts parts of that trend — see EXPERIMENTS.md for
        // the analysis of why the paper's trend is inconsistent with
        // its own per-bit energy constants.)
        for r in &rows {
            assert!(
                r.bandwidth_gain_pct > 0.0,
                "wireless must win bandwidth at {}: {r:?}",
                r.label
            );
            assert!(
                r.energy_gain_pct > 0.0,
                "wireless must save energy at {}: {r:?}",
                r.label
            );
        }
    }

    #[test]
    fn fig5_quick_wireless_wins_where_the_paper_is_robust() {
        let rows = fig5(Scale::Quick).unwrap();
        assert_eq!(rows.len(), 2);
        // Robust claims: wireless clearly wins bandwidth at low memory
        // share, the bandwidth gain falls as memory dominates (both
        // fabrics converge on the memory-side bottleneck — the paper's
        // asymptote), and energy gains stay positive throughout.
        assert!(rows[0].bandwidth_gain_pct > 0.0, "{rows:?}");
        assert!(
            rows[1].bandwidth_gain_pct < rows[0].bandwidth_gain_pct,
            "bandwidth gain must fall with memory share: {rows:?}"
        );
        assert!(
            rows[1].bandwidth_gain_pct > -30.0,
            "high-memory bandwidth stays in the asymptotic band: {rows:?}"
        );
        for r in &rows {
            assert!(r.energy_gain_pct > 0.0, "{r:?}");
            assert!(r.energy_gain_pct < 80.0, "{r:?}");
        }
        // The energy trend direction diverges from the paper (rising,
        // not falling, with memory share) — documented in
        // EXPERIMENTS.md: the paper's own constants make wireless
        // memory paths ~3x cheaper per bit than the 6.5 pJ/bit wide
        // I/O, so memory-heavy traffic must favour wireless more.
        assert!(
            rows[1].energy_gain_pct > rows[0].energy_gain_pct * 0.5,
            "gains stay substantial across the sweep: {rows:?}"
        );
    }

    #[test]
    fn fig6_quick_wireless_wins_latency_and_energy() {
        let rows = fig6(Scale::Quick).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.latency_gain_pct > 0.0,
                "{}: wireless must cut latency, got {r:?}",
                r.app
            );
            assert!(
                r.energy_gain_pct > 0.0,
                "{}: wireless must cut energy, got {r:?}",
                r.app
            );
        }
    }

    #[test]
    fn pattern_experiments_run_end_to_end() {
        let cfg =
            SystemConfig::xcym(4, 4, Architecture::Wireless).quick_test_profile();
        let outcome = Experiment::pattern(
            &cfg,
            wimnet_traffic::TrafficPattern::Transpose,
            0.002,
        )
        .run()
        .unwrap();
        assert!(outcome.packets_delivered() > 0);
        assert!(outcome.workload.contains("transpose"));
    }

    #[test]
    fn run_all_preserves_order() {
        let cfg =
            SystemConfig::xcym(4, 4, Architecture::Substrate).quick_test_profile();
        let exps =
            vec![Experiment::uniform_random(&cfg, 0.001), Experiment::uniform_random(&cfg, 0.004)];
        let outcomes = run_all(&exps).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].label, outcomes[1].label);
    }
}
