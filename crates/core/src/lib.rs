//! The SOCC'17 wireless multichip interconnection framework.
//!
//! This crate is the paper's primary contribution assembled from the
//! `wimnet` substrates: it builds complete multichip systems
//! ([`MultichipSystem`]) for the three compared architectures, drives
//! them with workloads, and regenerates every figure of the paper's
//! evaluation (§IV).
//!
//! * [`system`] — [`SystemConfig`] (every §IV parameter in one place)
//!   and [`MultichipSystem`] (topology + routing + engine + wireless
//!   medium + memory stacks, with request/reply service).
//! * [`metrics`] — [`RunOutcome`]: peak bandwidth per core, average
//!   packet energy, average packet latency, energy breakdowns, and the
//!   percentage-gain arithmetic behind Figs 4–6.
//! * [`experiments`] — one function per figure (`fig2` … `fig6`) plus
//!   the [`Experiment`] runner they share.
//! * [`sweeps`] — declarative [`ScenarioGrid`] cartesian products and
//!   the work-stealing pool (`run_pool` / `run_pool_batched`) that
//!   executes grids larger than the core count (see `docs/sweeps.md`).
//! * [`catalog`] — the fingerprint-keyed on-disk result cache behind
//!   [`ScenarioGrid::run_cached`](sweeps::ScenarioGrid::run_cached):
//!   deterministic outcomes memoized under
//!   (scenario bytes, engine version) keys with atomic writes and
//!   quarantine-on-corruption, making sweeps resumable and shardable
//!   (front-ended by the `sweep` CLI in `wimnet-bench`).
//! * [`replica`] — [`ReplicaBatch`]: N independent scenario points
//!   advanced in lockstep by one driver loop over the engine's masked
//!   fast stepper, bit-identical to N sequential runs (see
//!   `docs/engine.md`, "Replica batching").
//! * [`checkpoint`] — full-engine [`Snapshot`]s and the
//!   [`CheckpointStore`]: snapshot → restore → run is bit-identical to
//!   an uninterrupted run, so long sweeps survive kills mid-point and
//!   resume from the latest cadence mark (see `docs/checkpoint.md`).
//! * [`report`] — plain-text tables and CSV output for the harness.
//!
//! # Quickstart
//!
//! ```
//! use wimnet_core::{Experiment, SystemConfig};
//! use wimnet_topology::Architecture;
//!
//! let config = SystemConfig::xcym(4, 4, Architecture::Wireless)
//!     .quick_test_profile();
//! let outcome = Experiment::uniform_random(&config, 0.005).run()?;
//! assert!(outcome.packets_delivered() > 0);
//! # Ok::<(), wimnet_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod checkpoint;
pub mod driver;
pub mod error;
pub mod experiments;
pub mod metrics;
pub mod replica;
pub mod report;
pub mod sweeps;
pub mod system;

pub use catalog::{Catalog, CatalogEntry, Fingerprint, ENGINE_VERSION};
pub use checkpoint::{run_with_checkpoints, CheckpointEntry, CheckpointStore, Snapshot};
pub use driver::{compare_on_shared_trace, find_saturation_load, latency_curve};
pub use error::CoreError;
pub use experiments::{Experiment, Scale, WorkloadSpec};
pub use metrics::{percentage_gain, RunOutcome};
pub use replica::ReplicaBatch;
pub use sweeps::{run_pool, run_pool_batched, CachedSweep, ScenarioGrid, ScenarioPoint};
pub use system::{MacKind, MultichipSystem, SystemConfig, SystemState, WirelessModel};
pub use wimnet_telemetry::TelemetryConfig;
