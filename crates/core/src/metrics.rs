//! Experiment metrics: the paper's three reported quantities.
//!
//! §IV: "we evaluate the performance and energy efficiency … in terms of
//! peak achievable bandwidth per core, average packet energy, and
//! average packet latency."

use serde::{Deserialize, Serialize};

use wimnet_energy::EnergyBreakdown;
use wimnet_memory::MemoryStackStats;
use wimnet_noc::Network;
use wimnet_telemetry::TelemetrySummary;

use crate::system::SystemConfig;

/// The measured outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Architecture label, e.g. `"4C4M (Wireless)"`.
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Cores in the system.
    pub cores: usize,
    /// Measured cycles.
    pub window_cycles: u64,
    /// Packets delivered inside the measurement window.
    pub window_packets: u64,
    /// Packets delivered since simulation start.
    pub total_packets: u64,
    /// Delivered bandwidth per core in Gbps ("peak achievable bandwidth
    /// per core" when driven at saturation).
    pub bandwidth_gbps_per_core: f64,
    /// Mean energy to move one packet source→destination, in nJ
    /// (total measured energy / packets delivered, §IV).
    pub avg_packet_energy_nj: Option<f64>,
    /// Mean end-to-end packet latency in cycles.
    pub avg_latency_cycles: Option<f64>,
    /// Worst packet latency in cycles.
    pub max_latency_cycles: Option<u64>,
    /// Median end-to-end latency in cycles, rank-exact from the full
    /// log-linear histogram (defaulted so pre-v9 catalog entries parse).
    #[serde(default)]
    pub p50_latency_cycles: Option<u64>,
    /// 99th-percentile latency, rank-exact from the full log-linear
    /// histogram.  Pre-v9 entries stored a power-of-two bucket upper
    /// *bound* here — the histogram upgrade is why ENGINE_VERSION
    /// moved to v9.
    pub p99_latency_cycles: Option<u64>,
    /// 99.9th-percentile latency, rank-exact (defaulted like `p50`).
    #[serde(default)]
    pub p999_latency_cycles: Option<u64>,
    /// Cycles the engine skipped via idle fast-forward (warmup +
    /// window) — zero on busy runs or with
    /// [`SystemConfig::disable_fast_forward`] set.  Surfaces how much
    /// of a run was provably idle; see `docs/fast_forward.md`.
    pub fast_forwarded_cycles: u64,
    /// Exact-sum meter operations performed over the window (each
    /// `add`/`add_repeated` call counts once).  With
    /// [`RunOutcome::meter_charges`] this surfaces the O(1)-accounting
    /// win: `meter_charges − meter_ops` is the number of per-cycle
    /// float adds the repeated-charge closed forms avoided.
    #[serde(default)]
    pub meter_ops: u64,
    /// Per-cycle charge quanta those operations accounted (an
    /// `add_repeated` of count `k` contributes `k`).
    #[serde(default)]
    pub meter_charges: u64,
    /// Energy by category over the window.
    pub energy: EnergyBreakdown,
    /// Per-stack memory-controller statistics (queue occupancy,
    /// bank-level parallelism, page hit/empty/miss breakdown) since
    /// simulation start — see `docs/memory.md` and
    /// [`crate::report::format_memory_table`].
    pub memory: Vec<MemoryStackStats>,
    /// End-of-run telemetry digest — per-link/switch/MAC/stack
    /// counters, the delivery time series and the full latency
    /// histogram — when the run observed itself
    /// (`SystemConfig::telemetry`); `None`, and absent from the JSON,
    /// otherwise.  Serde-defaulted so pre-v9 catalog entries parse.
    #[serde(default)]
    pub telemetry: Option<TelemetrySummary>,
}

impl RunOutcome {
    /// Collects the outcome from a finished network run.
    pub fn collect(
        config: &SystemConfig,
        workload: &str,
        net: &Network,
        cores: usize,
        memory: Vec<MemoryStackStats>,
        telemetry: Option<TelemetrySummary>,
    ) -> Self {
        let stats = net.stats();
        let flits_per_cycle_per_core =
            stats.accepted_flits_per_cycle_per_node(cores);
        let bandwidth_gbps_per_core = flits_per_cycle_per_core
            * f64::from(config.flit_bits)
            * config.energy.clock.gigahertz();
        let window_packets = stats.window_packets_delivered();
        let avg_packet_energy_nj = (window_packets > 0)
            .then(|| net.meter().total().nanojoules() / window_packets as f64);
        RunOutcome {
            label: config.label(),
            workload: workload.to_string(),
            cores,
            window_cycles: stats.window_cycles(),
            window_packets,
            total_packets: stats.packets_delivered(),
            bandwidth_gbps_per_core,
            avg_packet_energy_nj,
            avg_latency_cycles: stats.average_latency(),
            max_latency_cycles: stats.max_latency(),
            p50_latency_cycles: stats.latency_percentile(0.5),
            p99_latency_cycles: stats.latency_percentile(0.99),
            p999_latency_cycles: stats.latency_percentile(0.999),
            fast_forwarded_cycles: net.fast_forwarded_cycles(),
            meter_ops: net.meter().ops(),
            meter_charges: net.meter().charges(),
            energy: net.meter().breakdown(),
            memory,
            telemetry,
        }
    }

    /// Per-cycle float adds the repeated-charge closed forms avoided:
    /// the quanta accounted minus the meter operations that landed
    /// them.  Zero on fully stepped runs (every charge is its own op).
    pub fn meter_adds_saved(&self) -> u64 {
        self.meter_charges.saturating_sub(self.meter_ops)
    }

    /// Packets delivered since simulation start.
    pub fn packets_delivered(&self) -> u64 {
        self.total_packets
    }

    /// Total measured energy in nJ.
    pub fn total_energy_nj(&self) -> f64 {
        self.energy.total.nanojoules()
    }

    /// Average packet energy, panicking when nothing was delivered —
    /// for experiment code where that would be a setup bug.
    ///
    /// # Panics
    ///
    /// Panics if no packet was delivered in the window.
    pub fn packet_energy_nj(&self) -> f64 {
        self.avg_packet_energy_nj
            .expect("no packets delivered in the measurement window")
    }

    /// Average latency, panicking when nothing was measured.
    ///
    /// # Panics
    ///
    /// Panics if no packet created inside the window was delivered.
    pub fn latency_cycles(&self) -> f64 {
        self.avg_latency_cycles
            .expect("no packets measured for latency")
    }
}

/// Percentage gain of `candidate` over `baseline` for a
/// higher-is-better metric: `(candidate − baseline) / baseline × 100`.
///
/// # Panics
///
/// Panics if `baseline` is not a positive finite number.
pub fn percentage_gain(baseline: f64, candidate: f64) -> f64 {
    assert!(
        baseline > 0.0 && baseline.is_finite(),
        "baseline must be positive, got {baseline}"
    );
    (candidate - baseline) / baseline * 100.0
}

/// Percentage *reduction* of `candidate` under `baseline` for a
/// lower-is-better metric (energy, latency): the paper's "% gain in
/// packet energy/latency".
///
/// # Panics
///
/// Panics if `baseline` is not a positive finite number.
pub fn percentage_reduction(baseline: f64, candidate: f64) -> f64 {
    assert!(
        baseline > 0.0 && baseline.is_finite(),
        "baseline must be positive, got {baseline}"
    );
    (baseline - candidate) / baseline * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_arithmetic() {
        assert!((percentage_gain(10.0, 11.0) - 10.0).abs() < 1e-12);
        assert!((percentage_gain(10.0, 9.0) + 10.0).abs() < 1e-12);
        assert!((percentage_reduction(10.0, 6.0) - 40.0).abs() < 1e-12);
        assert!((percentage_reduction(10.0, 12.0) + 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_baseline_panics() {
        percentage_gain(0.0, 1.0);
    }

    #[test]
    fn paper_gain_example() {
        // §IV.C: "around 11% gain in bandwidth and 37% gain in energy
        // efficiency" — the formulas reproduce those from raw numbers.
        let bw = percentage_gain(9.0, 9.99);
        assert!((bw - 11.0).abs() < 0.01);
        let e = percentage_reduction(100.0, 63.0);
        assert!((e - 37.0).abs() < 1e-9);
    }
}
