//! Replica-batched execution: N independent scenario points advanced
//! in lockstep by one driver loop.
//!
//! A [`ReplicaBatch`] owns one [`MultichipSystem`] + workload pair per
//! *lane* and round-robins the [`MultichipSystem::run`] iteration over
//! the live lanes: every sweep of the batch gives each lane one
//! bounded *slice* of solo driver-loop iterations — window opening,
//! generation, stepping, the stall watchdog and the idle fast-forward
//! gate — in lane order (slice width 1 is strict per-cycle lockstep;
//! the default is wider purely for cache locality, see
//! [`ReplicaBatch::with_slice`]).  Lanes share nothing (each
//! simulation is seed-deterministic and self-contained), so
//! interleaving their iterations at any granularity cannot change what
//! any lane computes: a batch of N points produces
//! [`RunOutcome`]s **bit-identical** to N sequential
//! [`Experiment::run`] calls, and a batch of one is bit-identical to
//! the legacy path (both pinned by `tests/proptests.rs` and the
//! `replica_batch` suite).
//!
//! What the batch buys is the *stepper*: lanes advance through the
//! masked fast path ([`MultichipSystem::supports_fast_step`] →
//! `Network::step_fast`), which walks word bitsets of busy links,
//! switches and source queues instead of scanning the full component
//! arrays, and fuses the per-switch sweep/route/allocate passes over a
//! 128-bit busy-VC mask.  The fast path is decision-identical to the
//! reference stepper (the `fast_step` differential suite in
//! `wimnet-noc` holds them bit-equal cycle by cycle), so the batch is
//! a pure wall-clock optimisation.  Fast-forward stays per-lane: an
//! idle lane jumps its **full** delta immediately (not clamped to the
//! batch's minimum next-event frontier), which both preserves the solo
//! `fast_forwarded_cycles` accounting bit-for-bit and lets drained
//! lanes finish early instead of spinning with the stragglers — see
//! `docs/engine.md` ("Replica batching").
//!
//! [`crate::sweeps::run_pool_batched`] schedules whole batches per
//! steal, so sweep grids ride this path without touching their
//! (threads, chunk)-independence contract.

use crate::error::CoreError;
use crate::experiments::Experiment;
use crate::metrics::RunOutcome;
use crate::system::MultichipSystem;
use wimnet_traffic::Workload;

/// One live replica: a system + workload pair partway through its run.
struct Lane {
    system: MultichipSystem,
    workload: Box<dyn Workload + Send>,
    cycle: u64,
    total: u64,
    /// Whether this lane's switches fit the masked fast stepper
    /// (decided once at build; paper-scale configs always do).
    fast: bool,
}

/// A lane slot: still running, or already resolved (finished, failed,
/// or never built).
enum Slot {
    Live(Box<Lane>),
    Done(Box<Result<RunOutcome, CoreError>>),
}

/// Default driver iterations each lane advances per round-robin turn.
///
/// Strict per-cycle lockstep (slice 1) touches every lane's working
/// set every simulated cycle, which evicts the hot lane state between
/// consecutive cycles of the *same* lane — measurably slower than
/// sequential runs on one core.  A bounded slice keeps the batch's
/// round-robin fairness (no lane can run to completion while another
/// starves) while each turn amortises the cache refill over many
/// cycles.  Because lanes share no state, the slice width is invisible
/// in the results — any value produces bit-identical outcomes (pinned
/// by [`ReplicaBatch::with_slice`] tests).
const DEFAULT_SLICE: u64 = 1024;

/// N independent scenario points simulated in lockstep by one engine
/// loop — see the module docs for the layout and equivalence argument.
pub struct ReplicaBatch {
    slots: Vec<Slot>,
    slice: u64,
}

impl ReplicaBatch {
    /// Builds one lane per experiment.  Construction failures are
    /// recorded in that lane's result slot (exactly what the
    /// experiment's own [`Experiment::run`] would have returned), never
    /// propagated across lanes.
    pub fn build(experiments: &[Experiment]) -> Self {
        let slots = experiments
            .iter()
            .map(|exp| match MultichipSystem::build(exp.config()) {
                Ok(system) => {
                    let fast = system.supports_fast_step();
                    Slot::Live(Box::new(Lane {
                        total: system.run_total_cycles(),
                        system,
                        workload: exp.build_workload(),
                        cycle: 0,
                        fast,
                    }))
                }
                Err(e) => Slot::Done(Box::new(Err(e))),
            })
            .collect();
        ReplicaBatch { slots, slice: DEFAULT_SLICE }
    }

    /// Overrides the round-robin slice width (driver iterations per
    /// lane per [`ReplicaBatch::sweep`] turn; `1` = strict per-cycle
    /// lockstep).  Shape-only: any width produces bit-identical
    /// results.
    ///
    /// # Panics
    ///
    /// Panics when `slice` is zero.
    #[must_use]
    pub fn with_slice(mut self, slice: u64) -> Self {
        assert!(slice > 0, "slice width must be positive");
        self.slice = slice;
        self
    }

    /// Number of lanes (live + resolved).
    pub fn lanes(&self) -> usize {
        self.slots.len()
    }

    /// Advances every live lane by up to one slice of driver
    /// iterations, in lane order.  Returns `true` while at least one
    /// lane is still running.
    pub fn sweep(&mut self) -> bool {
        let mut any_live = false;
        for slot in &mut self.slots {
            let Slot::Live(lane) = slot else { continue };
            let mut done: Option<Result<RunOutcome, CoreError>> = None;
            for _ in 0..self.slice {
                match lane
                    .system
                    .run_iteration(lane.workload.as_mut(), lane.cycle, lane.fast)
                {
                    Ok(next) if next < lane.total => lane.cycle = next,
                    Ok(_) => {
                        done =
                            Some(Ok(lane.system.collect_outcome(lane.workload.name())));
                        break;
                    }
                    Err(e) => {
                        done = Some(Err(e));
                        break;
                    }
                }
            }
            match done {
                Some(result) => *slot = Slot::Done(Box::new(result)),
                None => any_live = true,
            }
        }
        any_live
    }

    /// Runs every lane to completion and returns the per-lane results
    /// in input order — each slot exactly what `experiments[i].run()`
    /// returns.
    pub fn run(mut self) -> Vec<Result<RunOutcome, CoreError>> {
        while self.sweep() {}
        self.slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Done(result) => *result,
                Slot::Live(_) => unreachable!("sweep() ran every lane to completion"),
            })
            .collect()
    }

    /// Convenience: batches `experiments` and runs them, returning
    /// outcomes in input order or the lowest-indexed failure (the
    /// [`crate::sweeps::run_pool`] error contract).
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing lane.
    pub fn run_all(experiments: &[Experiment]) -> Result<Vec<RunOutcome>, CoreError> {
        ReplicaBatch::build(experiments).run().into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;
    use wimnet_topology::Architecture;

    fn quick(arch: Architecture) -> SystemConfig {
        SystemConfig::xcym(4, 4, arch).quick_test_profile()
    }

    #[test]
    fn batch_of_one_matches_the_legacy_run_exactly() {
        for arch in Architecture::ALL {
            let exp = Experiment::uniform_random(&quick(arch), 0.004);
            let solo = exp.run().unwrap();
            let batched = ReplicaBatch::run_all(std::slice::from_ref(&exp)).unwrap();
            assert_eq!(batched.len(), 1);
            assert_eq!(batched[0], solo, "{arch}: N=1 batch diverged from run()");
        }
    }

    #[test]
    fn heterogeneous_batch_matches_sequential_runs() {
        let exps = vec![
            Experiment::uniform_random(&quick(Architecture::Wireless), 0.002),
            Experiment::saturation(&quick(Architecture::Interposer), 0.20),
            Experiment::memory_reads(&quick(Architecture::Substrate), 0.001, 0.9),
        ];
        let sequential: Vec<RunOutcome> =
            exps.iter().map(|e| e.run().unwrap()).collect();
        let batched = ReplicaBatch::run_all(&exps).unwrap();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn lane_failures_stay_per_lane() {
        let mut bad = quick(Architecture::Wireless);
        bad.measure_cycles = 0;
        let good = Experiment::uniform_random(&quick(Architecture::Wireless), 0.002);
        let results = ReplicaBatch::build(&[
            good.clone(),
            Experiment::uniform_random(&bad, 0.002),
            good.clone(),
        ])
        .run();
        assert!(results[0].is_ok());
        assert!(results[1].is_err(), "invalid lane must fail alone");
        assert!(results[2].is_ok(), "later lanes run despite an earlier failure");
        assert_eq!(
            results[0].as_ref().unwrap(),
            results[2].as_ref().unwrap(),
            "identical lanes produce identical outcomes"
        );
        // The merged form reports the lowest-indexed failure.
        assert!(ReplicaBatch::run_all(&[
            good,
            Experiment::uniform_random(&bad, 0.002)
        ])
        .is_err());
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(ReplicaBatch::run_all(&[]).unwrap().is_empty());
        assert_eq!(ReplicaBatch::build(&[]).lanes(), 0);
    }
}
