//! Plain-text tables and CSV output for the reproduction harness.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Formats an aligned plain-text table.
///
/// # Example
///
/// ```
/// use wimnet_core::report::format_table;
///
/// let t = format_table(
///     &["arch", "gbps"],
///     &[vec!["Wireless".into(), "11.2".into()]],
/// );
/// assert!(t.contains("Wireless"));
/// assert!(t.lines().count() >= 3);
/// ```
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(line, "{:<width$}  ", h, width = widths[i]);
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let mut rule = String::new();
    for (i, _) in headers.iter().enumerate() {
        rule.push_str(&"-".repeat(widths[i]));
        rule.push_str("  ");
    }
    out.push_str(rule.trim_end());
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate().take(cols) {
            let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Writes a CSV file (simple quoting: cells containing commas or quotes
/// are quoted with doubled quotes).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(
    path: &Path,
    headers: &[&str],
    rows: &[Vec<String>],
) -> io::Result<()> {
    fn escape(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(
            &row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","),
        );
        out.push('\n');
    }
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, out)
}

/// Formats a float with `digits` decimals, rendering `None` as `"-"`.
pub fn fmt_opt(value: Option<f64>, digits: usize) -> String {
    match value {
        Some(v) => format!("{v:.digits$}"),
        None => "-".to_string(),
    }
}

/// Formats the per-stack memory-controller statistics of a run
/// (`RunOutcome::memory`) as an aligned table: accesses, page
/// hit/empty/miss shares, queue occupancy and bank-level parallelism.
pub fn format_memory_table(stats: &[wimnet_memory::MemoryStackStats]) -> String {
    let pct = |n: u64, d: u64| {
        if d == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * n as f64 / d as f64)
        }
    };
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.stack.to_string(),
                s.accesses.to_string(),
                pct(s.page_hits, s.accesses),
                pct(s.page_empties, s.accesses),
                pct(s.page_misses, s.accesses),
                format!("{:.2}", s.avg_queue_depth),
                s.max_queue_depth.to_string(),
                format!("{:.2}", s.avg_bank_parallelism),
                format!("{:.1}%", 100.0 * s.busy_fraction),
            ]
        })
        .collect();
    format_table(
        &["stack", "accesses", "hit", "empty", "miss", "avg q", "max q", "blp", "busy"],
        &rows,
    )
}

/// Formats a run's per-category energy totals (`RunOutcome::energy`)
/// as an aligned table: every nonzero category with its share of the
/// total, then the total itself.  Each figure is one correctly-rounded
/// read-out of the meter's exact accumulator (`docs/engine.md`
/// §"Batched energy metering"), so the categories sum to the total up
/// to one rounding per line — there is no accumulation drift to hide.
pub fn format_energy_table(energy: &wimnet_energy::EnergyBreakdown) -> String {
    let total = energy.total.nanojoules();
    let mut rows: Vec<Vec<String>> = energy
        .entries
        .iter()
        .filter(|&&(_, e)| e > wimnet_energy::Energy::ZERO)
        .map(|&(c, e)| {
            let share = if total > 0.0 {
                format!("{:.1}%", 100.0 * e.nanojoules() / total)
            } else {
                "-".to_string()
            };
            vec![c.label().to_string(), format!("{:.4}", e.nanojoules()), share]
        })
        .collect();
    rows.push(vec!["total".to_string(), format!("{total:.4}"), "100.0%".to_string()]);
    format_table(&["category", "energy (nJ)", "share"], &rows)
}

/// Formats a run's per-link telemetry (`TelemetrySummary::links`) as a
/// utilization/stall heatmap table: one row per link with its kind,
/// flits carried, busy share of the run, and the fraction of busy
/// cycles lost to downstream credit exhaustion.  Links that never
/// carried a flit are folded into a single `(idle)` summary row so a
/// large mesh doesn't drown the hot paths.
pub fn format_link_utilization_table(
    telemetry: &wimnet_telemetry::TelemetrySummary,
) -> String {
    let pct = |n: u64, d: u64| {
        if d == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * n as f64 / d as f64)
        }
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut idle = 0usize;
    for (i, l) in telemetry.links.iter().enumerate() {
        if l.flits == 0 && l.busy_cycles == 0 {
            idle += 1;
            continue;
        }
        rows.push(vec![
            i.to_string(),
            l.kind.clone(),
            l.flits.to_string(),
            format!("{:.1}%", 100.0 * l.utilization),
            pct(l.credit_stalls, l.busy_cycles),
        ]);
    }
    if idle > 0 {
        rows.push(vec![
            "(idle)".to_string(),
            format!("{idle} links"),
            "0".to_string(),
            "0.0%".to_string(),
            "-".to_string(),
        ]);
    }
    format_table(&["link", "kind", "flits", "busy", "stalled"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer-cell".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // The header separator is as wide as the widest cell.
        assert!(lines[1].starts_with("-----------"));
        assert!(lines[2].starts_with("x "));
    }

    #[test]
    fn csv_escapes_properly() {
        let dir = std::env::temp_dir().join("wimnet-report-test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["plain".into(), "with,comma \"q\"".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("plain,\"with,comma \"\"q\"\"\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fmt_opt_renders_none_as_dash() {
        assert_eq!(fmt_opt(Some(1.23456), 2), "1.23");
        assert_eq!(fmt_opt(None, 2), "-");
    }

    #[test]
    fn energy_table_lists_nonzero_categories_and_total() {
        use wimnet_energy::{Energy, EnergyCategory, EnergyMeter};
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::SwitchDynamic, Energy::from_pj(500.0));
        m.add_repeated(EnergyCategory::WirelessIdle, Energy::from_pj(1.0), 1_500);
        let t = format_energy_table(&m.breakdown());
        assert!(t.contains(EnergyCategory::SwitchDynamic.label()), "{t}");
        assert!(t.contains(EnergyCategory::WirelessIdle.label()), "{t}");
        assert!(
            !t.contains(EnergyCategory::DramBackground.label()),
            "zero categories are hidden: {t}"
        );
        assert!(t.contains("total"), "{t}");
        // 500 pJ of 2 000 pJ total.
        assert!(t.contains("25.0%"), "{t}");
    }

    #[test]
    fn memory_table_renders_shares_and_occupancy() {
        let stats = vec![wimnet_memory::MemoryStackStats {
            stack: 0,
            accesses: 100,
            reads: 100,
            writes: 0,
            page_hits: 60,
            page_empties: 10,
            page_misses: 30,
            admit_stall_cycles: 0,
            max_queue_depth: 5,
            avg_queue_depth: 1.25,
            avg_bank_parallelism: 2.0,
            busy_fraction: 0.5,
        }];
        let t = format_memory_table(&stats);
        assert!(t.contains("60.0%"), "{t}");
        assert!(t.contains("1.25"), "{t}");
        assert!(t.contains("blp"), "{t}");
    }

    #[test]
    fn link_table_shows_hot_links_and_folds_idle_ones() {
        use wimnet_telemetry::{LinkTelemetry, TelemetrySummary};
        let mut s = TelemetrySummary { cycles: 1000, ..Default::default() };
        s.links.push(LinkTelemetry {
            kind: "mesh".into(),
            flits: 640,
            busy_cycles: 500,
            credit_stalls: 50,
            utilization: 0.5,
        });
        s.links.push(LinkTelemetry { kind: "mesh".into(), ..Default::default() });
        s.links.push(LinkTelemetry { kind: "serial".into(), ..Default::default() });
        let t = format_link_utilization_table(&s);
        assert!(t.contains("640"), "{t}");
        assert!(t.contains("50.0%"), "{t}");
        assert!(t.contains("10.0%"), "stall share of busy cycles: {t}");
        assert!(t.contains("2 links"), "idle links fold into one row: {t}");
    }
}
