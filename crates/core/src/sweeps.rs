//! Declarative scenario grids and the work-stealing experiment pool.
//!
//! The paper's figures are small hand-rolled sweeps (a handful of loads
//! × three architectures).  Scaling the reproduction to the scenario
//! counts of the related mm-wave studies — hundreds of load × topology
//! × MAC × seed combinations — needs two things this module provides:
//!
//! * [`ScenarioGrid`] — a named-axis cartesian product compiled into
//!   concrete [`Experiment`]s with stable, deterministic point order
//!   (row-major over the axes, last axis fastest);
//! * [`run_pool`] — a work-stealing executor over `std::thread`:
//!   workers pull chunks of experiment indices from a shared atomic
//!   queue, so grids much larger than the core count saturate the
//!   machine even when per-point runtimes differ wildly (a saturated
//!   point can cost 50× a fast-forwarded low-load point).
//!
//! Results are written into per-index slots, so the output order equals
//! the input order and — because each simulation is single-threaded and
//! seed-deterministic — the outcomes are **bit-identical for every
//! thread count and chunk size** (guarded by `tests/determinism.rs`).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use wimnet_memory::SchedulerPolicy;
use wimnet_topology::Architecture;

use crate::catalog::{Catalog, Fingerprint};
use crate::checkpoint::CheckpointStore;
use crate::error::CoreError;
use crate::experiments::{Experiment, Scale, WorkloadSpec};
use crate::metrics::RunOutcome;
use crate::system::{SystemConfig, WirelessModel};
use wimnet_traffic::{AddressStreamSpec, InjectionProcess};

/// Default work chunk: one experiment per steal.  Simulations are
/// coarse (milliseconds to seconds), so per-steal overhead is already
/// negligible at chunk 1 and finer chunks balance better.
const DEFAULT_CHUNK: usize = 1;

/// Runs `experiments` on a work-stealing pool of `threads` OS threads,
/// handing out `chunk` consecutive experiments per steal.
///
/// Outcomes are returned in input order and are bit-identical for every
/// `(threads, chunk)` choice: each experiment is an independent,
/// seed-deterministic, single-threaded simulation, and the pool only
/// decides *which thread* runs it, never *what* it computes.
///
/// The worker count is clamped to `threads.clamp(1, n.div_ceil(chunk))`
/// — the number of chunks the list actually splits into — so an
/// oversized `chunk` (e.g. `chunk > n`) degrades gracefully to a single
/// worker draining one steal instead of spawning threads that would
/// find the queue already empty.  The clamp is shape-only and therefore
/// invisible in the results (pinned by `tests/determinism.rs`).
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing experiment (also
/// independent of the pool shape).
pub fn run_pool(
    experiments: &[Experiment],
    threads: usize,
    chunk: usize,
) -> Result<Vec<RunOutcome>, CoreError> {
    run_pool_with(experiments, threads, chunk, |slots, start, end| {
        for i in start..end {
            let filled = slots[i].set(experiments[i].run()).is_ok();
            debug_assert!(filled, "each index is stolen exactly once");
        }
    })
}

/// Runs `experiments` like [`run_pool`], but each steal executes its
/// whole chunk as **one [`crate::replica::ReplicaBatch`]**: the worker advances the
/// chunk's simulations in lockstep through the engine's masked fast
/// stepper instead of running them to completion one after another.
///
/// The contract is unchanged: per-lane results are exactly what each
/// `experiments[i].run()` returns (bit-identical outcomes, per-lane
/// errors), outcomes keep input order, and every `(threads, chunk)`
/// shape — including `chunk > n`, which clamps to one worker with one
/// batch — produces identical results (pinned by
/// `tests/determinism.rs`).  `chunk` doubles as the batch width, so
/// chunk boundaries decide batch membership; with a [`ScenarioGrid`],
/// architecture is the outermost axis, which makes same-sized chunks
/// along the fastest axes naturally same-architecture.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing experiment (also
/// independent of the pool shape).
pub fn run_pool_batched(
    experiments: &[Experiment],
    threads: usize,
    chunk: usize,
) -> Result<Vec<RunOutcome>, CoreError> {
    run_pool_with(experiments, threads, chunk, |slots, start, end| {
        let results = crate::replica::ReplicaBatch::build(&experiments[start..end]).run();
        for (i, result) in results.into_iter().enumerate() {
            let filled = slots[start + i].set(result).is_ok();
            debug_assert!(filled, "each index is stolen exactly once");
        }
    })
}

/// The shared pool skeleton: an atomic chunk queue drained by scoped
/// workers, per-index result slots, input-order collection.  `run_chunk`
/// fills `slots[start..end]` for one stolen chunk.
fn run_pool_with(
    experiments: &[Experiment],
    threads: usize,
    chunk: usize,
    run_chunk: impl Fn(&[OnceLock<Result<RunOutcome, CoreError>>], usize, usize) + Sync,
) -> Result<Vec<RunOutcome>, CoreError> {
    run_pool_generic(experiments.len(), threads, chunk, run_chunk)
}

/// [`run_pool_with`] generalised over the per-index result type, for
/// drivers whose work items can legitimately *not* produce an outcome
/// (checkpointed runs killed mid-point yield `Option<RunOutcome>`).
fn run_pool_generic<T: Send + Sync>(
    n: usize,
    threads: usize,
    chunk: usize,
    run_chunk: impl Fn(&[OnceLock<Result<T, CoreError>>], usize, usize) + Sync,
) -> Result<Vec<T>, CoreError> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let chunk = chunk.max(1);
    let threads = threads.clamp(1, n.div_ceil(chunk));
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<Result<T, CoreError>>> =
        (0..n).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                run_chunk(&slots, start, (start + chunk).min(n));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("pool visited every index"))
        .collect()
}

/// The number of worker threads [`ScenarioGrid::run`] and the default
/// `run_all` use: every available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// One materialised grid point: the axis values that produced an
/// [`Experiment`], kept alongside its outcome for reporting.
///
/// Serializable for the result catalog and sweep archives; the
/// content fingerprint ([`crate::catalog::fingerprint`]) covers the
/// axis fields only — `index` and `label` are presentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPoint {
    /// Position in the grid's row-major enumeration.
    pub index: usize,
    /// Human-readable point label, e.g.
    /// `"4C4M (Wireless) mem=20% load=0.002 seed=0x5177"`.
    pub label: String,
    /// Architecture axis value.
    pub architecture: Architecture,
    /// Chip-count axis value.
    pub chips: usize,
    /// Stack-count axis value.
    pub stacks: usize,
    /// Wireless-model (MAC) axis value.
    pub wireless: WirelessModel,
    /// Memory-fraction axis value.
    pub memory_fraction: f64,
    /// Address-stream axis value (which walk read requests drive
    /// through the stack controllers).
    pub address_stream: AddressStreamSpec,
    /// Memory-scheduler axis value (FR-FCFS vs FCFS).
    pub scheduler: SchedulerPolicy,
    /// Injection axis value.
    pub injection: InjectionProcess,
    /// Seed axis value.
    pub seed: u64,
}

/// A declarative cartesian product of simulation scenarios.
///
/// Every axis has a default of one value (the paper's 4C4M wireless
/// saturation point), so a grid only names the axes it sweeps:
///
/// ```
/// use wimnet_core::sweeps::ScenarioGrid;
/// use wimnet_core::Scale;
/// use wimnet_topology::Architecture;
///
/// let grid = ScenarioGrid::new("fig3")
///     .scale(Scale::Quick)
///     .architectures(&Architecture::ALL)
///     .loads(&[0.001, 0.008]);
/// assert_eq!(grid.len(), 6);
/// let outcomes = grid.run()?;
/// assert_eq!(outcomes.len(), 6);
/// # Ok::<(), wimnet_core::CoreError>(())
/// ```
///
/// Axis order is fixed (architecture → chips → stacks → wireless model
/// → memory fraction → address stream → scheduler → injection → seed,
/// last fastest), so point indices are stable across runs and machines.
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    name: String,
    scale: Scale,
    architectures: Vec<Architecture>,
    chips: Vec<usize>,
    stacks: Vec<usize>,
    wireless: Vec<WirelessModel>,
    memory_fractions: Vec<f64>,
    address_streams: Vec<AddressStreamSpec>,
    schedulers: Vec<SchedulerPolicy>,
    injections: Vec<InjectionProcess>,
    seeds: Vec<u64>,
    /// Read-request share of memory packets (a grid-wide setting, not
    /// an axis: 0 keeps the paper's fire-and-forget stores).
    read_share: f64,
    /// Snapshot cadence for checkpointed runs (a grid-wide setting
    /// that, like `disable_fast_forward`, is *not* part of the point
    /// fingerprints: the cadence changes disk traffic, never physics).
    /// `0` disables checkpointing.
    checkpoint_every: u64,
}

impl ScenarioGrid {
    /// An empty grid named `name`, with every axis at the paper default:
    /// wireless 4C4M, default wireless model, 20 % memory traffic,
    /// saturation load, seed `0x5177`, paper-scale windows.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioGrid {
            name: name.into(),
            scale: Scale::Paper,
            architectures: vec![Architecture::Wireless],
            chips: vec![4],
            stacks: vec![4],
            wireless: vec![WirelessModel::default()],
            memory_fractions: vec![0.20],
            address_streams: vec![AddressStreamSpec::Sequential],
            schedulers: vec![SchedulerPolicy::FrFcfs],
            injections: vec![InjectionProcess::Saturation],
            seeds: vec![0x5177],
            read_share: 0.0,
            checkpoint_every: 0,
        }
    }

    /// The grid's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the simulation scale (window lengths).
    #[must_use]
    pub fn scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Sweeps the architecture axis.
    #[must_use]
    pub fn architectures(mut self, archs: &[Architecture]) -> Self {
        assert!(!archs.is_empty(), "architecture axis must be non-empty");
        self.architectures = archs.to_vec();
        self
    }

    /// Sweeps the chip-count axis (XC in the paper's XCYM naming).
    #[must_use]
    pub fn chips(mut self, chips: &[usize]) -> Self {
        assert!(!chips.is_empty(), "chips axis must be non-empty");
        self.chips = chips.to_vec();
        self
    }

    /// Sweeps the memory-stack-count axis (YM).
    #[must_use]
    pub fn stacks(mut self, stacks: &[usize]) -> Self {
        assert!(!stacks.is_empty(), "stacks axis must be non-empty");
        self.stacks = stacks.to_vec();
        self
    }

    /// Sweeps the wireless-medium/MAC axis.  Only wireless-architecture
    /// points are affected (wired fabrics carry no medium); mixed grids
    /// typically pair this with `architectures(&[Architecture::Wireless])`.
    #[must_use]
    pub fn wireless_models(mut self, models: &[WirelessModel]) -> Self {
        assert!(!models.is_empty(), "wireless axis must be non-empty");
        self.wireless = models.to_vec();
        self
    }

    /// Sweeps the memory-access-fraction axis.
    #[must_use]
    pub fn memory_fractions(mut self, fractions: &[f64]) -> Self {
        assert!(!fractions.is_empty(), "memory-fraction axis must be non-empty");
        self.memory_fractions = fractions.to_vec();
        self
    }

    /// Sweeps the address-stream axis (sequential / strided / uniform /
    /// hot-row walks through the stack controllers; only observable
    /// with a positive [`ScenarioGrid::read_share`] or a read-issuing
    /// workload).
    #[must_use]
    pub fn address_streams(mut self, streams: &[AddressStreamSpec]) -> Self {
        assert!(!streams.is_empty(), "address-stream axis must be non-empty");
        self.address_streams = streams.to_vec();
        self
    }

    /// Sweeps the memory-scheduler axis (FR-FCFS vs FCFS).
    #[must_use]
    pub fn schedulers(mut self, schedulers: &[SchedulerPolicy]) -> Self {
        assert!(!schedulers.is_empty(), "scheduler axis must be non-empty");
        self.schedulers = schedulers.to_vec();
        self
    }

    /// Sets the read-request share of memory packets for every point
    /// (closed-loop traffic through the controllers).
    ///
    /// # Panics
    ///
    /// Panics if `share` is outside `[0, 1]`.
    #[must_use]
    pub fn read_share(mut self, share: f64) -> Self {
        assert!((0.0..=1.0).contains(&share), "read share {share} outside [0, 1]");
        self.read_share = share;
        self
    }

    /// Sets the snapshot cadence for
    /// [`ScenarioGrid::run_cached_resumable`]: every miss persists a
    /// checkpoint at each `every`-cycle mark while it simulates, so a
    /// killed sweep resumes mid-point instead of from cycle 0.  `0`
    /// (the default) disables checkpointing.  Not part of the point
    /// fingerprints — outcomes are bit-identical at every cadence.
    #[must_use]
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Sweeps the injection axis over Bernoulli loads
    /// (packets/core/cycle).
    #[must_use]
    pub fn loads(mut self, loads: &[f64]) -> Self {
        assert!(!loads.is_empty(), "load axis must be non-empty");
        self.injections = loads
            .iter()
            .map(|&rate| InjectionProcess::Bernoulli { rate })
            .collect();
        self
    }

    /// Sweeps the injection axis over explicit processes (mix Bernoulli
    /// points with saturation).
    #[must_use]
    pub fn injections(mut self, injections: &[InjectionProcess]) -> Self {
        assert!(!injections.is_empty(), "injection axis must be non-empty");
        self.injections = injections.to_vec();
        self
    }

    /// Sweeps the seed axis (statistical replication).
    #[must_use]
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        assert!(!seeds.is_empty(), "seed axis must be non-empty");
        self.seeds = seeds.to_vec();
        self
    }

    /// The named axes and their lengths, in nesting order.
    pub fn axes(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("architecture", self.architectures.len()),
            ("chips", self.chips.len()),
            ("stacks", self.stacks.len()),
            ("wireless", self.wireless.len()),
            ("memory_fraction", self.memory_fractions.len()),
            ("address_stream", self.address_streams.len()),
            ("scheduler", self.schedulers.len()),
            ("injection", self.injections.len()),
            ("seed", self.seeds.len()),
        ]
    }

    /// Number of grid points (the product of all axis lengths).
    pub fn len(&self) -> usize {
        self.axes().iter().map(|(_, n)| n).product()
    }

    /// `true` when the grid has no points (never: axes are non-empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialises every grid point in row-major order.
    pub fn points(&self) -> Vec<ScenarioPoint> {
        // The label names the memory axes only when the grid actually
        // engages them, so classic network-side sweeps keep their
        // short labels.
        let memory_axes_engaged = self.address_streams
            != [AddressStreamSpec::Sequential]
            || self.schedulers != [SchedulerPolicy::FrFcfs]
            || self.read_share > 0.0;
        let mut points = Vec::with_capacity(self.len());
        for &architecture in &self.architectures {
            for &chips in &self.chips {
                for &stacks in &self.stacks {
                    for &wireless in &self.wireless {
                        for &memory_fraction in &self.memory_fractions {
                            for &address_stream in &self.address_streams {
                                for &scheduler in &self.schedulers {
                                    for &injection in &self.injections {
                                        for &seed in &self.seeds {
                                            let index = points.len();
                                            let load = match injection {
                                                InjectionProcess::Bernoulli { rate } => {
                                                    format!("load={rate}")
                                                }
                                                InjectionProcess::Saturation => {
                                                    "saturation".to_string()
                                                }
                                            };
                                            let memory = if memory_axes_engaged {
                                                format!(
                                                    " stream={} sched={}",
                                                    address_stream.label(),
                                                    match scheduler {
                                                        SchedulerPolicy::FrFcfs => "frfcfs",
                                                        SchedulerPolicy::Fcfs => "fcfs",
                                                    }
                                                )
                                            } else {
                                                String::new()
                                            };
                                            points.push(ScenarioPoint {
                                                index,
                                                label: format!(
                                                    "{chips}C{stacks}M ({architecture}) \
                                                     mem={:.0}%{memory} {load} \
                                                     seed={seed:#x}",
                                                    memory_fraction * 100.0
                                                ),
                                                architecture,
                                                chips,
                                                stacks,
                                                wireless,
                                                memory_fraction,
                                                address_stream,
                                                scheduler,
                                                injection,
                                                seed,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        points
    }

    /// Compiles one point into a runnable [`Experiment`].
    pub fn experiment(&self, point: &ScenarioPoint) -> Experiment {
        let mut config = self
            .scale
            .apply(SystemConfig::xcym(point.chips, point.stacks, point.architecture));
        config.wireless = point.wireless;
        config.seed = point.seed;
        config.address_stream = point.address_stream;
        config.mem_controller.scheduler = point.scheduler;
        config.checkpoint_every = self.checkpoint_every;
        let spec = match point.injection {
            InjectionProcess::Bernoulli { rate } => WorkloadSpec::UniformRandom {
                load: rate,
                memory_fraction: point.memory_fraction,
                read_share: self.read_share,
            },
            InjectionProcess::Saturation => WorkloadSpec::Saturation {
                memory_fraction: point.memory_fraction,
                read_share: self.read_share,
            },
        };
        Experiment::new(config, spec)
    }

    /// Compiles the whole grid, point order preserved.
    pub fn experiments(&self) -> Vec<Experiment> {
        self.points().iter().map(|p| self.experiment(p)).collect()
    }

    /// Runs the grid on the default pool (all cores, chunk 1).
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed failing point's error.
    pub fn run(&self) -> Result<Vec<RunOutcome>, CoreError> {
        self.run_with(default_threads(), DEFAULT_CHUNK)
    }

    /// Runs the grid on a pool of `threads` threads with `chunk`-sized
    /// steals.  Outcomes are in point order and independent of the pool
    /// shape.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed failing point's error.
    pub fn run_with(
        &self,
        threads: usize,
        chunk: usize,
    ) -> Result<Vec<RunOutcome>, CoreError> {
        run_pool(&self.experiments(), threads, chunk)
    }

    /// Runs the grid on the replica-batched pool: each steal advances a
    /// `chunk`-wide [`crate::replica::ReplicaBatch`] in lockstep over
    /// the engine's fast stepper.  Outcomes are bit-identical to
    /// [`ScenarioGrid::run_with`] at every pool shape.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed failing point's error.
    pub fn run_batched(
        &self,
        threads: usize,
        chunk: usize,
    ) -> Result<Vec<RunOutcome>, CoreError> {
        run_pool_batched(&self.experiments(), threads, chunk)
    }

    /// Runs the grid and pairs each outcome with its point.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed failing point's error.
    pub fn run_annotated(&self) -> Result<Vec<(ScenarioPoint, RunOutcome)>, CoreError> {
        Ok(self.points().into_iter().zip(self.run()?).collect())
    }

    /// The canonical catalog fingerprint of one of this grid's points:
    /// the point's axis values plus the grid-wide settings (scale,
    /// read share) that co-determine the compiled experiment, keyed
    /// under [`crate::catalog::ENGINE_VERSION`].
    pub fn point_fingerprint(&self, point: &ScenarioPoint) -> Fingerprint {
        crate::catalog::fingerprint(point, self.scale, self.read_share)
    }

    /// The contiguous point-index range shard `shard` of `shards`
    /// owns: `[shard·n/shards, (shard+1)·n/shards)` — a balanced
    /// split (sizes differ by at most one) that covers every index
    /// exactly once across the shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards == 0` or `shard >= shards`.
    pub fn shard_range(&self, shard: usize, shards: usize) -> Range<usize> {
        assert!(shards > 0, "shard count must be positive");
        assert!(shard < shards, "shard {shard} out of range for {shards} shards");
        let n = self.len();
        (shard * n / shards)..((shard + 1) * n / shards)
    }

    /// Runs the grid through the result `catalog`: cache hits are
    /// served from disk at memcpy speed, only misses simulate (on the
    /// replica-batched pool, [`run_pool_batched`]), and every fresh
    /// outcome is memoized before the call returns.  Outcomes are
    /// bit-identical to an uncached [`ScenarioGrid::run_batched`] —
    /// simulations are deterministic and the JSON layer round-trips
    /// every finite f64 exactly — so a killed sweep resumed from its
    /// partial catalog converges on the same final vector.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed failing point's error, or a
    /// [`CoreError::Catalog`] when the catalog cannot be written.
    pub fn run_cached(
        &self,
        catalog: &Catalog,
        threads: usize,
        chunk: usize,
    ) -> Result<CachedSweep, CoreError> {
        self.run_cached_shard(catalog, 0, 1, threads, chunk)
    }

    /// [`ScenarioGrid::run_cached`] restricted to the points of shard
    /// `shard` of `shards` (see [`ScenarioGrid::shard_range`]).
    /// Disjoint shards may run concurrently — in threads or separate
    /// processes — against one catalog directory; overlapping shards
    /// are safe too and dedupe to byte-identical entries (atomic
    /// rename of deterministic content).
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed failing point's error, or a
    /// [`CoreError::Catalog`] when the catalog cannot be written.
    pub fn run_cached_shard(
        &self,
        catalog: &Catalog,
        shard: usize,
        shards: usize,
        threads: usize,
        chunk: usize,
    ) -> Result<CachedSweep, CoreError> {
        self.run_cached_shard_with_budget(catalog, shard, shards, threads, chunk, None)
    }

    /// [`ScenarioGrid::run_cached_shard`] with an optional **miss
    /// budget**: simulate at most `budget` cache misses (in point
    /// order), memoize them, and stop.  A truncated run reports the
    /// remaining misses in [`CachedSweep::pending`] and carries no
    /// outcome vector — it is the `sweep` CLI's simulated crash, and
    /// the building block for incremental fill-ins.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed failing point's error, or a
    /// [`CoreError::Catalog`] when the catalog cannot be written.
    pub fn run_cached_shard_with_budget(
        &self,
        catalog: &Catalog,
        shard: usize,
        shards: usize,
        threads: usize,
        chunk: usize,
        budget: Option<usize>,
    ) -> Result<CachedSweep, CoreError> {
        let range = self.shard_range(shard, shards);
        let points = self.points();
        let shard_points = &points[range.clone()];
        let fingerprints: Vec<Fingerprint> =
            shard_points.iter().map(|p| self.point_fingerprint(p)).collect();
        let mut slots: Vec<Option<RunOutcome>> =
            fingerprints.iter().map(|fp| catalog.lookup(fp)).collect();
        let miss_indices: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.is_none().then_some(i))
            .collect();
        let hits = shard_points.len() - miss_indices.len();
        let budgeted = budget.unwrap_or(miss_indices.len()).min(miss_indices.len());
        let pending = miss_indices.len() - budgeted;
        let to_run = &miss_indices[..budgeted];

        let experiments: Vec<Experiment> =
            to_run.iter().map(|&i| self.experiment(&shard_points[i])).collect();
        let fresh = run_pool_batched(&experiments, threads, chunk)?;
        for (&i, outcome) in to_run.iter().zip(fresh) {
            catalog.store(&fingerprints[i], &shard_points[i], &outcome)?;
            slots[i] = Some(outcome);
        }
        let outcomes = if pending == 0 {
            slots
                .into_iter()
                .map(|slot| slot.expect("every shard slot is a hit or was simulated"))
                .collect()
        } else {
            Vec::new()
        };
        Ok(CachedSweep {
            indices: range,
            outcomes,
            hits,
            misses: budgeted,
            pending,
        })
    }

    /// [`ScenarioGrid::run_cached`] with **mid-point warm starts**:
    /// every miss runs through
    /// [`crate::checkpoint::run_with_checkpoints`] — resuming from the
    /// scenario's latest serveable snapshot in `checkpoints`, and (with
    /// a positive [`ScenarioGrid::checkpoint_every`]) persisting a new
    /// snapshot at each cadence mark while it simulates.  A completed
    /// miss lands in the `catalog` and its spent checkpoint is removed;
    /// the outcome vector is bit-identical to an uncached
    /// [`ScenarioGrid::run_batched`] (snapshot → restore → run equals
    /// the uninterrupted run, bit for bit — `tests/checkpoint.rs`).
    ///
    /// `kill_at: Some(k)` is the CLI's simulated mid-point crash: each
    /// miss stops before its first iteration at cursor ≥ `k` and counts
    /// into [`CachedSweep::pending`], leaving its latest checkpoint on
    /// disk for a later call with `kill_at: None` to finish from.
    ///
    /// Misses run on the generic pool one point per work item (a
    /// checkpointed run owns its own snapshot schedule, so points are
    /// not replica-batched; warm resumes make up the difference).
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed failing point's error, or a
    /// [`CoreError::Catalog`] / [`CoreError::Checkpoint`] when either
    /// store cannot be written.
    pub fn run_cached_resumable(
        &self,
        catalog: &Catalog,
        checkpoints: &CheckpointStore,
        threads: usize,
        chunk: usize,
        kill_at: Option<u64>,
    ) -> Result<CachedSweep, CoreError> {
        let points = self.points();
        let fingerprints: Vec<Fingerprint> =
            points.iter().map(|p| self.point_fingerprint(p)).collect();
        let mut slots: Vec<Option<RunOutcome>> =
            fingerprints.iter().map(|fp| catalog.lookup(fp)).collect();
        let miss_indices: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.is_none().then_some(i))
            .collect();
        let hits = points.len() - miss_indices.len();

        let experiments: Vec<Experiment> =
            miss_indices.iter().map(|&i| self.experiment(&points[i])).collect();
        let miss_fps: Vec<Fingerprint> =
            miss_indices.iter().map(|&i| fingerprints[i]).collect();
        let fresh = run_pool_generic(
            experiments.len(),
            threads,
            chunk,
            |pool_slots, start, end| {
                for i in start..end {
                    let result =
                        experiments[i].run_checkpointed(checkpoints, &miss_fps[i], kill_at);
                    let filled = pool_slots[i].set(result).is_ok();
                    debug_assert!(filled, "each index is stolen exactly once");
                }
            },
        )?;

        let mut pending = 0;
        let mut misses = 0;
        for (k, outcome) in fresh.into_iter().enumerate() {
            let i = miss_indices[k];
            match outcome {
                Some(outcome) => {
                    catalog.store(&fingerprints[i], &points[i], &outcome)?;
                    checkpoints.remove(&fingerprints[i]);
                    slots[i] = Some(outcome);
                    misses += 1;
                }
                None => pending += 1,
            }
        }
        let outcomes = if pending == 0 {
            slots
                .into_iter()
                .map(|slot| slot.expect("every slot is a hit or was simulated"))
                .collect()
        } else {
            Vec::new()
        };
        Ok(CachedSweep { indices: 0..points.len(), outcomes, hits, misses, pending })
    }
}

/// The result of a catalog-backed (sharded) grid run — outcomes plus
/// the hit/miss accounting the resumability tests and the `sweep` CLI
/// assert on: a fully warm rerun must report `misses == 0` (zero
/// simulation steps) while returning the bit-identical vector.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedSweep {
    /// The grid point indices this run covered (the shard's range;
    /// the whole grid for [`ScenarioGrid::run_cached`]).
    pub indices: Range<usize>,
    /// Outcomes for `indices`, in point order — `outcomes[k]` belongs
    /// to point `indices.start + k`.  Empty when the run was
    /// truncated by a miss budget (`pending > 0`).
    pub outcomes: Vec<RunOutcome>,
    /// Points served from the catalog without simulating.
    pub hits: usize,
    /// Points simulated (and memoized) by this run.
    pub misses: usize,
    /// Cache misses left unsimulated by a miss budget; zero means the
    /// shard is complete.
    pub pending: usize,
}

impl CachedSweep {
    /// `true` when every point of the shard has an outcome.
    pub fn is_complete(&self) -> bool {
        self.pending == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_len_is_the_axis_product() {
        let grid = ScenarioGrid::new("t")
            .architectures(&Architecture::ALL)
            .loads(&[0.001, 0.002, 0.004])
            .seeds(&[1, 2]);
        assert_eq!(grid.len(), 3 * 3 * 2);
        assert_eq!(grid.points().len(), grid.len());
        assert!(!grid.is_empty());
        assert_eq!(grid.name(), "t");
    }

    #[test]
    fn points_enumerate_row_major_with_stable_indices() {
        let grid = ScenarioGrid::new("t")
            .architectures(&[Architecture::Wireless, Architecture::Interposer])
            .loads(&[0.1, 0.2]);
        let points = grid.points();
        assert_eq!(points.len(), 4);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // Last axis (injection) fastest.
        assert_eq!(points[0].architecture, Architecture::Wireless);
        assert_eq!(points[1].architecture, Architecture::Wireless);
        assert!(matches!(
            points[0].injection,
            InjectionProcess::Bernoulli { rate } if rate == 0.1
        ));
        assert!(matches!(
            points[1].injection,
            InjectionProcess::Bernoulli { rate } if rate == 0.2
        ));
        assert_eq!(points[2].architecture, Architecture::Interposer);
    }

    #[test]
    fn axes_are_named_in_nesting_order() {
        let grid = ScenarioGrid::new("t").loads(&[0.1, 0.2]).seeds(&[1, 2, 3]);
        let axes = grid.axes();
        assert_eq!(axes[0], ("architecture", 1));
        assert_eq!(axes[5], ("address_stream", 1));
        assert_eq!(axes[6], ("scheduler", 1));
        assert_eq!(axes[7], ("injection", 2));
        assert_eq!(axes[8], ("seed", 3));
    }

    #[test]
    fn memory_axes_multiply_points_and_name_labels() {
        let grid = ScenarioGrid::new("mem")
            .address_streams(&[
                AddressStreamSpec::Sequential,
                AddressStreamSpec::Uniform { region_blocks: 1 << 16 },
            ])
            .schedulers(&[SchedulerPolicy::FrFcfs, SchedulerPolicy::Fcfs])
            .read_share(1.0)
            .loads(&[0.001]);
        assert_eq!(grid.len(), 4);
        let points = grid.points();
        assert!(points[0].label.contains("stream=seq"));
        assert!(points[0].label.contains("sched=frfcfs"));
        assert!(points[1].label.contains("sched=fcfs"));
        assert!(points[2].label.contains("stream=uniform"));
        // The compiled experiments carry the axis values into the
        // system configuration.
        let exp = grid.experiment(&points[3]);
        assert_eq!(
            exp.config().address_stream,
            AddressStreamSpec::Uniform { region_blocks: 1 << 16 }
        );
        assert_eq!(exp.config().mem_controller.scheduler, SchedulerPolicy::Fcfs);
    }

    #[test]
    fn default_memory_axes_keep_the_short_labels() {
        let grid = ScenarioGrid::new("t").loads(&[0.002]);
        assert!(!grid.points()[0].label.contains("stream="));
    }

    #[test]
    fn scheduler_policy_changes_memory_bound_outcomes() {
        // Same seed and load, FR-FCFS vs FCFS on a hot-row stream:
        // the scheduler axis must be observable in the per-stack
        // statistics of a read-heavy run.
        let grid = ScenarioGrid::new("sched")
            .scale(Scale::Quick)
            .architectures(&[Architecture::Wireless])
            .address_streams(&[AddressStreamSpec::HotRow {
                region_blocks: 1 << 18,
                hot_blocks: 16,
                hot_fraction: 0.6,
            }])
            .schedulers(&[SchedulerPolicy::FrFcfs, SchedulerPolicy::Fcfs])
            .read_share(1.0)
            .memory_fractions(&[0.9])
            .loads(&[0.02]);
        let outcomes = grid.run().unwrap();
        assert_eq!(outcomes.len(), 2);
        for o in &outcomes {
            let accesses: u64 = o.memory.iter().map(|m| m.accesses).sum();
            assert!(accesses > 0, "read-heavy run must access the stacks");
        }
        // The axis is observable: same seed and traffic, different
        // service order — the per-stack statistics must diverge.
        assert_ne!(
            outcomes[0].memory, outcomes[1].memory,
            "FR-FCFS and FCFS produced identical memory statistics"
        );
    }

    #[test]
    fn grid_compiles_and_runs_quick_points() {
        let grid = ScenarioGrid::new("smoke")
            .scale(Scale::Quick)
            .architectures(&[Architecture::Wireless, Architecture::Substrate])
            .loads(&[0.002]);
        let annotated = grid.run_annotated().unwrap();
        assert_eq!(annotated.len(), 2);
        for (point, outcome) in &annotated {
            assert!(
                outcome.packets_delivered() > 0,
                "{} delivered nothing",
                point.label
            );
        }
        // The point label names the architecture and load.
        assert!(annotated[0].0.label.contains("4C4M"));
        assert!(annotated[0].0.label.contains("load=0.002"));
    }

    #[test]
    fn pool_shape_does_not_change_results() {
        let grid = ScenarioGrid::new("det")
            .scale(Scale::Quick)
            .loads(&[0.001, 0.004, 0.016]);
        let exps = grid.experiments();
        let a = run_pool(&exps, 1, 1).unwrap();
        let b = run_pool(&exps, 8, 2).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.packets_delivered(), y.packets_delivered());
            assert_eq!(
                x.avg_latency_cycles.map(f64::to_bits),
                y.avg_latency_cycles.map(f64::to_bits)
            );
            assert_eq!(x.total_energy_nj().to_bits(), y.total_energy_nj().to_bits());
        }
    }

    #[test]
    fn empty_experiment_list_is_fine() {
        assert!(run_pool(&[], 4, 1).unwrap().is_empty());
    }

    #[test]
    fn shard_ranges_partition_every_index_exactly_once() {
        let grid = ScenarioGrid::new("t")
            .loads(&[0.001, 0.002, 0.004])
            .seeds(&[1, 2, 3, 4, 5]);
        for shards in [1, 2, 3, 7, 15, 16] {
            let mut covered = Vec::new();
            for shard in 0..shards {
                let range = grid.shard_range(shard, shards);
                covered.extend(range);
            }
            assert_eq!(covered, (0..grid.len()).collect::<Vec<_>>(), "shards={shards}");
        }
        // Balanced: sizes differ by at most one.
        let sizes: Vec<usize> =
            (0..4).map(|s| grid.shard_range(s, 4).len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn run_cached_serves_the_second_run_without_simulating() {
        let dir = std::env::temp_dir()
            .join(format!("wimnet-sweeps-cached-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Catalog::open(&dir).unwrap();
        let grid = ScenarioGrid::new("cached")
            .scale(Scale::Quick)
            .architectures(&[Architecture::Wireless, Architecture::Substrate])
            .loads(&[0.002]);
        let first = grid.run_cached(&catalog, 2, 1).unwrap();
        assert_eq!((first.hits, first.misses, first.pending), (0, 2, 0));
        assert!(first.is_complete());
        let second = grid.run_cached(&catalog, 2, 1).unwrap();
        assert_eq!((second.hits, second.misses), (2, 0), "warm run must not simulate");
        assert_eq!(first.outcomes, second.outcomes);
        // Budgeted runs stop mid-shard and report the remainder.
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Catalog::open(&dir).unwrap();
        let truncated = grid
            .run_cached_shard_with_budget(&catalog, 0, 1, 2, 1, Some(1))
            .unwrap();
        assert_eq!((truncated.hits, truncated.misses, truncated.pending), (0, 1, 1));
        assert!(!truncated.is_complete());
        assert!(truncated.outcomes.is_empty());
        let resumed = grid.run_cached(&catalog, 2, 1).unwrap();
        assert_eq!((resumed.hits, resumed.misses), (1, 1));
        assert_eq!(resumed.outcomes, first.outcomes, "resume converges on the same vector");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pool_reports_the_lowest_indexed_failure() {
        // A stalling configuration: zero measure cycles is rejected at
        // build time, deterministically, whatever thread finds it.
        let mut bad = SystemConfig::xcym(4, 4, Architecture::Wireless).quick_test_profile();
        bad.measure_cycles = 0;
        let good = SystemConfig::xcym(4, 4, Architecture::Wireless).quick_test_profile();
        let exps = vec![
            Experiment::uniform_random(&good, 0.001),
            Experiment::uniform_random(&bad, 0.001),
            Experiment::uniform_random(&good, 0.002),
        ];
        let err = run_pool(&exps, 4, 1).unwrap_err();
        assert!(matches!(err, CoreError::InvalidParameter { .. }));
    }
}
