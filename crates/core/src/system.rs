//! System assembly: configuration and the runnable multichip system.

use std::collections::{BinaryHeap, VecDeque};

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

use wimnet_energy::{EnergyCategory, EnergyModel};
use wimnet_memory::{
    AccessKind, AddressMap, Completion, ControllerConfig, MemRequest, MemoryController,
    MemoryControllerState, MemoryStackStats, StackConfig,
};
use wimnet_noc::{Network, NetworkState, NocConfig, PacketDesc, PacketId, WirelessMode};
use wimnet_routing::{Routes, RoutingPolicy};
use wimnet_telemetry::{
    LinkTelemetry, SeriesSummary, StackCounters, TelemetryConfig, TelemetrySummary,
};
use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout, NodeId};
use wimnet_traffic::{
    AddressStream, AddressStreamSpec, Endpoint, MessageKind, TrafficEvent, Workload,
};
use wimnet_wireless::{ChannelConfig, ControlPacketMac, ParallelMac, TokenMac};

use crate::error::CoreError;
use crate::metrics::RunOutcome;

/// Which MAC arbitrates the faithful serialized channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MacKind {
    /// The paper's control-packet MAC (§III.D): partial packets, sleepy
    /// receivers.
    ControlPacket,
    /// The token MAC baseline (ref \[7\]): whole packets only.
    Token,
}

/// How the wireless medium is modelled — three tiers of fidelity to the
/// paper's *protocol* versus its *evaluation* (see DESIGN.md §3):
///
/// 1. [`WirelessModel::PointToPoint`] — every WI pair is an independent
///    single-hop link (default; reproduces the paper's §IV magnitudes).
/// 2. [`WirelessModel::ParallelLinks`] — concurrent transfers but each
///    WI transceiver serialises its own traffic.
/// 3. [`WirelessModel::SharedChannel`] — the literal §III.D protocol:
///    one serialized 16 Gbps channel under the chosen MAC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WirelessModel {
    /// Every WI pair is an independent point-to-point single-hop link,
    /// subject to a constant total band capacity.
    PointToPoint {
        /// Per-link bandwidth in flits per cycle (1.0 = the evaluation
        /// model's single-cycle hop; 0.2 matches 16 Gbps serialisation).
        flits_per_cycle: f64,
        /// Total concurrent flits per cycle over the whole band
        /// (channelisation; constant across system sizes, §IV.C).
        max_concurrent: u32,
    },
    /// Concurrent transfers, per-WI transceiver serialisation.
    ParallelLinks {
        /// Per-WI bandwidth in flits per cycle.
        flits_per_cycle: f64,
    },
    /// Faithful single shared channel with the selected MAC.
    SharedChannel {
        /// The arbitration protocol.
        mac: MacKind,
    },
}

impl Default for WirelessModel {
    fn default() -> Self {
        WirelessModel::PointToPoint { flits_per_cycle: 1.0, max_concurrent: 16 }
    }
}

/// Every §IV simulation parameter in one place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The multichip package (chips, stacks, architecture, WI density).
    pub multichip: MultichipConfig,
    /// Routing policy (default up*/down*: deadlock-free everywhere).
    #[serde(skip, default)]
    pub routing: RoutingPolicy,
    /// Virtual channels per port (paper: 8).
    pub vcs: usize,
    /// Buffer depth per VC in flits (paper: 16).
    pub buf_depth: usize,
    /// Flit width in bits (paper: 32).
    pub flit_bits: u32,
    /// Packet length in flits (paper: 64).
    pub packet_flits: u32,
    /// Wireless medium model.
    pub wireless: WirelessModel,
    /// Power-gate non-addressed receivers (paper ref \[17\]).
    pub sleepy_receivers: bool,
    /// Wireless channel bit error rate.
    pub ber: f64,
    /// Warmup cycles excluded from measurement (paper: 1 000).
    pub warmup_cycles: u64,
    /// Measured cycles (paper: 9 000 after warmup).
    pub measure_cycles: u64,
    /// NUMA memory affinity for the synthetic workloads: probability
    /// that a core's memory access targets its package-adjacent "home"
    /// stack rather than a uniformly random one.  The paper's text is
    /// silent on placement; without affinity, distant-stack accesses
    /// make the interposer's memory paths artificially expensive and
    /// invert the Fig 5 trend (see EXPERIMENTS.md).
    pub memory_affinity_bias: f64,
    /// Per-source queue capacity in packets; generation pauses when a
    /// source's backlog is full (finite-source open-loop model).
    pub source_queue_packets: usize,
    /// Cycles without progress before declaring a stall.
    pub stall_threshold: u64,
    /// Disable the driver's idle fast-forward and step every cycle.
    /// Behavior-neutral by the fast-forward contract
    /// (`docs/fast_forward.md`): outcomes are bit-identical either way,
    /// which the determinism suite asserts and `bench_engine` exploits
    /// for interleaved full-stepping vs fast-forwarded A/B timing.
    #[serde(skip, default)]
    pub disable_fast_forward: bool,
    /// Snapshot cadence in cycles for checkpointed runs: `0` (the
    /// default) disables checkpointing; `n > 0` makes
    /// [`crate::checkpoint::run_with_checkpoints`] persist a snapshot at
    /// each crossing of an `n`-cycle mark.  Excluded from serialization
    /// (and therefore from catalog fingerprints) for the same reason as
    /// `disable_fast_forward`: the cadence changes wall-clock and disk
    /// traffic only, never the outcome — checkpoint/restore is
    /// bit-identical to an uninterrupted run (`docs/checkpoint.md`).
    #[serde(skip, default)]
    pub checkpoint_every: u64,
    /// What the run observes about itself — counters, time series,
    /// trace recording (see `docs/observability.md`).  Excluded from
    /// serialization and therefore from scenario fingerprints: by the
    /// zero-observer-effect contract a telemetry-on run and a
    /// telemetry-off run are the *same* scenario with the identical
    /// outcome (proven by `tests/determinism.rs`).
    #[serde(skip, default)]
    pub telemetry: TelemetryConfig,
    /// RNG seed for workloads and channel error injection.
    pub seed: u64,
    /// Technology energy constants.
    pub energy: EnergyModel,
    /// Memory stack timing.
    pub stack: StackConfig,
    /// Per-stack memory-controller parameters (queue depth, scheduler).
    pub mem_controller: ControllerConfig,
    /// The address stream each stack's read requests walk (see
    /// `wimnet_traffic::address_stream` and `docs/memory.md`).
    pub address_stream: AddressStreamSpec,
}

impl SystemConfig {
    /// The paper's configuration for an `XCYM` system.
    pub fn xcym(chips: usize, stacks: usize, architecture: Architecture) -> Self {
        SystemConfig {
            multichip: MultichipConfig::xcym(chips, stacks, architecture),
            routing: RoutingPolicy::default(),
            vcs: 8,
            buf_depth: 16,
            flit_bits: 32,
            packet_flits: 64,
            wireless: WirelessModel::default(),
            sleepy_receivers: true,
            ber: 1e-15,
            warmup_cycles: 1_000,
            measure_cycles: 9_000,
            memory_affinity_bias: 0.7,
            source_queue_packets: 4,
            stall_threshold: 20_000,
            disable_fast_forward: false,
            checkpoint_every: 0,
            telemetry: TelemetryConfig::default(),
            seed: 0x5177,
            energy: EnergyModel::paper_65nm(),
            stack: StackConfig::paper(),
            mem_controller: ControllerConfig::paper(),
            address_stream: AddressStreamSpec::Sequential,
        }
    }

    /// A reduced profile for tests and doctests: shorter warmup and
    /// measurement windows (results are noisier but each run takes
    /// milliseconds).
    pub fn quick_test_profile(mut self) -> Self {
        self.warmup_cycles = 300;
        self.measure_cycles = 1_500;
        self.stall_threshold = 5_000;
        self
    }

    /// The architecture label, e.g. `"4C4M (Wireless)"`.
    pub fn label(&self) -> String {
        self.multichip.label()
    }

    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] on zero windows or packet sizes.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.packet_flits == 0 {
            return Err(CoreError::InvalidParameter {
                what: "packet_flits must be positive".into(),
            });
        }
        if self.measure_cycles == 0 {
            return Err(CoreError::InvalidParameter {
                what: "measure_cycles must be positive".into(),
            });
        }
        if self.source_queue_packets == 0 {
            return Err(CoreError::InvalidParameter {
                what: "source_queue_packets must be positive".into(),
            });
        }
        if self.mem_controller.queue_capacity == 0 {
            return Err(CoreError::InvalidParameter {
                what: "mem_controller.queue_capacity must be positive".into(),
            });
        }
        if let Err(e) = self.address_stream.check() {
            return Err(CoreError::InvalidParameter {
                what: format!("address_stream: {e}"),
            });
        }
        Ok(())
    }
}

/// A pending memory reply: a stack access that has completed inside the
/// controller and is waiting for its data packet to be injected.  Public
/// only because it appears (heap-drained into a sorted `Vec`) inside
/// [`SystemState`] snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PendingReply {
    /// Cycle at which the reply packet becomes injectable.
    pub ready_at: u64,
    /// Stack that serviced the access.
    pub stack: usize,
    /// Switch the reply data travels back to.
    pub requester: NodeId,
    /// Reply length in flits.
    pub flits: u32,
}

impl Ord for PendingReply {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap pops the earliest reply first.
        other
            .ready_at
            .cmp(&self.ready_at)
            .then_with(|| other.stack.cmp(&self.stack))
            .then_with(|| other.requester.cmp(&self.requester))
    }
}

impl PartialOrd for PendingReply {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Complete mutable state of a [`MultichipSystem`] at an iteration
/// boundary of the [`MultichipSystem::run`] loop: the engine
/// ([`NetworkState`]: VC slabs, ring lanes, credits, active sets,
/// media, meter, clock, statistics), every memory controller (queues,
/// bank state machines, in-flight completions, counters), the workload
/// cursors the system itself owns (per-stack stream ordinals, staged
/// requests, outstanding read map) and the reply plumbing.
///
/// Everything *not* here is either immutable after
/// [`MultichipSystem::build`] (config, layout, routes, address map and
/// streams — all pure functions of the [`SystemConfig`]) or per-cycle
/// scratch that is empty between iterations.  Captured by
/// [`MultichipSystem::state`], reinstated by
/// [`MultichipSystem::restore_state`]; see `docs/checkpoint.md` for the
/// full state inventory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemState {
    net: NetworkState,
    controllers: Vec<MemoryControllerState>,
    stream_ordinals: Vec<u64>,
    staged: Vec<VecDeque<MemRequest>>,
    /// The outstanding-read map, drained to a vec sorted by packet id so
    /// serialization is canonical (the live structure is a hash map).
    read_requests: Vec<(PacketId, (usize, NodeId))>,
    /// The reply heap, drained to a vec sorted by (ready_at, stack,
    /// requester) so serialization — and the heap layout rebuilt by
    /// pushing in this order — is a pure function of the contents.
    pending_replies: Vec<PendingReply>,
    replies_injected: u64,
}

/// A complete, runnable multichip system.
pub struct MultichipSystem {
    config: SystemConfig,
    layout: MultichipLayout,
    net: Network,
    /// One cycle-accurate controller per stack (queues, bank state
    /// machines, FR-FCFS scheduling — see `docs/memory.md`).
    controllers: Vec<MemoryController>,
    /// Per-stack address streams: the i-th read serviced by a stack
    /// walks the configured stream at ordinal i.
    streams: Vec<AddressStream>,
    /// Per-stack request ordinals (the address-stream cursor).
    stream_ordinals: Vec<u64>,
    /// Requests accepted off the network but bounced by a full
    /// controller queue; re-offered every cycle (closed-loop
    /// backpressure).
    staged: Vec<VecDeque<MemRequest>>,
    addr_map: AddressMap,
    /// Outstanding read requests by packet id — looked up once per
    /// delivered packet, so the Fx hash map keeps the reply path O(1).
    read_requests: FxHashMap<PacketId, (usize, NodeId)>,
    pending_replies: BinaryHeap<PendingReply>,
    replies_injected: u64,
    /// Scratch for controller completions (no per-cycle allocation).
    completions_scratch: Vec<Completion>,
}

impl std::fmt::Debug for MultichipSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultichipSystem")
            .field("label", &self.config.label())
            .field("now", &self.net.now())
            .finish_non_exhaustive()
    }
}

impl MultichipSystem {
    /// Builds the system: topology, routes, engine, wireless medium and
    /// memory stacks.
    ///
    /// # Errors
    ///
    /// Propagates topology/routing/engine construction failures and
    /// configuration validation.
    pub fn build(config: &SystemConfig) -> Result<Self, CoreError> {
        config.validate()?;
        let layout = MultichipLayout::build(&config.multichip)?;
        let routes = Routes::build(layout.graph(), config.routing)?;

        let mut noc_cfg = NocConfig {
            vcs: config.vcs,
            buf_depth: config.buf_depth,
            flit_bits: config.flit_bits,
            radio_tx_depth: config.buf_depth,
            wireless_mode: match config.wireless {
                WirelessModel::PointToPoint { flits_per_cycle, max_concurrent } => {
                    WirelessMode::PointToPoint {
                        rate: flits_per_cycle,
                        latency: 1,
                        max_concurrent,
                    }
                }
                _ => WirelessMode::Medium,
            },
            energy: config.energy.clone(),
        };
        // The token MAC needs whole packets buffered at the WI (§III.D);
        // this is exactly its buffer-requirement penalty: deeper TX
        // buffers mean more static power, charged by the engine.
        if let WirelessModel::SharedChannel { mac: MacKind::Token } = config.wireless {
            noc_cfg.radio_tx_depth = noc_cfg.radio_tx_depth.max(config.packet_flits as usize);
        }
        let mut net = Network::new(&layout, routes, noc_cfg)?;

        if config.multichip.architecture == Architecture::Wireless {
            let mut channel = ChannelConfig::paper(net.radio_count());
            channel.flit_bits = config.flit_bits;
            channel.sleepy_receivers = config.sleepy_receivers;
            channel.ber = config.ber;
            channel.seed = config.seed ^ 0xc4a7;
            channel.energy = config.energy.clone();
            match config.wireless {
                WirelessModel::PointToPoint { .. } => {
                    // Wireless edges are ordinary links; no medium.
                }
                WirelessModel::SharedChannel { mac: MacKind::ControlPacket } => {
                    net.attach_medium(Box::new(ControlPacketMac::new(channel)));
                }
                WirelessModel::SharedChannel { mac: MacKind::Token } => {
                    net.attach_medium(Box::new(TokenMac::new(channel)));
                }
                WirelessModel::ParallelLinks { flits_per_cycle } => {
                    net.attach_medium(Box::new(ParallelMac::with_rate(
                        channel,
                        flits_per_cycle,
                    )));
                }
            }
        }

        // After the media are attached, so trace recording reaches them.
        if config.telemetry.any() {
            net.enable_telemetry(
                config.telemetry.sample_interval,
                config.telemetry.trace,
            );
        }

        let num_stacks = config.multichip.num_stacks;
        // Pre-derive the per-cycle background quantum once so the
        // stepped and fast-forwarded paths charge the identical f64.
        let background =
            config.stack.background_energy_per_cycle(config.energy.clock);
        let controllers = (0..num_stacks)
            .map(|i| {
                let mut c =
                    MemoryController::new(i, config.stack.clone(), config.mem_controller);
                c.set_background_energy(background);
                c
            })
            .collect();
        let streams = (0..num_stacks)
            .map(|i| AddressStream::new(config.address_stream, config.seed, i as u64))
            .collect();
        let addr_map = AddressMap::new(
            num_stacks,
            config.stack.channels,
            config.stack.banks,
            config.stack.layers,
            64,
            2_048,
            16_384,
        );
        Ok(MultichipSystem {
            stream_ordinals: vec![0; num_stacks],
            staged: (0..num_stacks).map(|_| VecDeque::new()).collect(),
            config: config.clone(),
            layout,
            net,
            controllers,
            streams,
            addr_map,
            read_requests: FxHashMap::default(),
            pending_replies: BinaryHeap::new(),
            replies_injected: 0,
            completions_scratch: Vec::new(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The underlying topology.
    pub fn layout(&self) -> &MultichipLayout {
        &self.layout
    }

    /// The engine (statistics, energy meter, clock).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Memory replies injected so far (request/reply workloads only).
    pub fn replies_injected(&self) -> u64 {
        self.replies_injected
    }

    /// Maps a workload endpoint to its switch.
    pub fn node_of(&self, endpoint: Endpoint) -> NodeId {
        match endpoint {
            Endpoint::Core(c) => self.layout.core_nodes()[c],
            Endpoint::Memory(m) => self.layout.memory_nodes()[m],
        }
    }

    /// Injects one workload event, honouring the finite source queue.
    /// Returns `true` if the packet was accepted.
    fn inject_event(&mut self, e: &TrafficEvent) -> bool {
        let src = self.node_of(e.src);
        let dest = self.node_of(e.dest);
        if src == dest {
            return false;
        }
        // Finite source queue: drop generation when the source backlog
        // is full (open loop with finite sources).
        let backlog_flits = self.net.source_backlog_at(src);
        let cap =
            self.config.source_queue_packets as u64 * u64::from(self.config.packet_flits);
        if backlog_flits >= cap {
            return false;
        }
        let id = self
            .net
            .inject(PacketDesc::new(src, dest, e.flits, e.cycle));
        if e.kind == MessageKind::MemoryRead {
            if let Endpoint::Memory(stack) = e.dest {
                self.read_requests.insert(id, (stack, src));
            }
        }
        true
    }

    /// `true` when the engine's masked fast-stepping path
    /// ([`Network::step_fast`]) covers this system's switches (every
    /// switch fits the 128-bit VC masks).  All paper-scale
    /// configurations qualify; [`crate::replica::ReplicaBatch`] falls
    /// back to the reference stepper when this is `false`.
    pub fn supports_fast_step(&self) -> bool {
        self.net.supports_fast_step()
    }

    /// One simulation cycle: inject due replies, step the engine, stage
    /// memory arrivals into the controllers, and step every controller.
    /// `fast` selects [`Network::step_fast`] — decision-identical to
    /// [`Network::step`] (pinned by the `fast_step` differential suite),
    /// so the flag changes wall-clock only, never the outcome.
    fn step_cycle(&mut self, fast: bool) {
        let now = self.net.now();
        // Replies whose stack access completed become network packets.
        while let Some(&r) = self.pending_replies.peek() {
            if r.ready_at > now {
                break;
            }
            self.pending_replies.pop();
            let src = self.layout.memory_nodes()[r.stack];
            self.net
                .inject(PacketDesc::new(src, r.requester, r.flits, now));
            self.replies_injected += 1;
        }
        if fast {
            self.net.step_fast();
        } else {
            self.net.step();
        }
        let t = self.net.now();
        // Arrived read requests draw their address from the stack's
        // stream (pure function of the per-stack request ordinal, so
        // the walk is independent of arrival timing) and queue for
        // admission.
        for p in self.net.drain_arrivals() {
            if let Some((stack, requester)) = self.read_requests.remove(&p.id) {
                let ordinal = self.stream_ordinals[stack];
                self.stream_ordinals[stack] += 1;
                let block = self.streams[stack].block(ordinal);
                // Map the stack-local block onto the package interleave
                // so the address decodes back to this stack.
                let addr =
                    (block * self.controllers.len() as u64 + stack as u64) * 64;
                let bytes = self.config.packet_flits * self.config.flit_bits / 8;
                self.staged[stack].push_back(MemRequest {
                    addr,
                    bytes,
                    kind: AccessKind::Read,
                    tag: requester.0 as u64,
                });
            }
        }
        // Admit staged requests while their channel queues have room
        // (FIFO admission port per stack: a full channel blocks the
        // head), then advance every controller one cycle.  Completions
        // charge their stack energy and schedule the data reply.
        let mut completions = std::mem::take(&mut self.completions_scratch);
        for stack in 0..self.controllers.len() {
            while let Some(&req) = self.staged[stack].front() {
                if self.controllers[stack].enqueue(req, &self.addr_map).is_ok() {
                    self.staged[stack].pop_front();
                } else {
                    break;
                }
            }
            completions.clear();
            self.controllers[stack].step(t, &mut completions);
            let background = self.controllers[stack].background_energy();
            if background > wimnet_energy::Energy::ZERO {
                self.net.charge(EnergyCategory::DramBackground, background);
            }
            for c in &completions {
                self.net.charge(EnergyCategory::Tsv, c.energy);
                self.pending_replies.push(PendingReply {
                    ready_at: c.at,
                    stack,
                    requester: NodeId(c.tag as usize),
                    flits: self.config.packet_flits,
                });
            }
        }
        self.completions_scratch = completions;
    }

    /// `true` when the whole memory subsystem is drained: no staged or
    /// queued requests, nothing in service, no reply waiting.
    fn memory_idle(&self) -> bool {
        self.pending_replies.is_empty()
            && self.staged.iter().all(VecDeque::is_empty)
            && self.controllers.iter().all(MemoryController::is_quiescent)
    }

    /// The earliest driver cycle at which the memory subsystem needs a
    /// real step again, given the driver currently sits at `cycle` (and
    /// the controllers were last stepped at `cycle`): one iteration
    /// before the controllers' earliest completion/issue, because the
    /// iteration at `c` steps the controllers at `c + 1`.  `cycle`
    /// itself when staged requests are retrying admission; `u64::MAX`
    /// when the memory side is fully drained.
    fn memory_resume_at(&self, cycle: u64) -> u64 {
        if self.staged.iter().any(|s| !s.is_empty()) {
            return cycle;
        }
        let mut event = u64::MAX;
        for c in &self.controllers {
            event = event.min(c.next_event_at(cycle));
        }
        if event == u64::MAX {
            u64::MAX
        } else {
            event - 1
        }
    }

    /// Fast-forwards up to `want` network cycles and replays the same
    /// skip on every controller (their occupancy integrals and DRAM
    /// background energy accrue in closed form —
    /// `MemoryController::idle_advance` batches the background quanta
    /// into one repeated charge per stack).  The skipped controller
    /// steps are the ones the skipped driver iterations would have
    /// run, i.e. cycles `now + 1 ..= now + skipped`.
    fn fast_forward_cycles(&mut self, want: u64) -> u64 {
        let from = self.net.now();
        let skipped = self.net.fast_forward(want);
        if skipped > 0 {
            let mut charges = wimnet_energy::ChargeBatch::new();
            for c in &mut self.controllers {
                c.idle_advance(from + 1, skipped, &mut charges);
            }
            self.net.apply_charges(&charges);
        }
        skipped
    }

    /// Per-stack controller statistics (queue occupancy, bank-level
    /// parallelism, page hit/empty/miss breakdown — `docs/memory.md`).
    pub fn memory_stats(&self) -> Vec<MemoryStackStats> {
        self.controllers.iter().map(MemoryController::stats).collect()
    }

    /// Captures the complete mutable state at an iteration boundary of
    /// the run loop (between `run_iteration` calls, where the per-cycle
    /// scratch is empty and the engine's charge log is drained).
    /// Prefer [`MultichipSystem::snapshot`], which pairs the state with
    /// its cycle cursor.
    pub fn state(&self) -> SystemState {
        let mut read_requests: Vec<(PacketId, (usize, NodeId))> =
            self.read_requests.iter().map(|(&id, &v)| (id, v)).collect();
        read_requests.sort_unstable_by_key(|&(id, _)| id);
        let mut pending_replies: Vec<PendingReply> =
            self.pending_replies.iter().copied().collect();
        pending_replies
            .sort_unstable_by_key(|r| (r.ready_at, r.stack, r.requester));
        SystemState {
            net: self.net.state(),
            controllers: self.controllers.iter().map(MemoryController::state).collect(),
            stream_ordinals: self.stream_ordinals.clone(),
            staged: self.staged.clone(),
            read_requests,
            pending_replies,
            replies_injected: self.replies_injected,
        }
    }

    /// Reinstates a state captured by [`MultichipSystem::state`] on a
    /// freshly built system with the *same* [`SystemConfig`].  The
    /// restored system is bit-for-bit the system that was snapshotted:
    /// resuming its run produces the identical [`RunOutcome`] — meter
    /// limbs, statistics and memory counters included — as the
    /// uninterrupted run (proven per architecture and MAC by
    /// `tests/checkpoint.rs`).
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] when the state's shape does not match
    /// this system (different scale, architecture or wireless medium).
    ///
    /// # Panics
    ///
    /// Debug-asserts deeper shape invariants (per-switch VC counts,
    /// per-channel bank counts) that only a hand-doctored state can
    /// violate; on-disk corruption is quarantined by
    /// [`crate::checkpoint::CheckpointStore`] long before this runs.
    pub fn restore_state(&mut self, s: &SystemState) -> Result<(), CoreError> {
        let shape = |what: &str| CoreError::Checkpoint { what: what.to_string() };
        if s.controllers.len() != self.controllers.len() {
            return Err(shape("snapshot controller count differs from system"));
        }
        if s.stream_ordinals.len() != self.stream_ordinals.len() {
            return Err(shape("snapshot stream-ordinal count differs from system"));
        }
        if s.staged.len() != self.staged.len() {
            return Err(shape("snapshot staged-queue count differs from system"));
        }
        // The network restores its media first, so a MAC-model mismatch
        // fails here and leaves this system untouched.
        self.net.restore_state(&s.net).map_err(|e| CoreError::Checkpoint {
            what: format!("network restore: {e}"),
        })?;
        for (c, cs) in self.controllers.iter_mut().zip(&s.controllers) {
            c.restore_state(cs);
        }
        self.stream_ordinals.clone_from(&s.stream_ordinals);
        self.staged.clone_from(&s.staged);
        self.read_requests.clear();
        self.read_requests.extend(s.read_requests.iter().copied());
        self.pending_replies.clear();
        // Pushing in the canonical sorted order makes the heap layout a
        // pure function of the contents, so a later snapshot of the
        // restored system is byte-identical to the uninterrupted run's.
        self.pending_replies.extend(s.pending_replies.iter().copied());
        self.replies_injected = s.replies_injected;
        self.completions_scratch.clear();
        Ok(())
    }

    /// Runs `workload` through the configured warmup + measurement
    /// windows and reports the outcome.
    ///
    /// # Errors
    ///
    /// [`CoreError::Stalled`] when the watchdog detects a deadlock.
    pub fn run(&mut self, workload: &mut dyn Workload) -> Result<RunOutcome, CoreError> {
        self.run_from(workload, 0)
    }

    /// Resumes the run loop at `cycle` — the cursor returned by
    /// [`MultichipSystem::run_until`] or recorded in a
    /// [`crate::checkpoint::Snapshot`] — and drives it to the end of
    /// the measurement window.  `run_from(w, 0)` on a fresh system is
    /// exactly [`MultichipSystem::run`].
    ///
    /// Restoring a snapshot and calling `run_from` at its cycle
    /// requires a workload whose generation is a pure function of the
    /// queried cycle (true of every workload in this crate: injection
    /// is counter-based, never history-based), because the workload
    /// object itself is not part of the snapshot.
    ///
    /// # Errors
    ///
    /// [`CoreError::Stalled`] when the watchdog detects a deadlock.
    pub fn run_from(
        &mut self,
        workload: &mut dyn Workload,
        cycle: u64,
    ) -> Result<RunOutcome, CoreError> {
        let total = self.run_total_cycles();
        self.run_until(workload, cycle, total)?;
        Ok(self.collect_outcome(workload.name()))
    }

    /// Advances the run loop from `cycle` until the cursor first
    /// reaches `stop` (or the end of the measurement window, whichever
    /// comes first) and returns the new cursor.  The cursor equals the
    /// engine clock [`Network::now`] at every iteration boundary, and
    /// may land past `stop` when an idle fast-forward jumped over it —
    /// snapshots taken there exercise exactly the
    /// fast-forward-boundary case `tests/checkpoint.rs` pins.
    ///
    /// # Errors
    ///
    /// [`CoreError::Stalled`] when the watchdog detects a deadlock.
    pub fn run_until(
        &mut self,
        workload: &mut dyn Workload,
        mut cycle: u64,
        stop: u64,
    ) -> Result<u64, CoreError> {
        let stop = stop.min(self.run_total_cycles());
        while cycle < stop {
            cycle = self.run_iteration(workload, cycle, false)?;
        }
        Ok(cycle)
    }

    /// The driver's end cycle: warmup plus measurement window.
    pub(crate) fn run_total_cycles(&self) -> u64 {
        self.config.warmup_cycles + self.config.measure_cycles
    }

    /// One iteration of the [`MultichipSystem::run`] loop at `cycle`,
    /// returning the next cycle (past `cycle + 1` when idle
    /// fast-forward jumped).  This is the *entire* per-cycle protocol —
    /// window opening, generation, stepping, stall watchdog, invariant
    /// sweeps and the fast-forward gate — factored out so
    /// [`crate::replica::ReplicaBatch`] can interleave many independent
    /// runs while each lane observes exactly the solo `run` schedule.
    ///
    /// `fast` forwards to [`Network::step_fast`]; see
    /// [`MultichipSystem::supports_fast_step`].
    pub(crate) fn run_iteration(
        &mut self,
        workload: &mut dyn Workload,
        mut cycle: u64,
        fast: bool,
    ) -> Result<u64, CoreError> {
        let total = self.run_total_cycles();
        if cycle == self.config.warmup_cycles {
            self.net.begin_measurement();
        }
        for e in workload.generate(cycle) {
            self.inject_event(&e);
        }
        self.step_cycle(fast);
        if self.net.is_stalled(self.config.stall_threshold) {
            return Err(CoreError::Stalled { cycle });
        }
        // Debug builds periodically sweep the switches' slab
        // bookkeeping invariants (buffered counter and busy sets vs
        // slab occupancy) so a drifting counter fails the nearest
        // test instead of corrupting a long run silently.
        #[cfg(debug_assertions)]
        if cycle.is_multiple_of(1024) {
            self.net.assert_switch_invariants();
        }
        cycle += 1;
        // Idle fast-forward: when the workload promises no events
        // before `next` and the network is provably idle, jump
        // straight to the earliest thing that can happen — the
        // workload's next event, the first pending memory reply
        // (whose injection cycle is already scheduled, so waiting
        // for it cycle by cycle proves nothing), or the memory
        // controllers' next completion/issue (their completion
        // times are fixed at issue, so the wait inside a DRAM
        // service gap proves nothing either) — instead of spinning
        // empty cycles.  The jump never crosses the
        // measurement-window boundary (begin_measurement must run at
        // exactly the warmup cycle).  `is_idle` is checked *before*
        // asking the workload: `next_event_at` may scan a counter
        // RNG (Bernoulli workloads), and that scan would be wasted
        // every cycle the network is still draining flits.  The
        // full gate — driver, workload, network, medium and memory
        // controllers all agreeing — is documented in
        // docs/fast_forward.md and docs/memory.md.
        if !self.config.disable_fast_forward && self.net.is_idle() {
            if let Some(next) = workload.next_event_at(cycle) {
                // Remaining replies all have `ready_at >= cycle`:
                // earlier ones were drained by `step_cycle`.
                let reply_at = self
                    .pending_replies
                    .peek()
                    .map_or(u64::MAX, |r| r.ready_at);
                let memory_at = self.memory_resume_at(cycle);
                // `<=` (not `<`): at cycle == warmup_cycles the
                // loop top has not yet run begin_measurement, so
                // the jump must stop short and let the next
                // iteration open the window.
                let bound = if cycle <= self.config.warmup_cycles {
                    self.config.warmup_cycles
                } else {
                    total
                };
                let target = next.min(reply_at).min(memory_at).min(bound);
                if target > cycle {
                    cycle += self.fast_forward_cycles(target - cycle);
                }
            }
        }
        Ok(cycle)
    }

    /// Collects the [`RunOutcome`] of a finished run (`&mut` because
    /// harvesting telemetry flushes the open time-series bucket).
    pub(crate) fn collect_outcome(&mut self, workload_name: &str) -> RunOutcome {
        let telemetry = self.collect_telemetry();
        RunOutcome::collect(
            &self.config,
            workload_name,
            &self.net,
            self.layout.total_cores(),
            self.memory_stats(),
            telemetry,
        )
    }

    /// Harvests the end-of-run [`TelemetrySummary`] from the live sink
    /// — `None` when telemetry was off.  Flushes the open time-series
    /// bucket and drains MAC turn spans into the trace buffer first,
    /// so calling this (or the outcome-collection path that wraps it)
    /// more than once is safe and idempotent.
    pub fn collect_telemetry(&mut self) -> Option<TelemetrySummary> {
        self.net.finish_telemetry()?;
        let cycles = self.net.now();
        let kinds = self.net.link_kinds();
        let macs = self.net.medium_counters();
        let latency = self.net.stats().latency_histogram().clone();
        let stacks: Vec<StackCounters> = self
            .controllers
            .iter()
            .map(|c| {
                let s = c.stats();
                StackCounters {
                    requests: s.accesses,
                    queue_depth_integral: c.queued_cycle_sum(),
                    mean_queue_depth: s.avg_queue_depth,
                }
            })
            .collect();
        let t = self.net.telemetry()?;
        let links = t
            .links
            .iter()
            .zip(&kinds)
            .map(|(lc, kind)| LinkTelemetry {
                kind: (*kind).to_string(),
                flits: lc.flits,
                busy_cycles: lc.busy_cycles,
                credit_stalls: lc.credit_stalls,
                utilization: if cycles == 0 {
                    0.0
                } else {
                    lc.busy_cycles as f64 / cycles as f64
                },
            })
            .collect();
        Some(TelemetrySummary {
            cycles,
            links,
            switches: t.switches.clone(),
            macs,
            stacks,
            series: SeriesSummary {
                interval: t.series.interval(),
                points: t.series.points().to_vec(),
            },
            latency,
        })
    }

    /// Renders the recorded packet lifetimes and MAC turn intervals as
    /// Chrome-trace/Perfetto JSON — `None` unless the run was built
    /// with [`wimnet_telemetry::TelemetryConfig::tracing`].  Load the
    /// result in `chrome://tracing` or <https://ui.perfetto.dev>; the
    /// schema is documented in `docs/observability.md`.
    pub fn export_chrome_trace(&mut self) -> Option<String> {
        let t = self.net.finish_telemetry()?;
        let tb = t.trace.as_ref()?;
        Some(wimnet_telemetry::ChromeTrace::from_buffer(tb).render())
    }

    /// Runs with no traffic for `cycles` (useful for leakage baselines).
    /// Idle stretches fast-forward once the memory subsystem has
    /// drained (queues, in-service requests and pending replies).
    pub fn idle(&mut self, cycles: u64) {
        let mut left = cycles;
        while left > 0 {
            if self.memory_idle() {
                left -= self.fast_forward_cycles(left);
                if left == 0 {
                    return;
                }
            }
            self.step_cycle(false);
            left -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimnet_traffic::{InjectionProcess, UniformRandom};

    fn quick(arch: Architecture) -> SystemConfig {
        SystemConfig::xcym(4, 4, arch).quick_test_profile()
    }

    fn uniform(cfg: &SystemConfig, rate: f64) -> UniformRandom {
        UniformRandom::new(
            cfg.multichip.total_cores(),
            cfg.multichip.num_stacks,
            0.2,
            InjectionProcess::Bernoulli { rate },
            cfg.packet_flits,
            cfg.seed,
        )
    }

    #[test]
    fn all_architectures_build_and_run() {
        for arch in Architecture::ALL {
            let cfg = quick(arch);
            let mut sys = MultichipSystem::build(&cfg).unwrap();
            let mut w = uniform(&cfg, 0.002);
            let outcome = sys.run(&mut w).unwrap();
            assert!(
                outcome.packets_delivered() > 0,
                "{arch} delivered nothing"
            );
            assert!(outcome.avg_latency_cycles.is_some(), "{arch} has latency");
        }
    }

    #[test]
    fn wireless_models_all_work() {
        for wireless in [
            WirelessModel::ParallelLinks { flits_per_cycle: 1.0 },
            WirelessModel::SharedChannel { mac: MacKind::ControlPacket },
            WirelessModel::SharedChannel { mac: MacKind::Token },
        ] {
            let mut cfg = quick(Architecture::Wireless);
            cfg.wireless = wireless;
            let mut sys = MultichipSystem::build(&cfg).unwrap();
            let mut w = uniform(&cfg, 0.001);
            let outcome = sys.run(&mut w).unwrap();
            assert!(
                outcome.packets_delivered() > 0,
                "{wireless:?} delivered nothing"
            );
        }
    }

    #[test]
    fn token_mac_gets_deep_tx_buffers() {
        let mut cfg = quick(Architecture::Wireless);
        cfg.wireless = WirelessModel::SharedChannel { mac: MacKind::Token };
        let sys = MultichipSystem::build(&cfg).unwrap();
        assert_eq!(
            sys.network().config().radio_tx_depth,
            cfg.packet_flits as usize
        );
    }

    #[test]
    fn memory_reads_generate_replies() {
        use wimnet_traffic::{Endpoint, MessageKind, TrafficEvent, Workload};

        /// One read per cycle from core 0 to stack 0 for a while.
        struct Reads(u64);
        impl Workload for Reads {
            fn generate(&mut self, now: u64) -> Vec<TrafficEvent> {
                if now < self.0 && now.is_multiple_of(50) {
                    vec![TrafficEvent {
                        cycle: now,
                        src: Endpoint::Core(0),
                        dest: Endpoint::Memory(0),
                        flits: 4,
                        kind: MessageKind::MemoryRead,
                    }]
                } else {
                    Vec::new()
                }
            }
            fn name(&self) -> &str {
                "reads"
            }
            fn shape(&self) -> (usize, usize) {
                (64, 4)
            }
        }

        let cfg = quick(Architecture::Substrate);
        let mut sys = MultichipSystem::build(&cfg).unwrap();
        let outcome = sys.run(&mut Reads(1000)).unwrap();
        assert!(sys.replies_injected() > 0, "reads must produce replies");
        // Replies are full data packets flowing back to core 0.
        assert!(outcome.packets_delivered() > sys.replies_injected() / 2);
        // The controller serviced every reply-producing request and its
        // statistics surface in the outcome.
        let mem = &outcome.memory;
        assert_eq!(mem.len(), cfg.multichip.num_stacks);
        assert_eq!(mem[0].accesses, sys.replies_injected());
        assert_eq!(mem[0].reads, mem[0].accesses);
        assert_eq!(
            mem[0].page_hits + mem[0].page_empties + mem[0].page_misses,
            mem[0].accesses
        );
        assert!(
            mem[0].busy_fraction > 0.0 && mem[0].busy_fraction <= 1.0,
            "{:?}",
            mem[0]
        );
    }

    #[test]
    fn read_heavy_traffic_fast_forwards_through_dram_service_gaps() {
        // A sparse read stream leaves the network idle while requests
        // sit in the stack controllers; the driver must jump those
        // service gaps (bounded by the controllers' next_event_at) and
        // land back exactly on the completion cycle.
        let mut cfg = quick(Architecture::Wireless);
        cfg.memory_affinity_bias = 0.0;
        let mut sys = MultichipSystem::build(&cfg).unwrap();
        let mut w = UniformRandom::new(
            cfg.multichip.total_cores(),
            cfg.multichip.num_stacks,
            0.9,
            InjectionProcess::Bernoulli { rate: 0.0003 },
            cfg.packet_flits,
            cfg.seed,
        )
        .with_memory_reads(1.0, 8);
        let outcome = sys.run(&mut w).unwrap();
        assert!(sys.replies_injected() > 0, "reads must flow");
        assert!(
            outcome.fast_forwarded_cycles > 0,
            "memory-bound idle gaps must fast-forward"
        );
        let accesses: u64 = outcome.memory.iter().map(|m| m.accesses).sum();
        assert_eq!(accesses, sys.replies_injected());
    }

    #[test]
    fn address_streams_shape_the_page_behaviour() {
        // Sequential walks mostly hit the open row; uniform random over
        // a large region mostly does not.
        let run = |stream: wimnet_traffic::AddressStreamSpec| {
            let mut cfg = quick(Architecture::Substrate);
            cfg.address_stream = stream;
            let mut sys = MultichipSystem::build(&cfg).unwrap();
            let mut w = UniformRandom::new(
                cfg.multichip.total_cores(),
                cfg.multichip.num_stacks,
                0.9,
                InjectionProcess::Bernoulli { rate: 0.02 },
                cfg.packet_flits,
                cfg.seed,
            )
            .with_memory_reads(1.0, 8);
            let outcome = sys.run(&mut w).unwrap();
            let hits: u64 = outcome.memory.iter().map(|m| m.page_hits).sum();
            let total: u64 = outcome.memory.iter().map(|m| m.accesses).sum();
            assert!(total > 20, "need enough accesses to compare ({total})");
            hits as f64 / total as f64
        };
        let seq = run(wimnet_traffic::AddressStreamSpec::Sequential);
        let uniform = run(wimnet_traffic::AddressStreamSpec::Uniform {
            region_blocks: 1 << 22,
        });
        assert!(
            seq > uniform + 0.2,
            "sequential must out-hit uniform: {seq} vs {uniform}"
        );
    }

    #[test]
    fn source_queue_caps_backlog() {
        let cfg = quick(Architecture::Substrate);
        let mut sys = MultichipSystem::build(&cfg).unwrap();
        let mut w = uniform(&cfg, 1.0); // saturating offered load
        let outcome = sys.run(&mut w).unwrap();
        // With the cap, offered >> accepted but nothing breaks.
        assert!(outcome.packets_delivered() > 0);
        // Each source holds at most cap-1 flits plus one whole packet
        // admitted at the boundary.
        let cap = cfg.source_queue_packets as u64 * u64::from(cfg.packet_flits);
        let per_source_max = cap + u64::from(cfg.packet_flits);
        assert!(sys.network().source_backlog() <= per_source_max * 64);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut cfg = quick(Architecture::Substrate);
        cfg.packet_flits = 0;
        assert!(matches!(
            MultichipSystem::build(&cfg),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn idle_systems_burn_only_static_energy() {
        use wimnet_energy::EnergyCategory;
        let cfg = quick(Architecture::Substrate);
        let mut sys = MultichipSystem::build(&cfg).unwrap();
        sys.idle(1_000);
        let meter = sys.network().meter();
        // No traffic: zero dynamic energy in every data category…
        assert_eq!(meter.category(EnergyCategory::SwitchDynamic).joules(), 0.0);
        assert_eq!(meter.category(EnergyCategory::Wire).joules(), 0.0);
        assert_eq!(meter.category(EnergyCategory::SerialIo).joules(), 0.0);
        // …but leakage accrues every cycle.
        assert!(meter.category(EnergyCategory::SwitchStatic).joules() > 0.0);
        assert!(meter.category(EnergyCategory::SerialIoStatic).joules() > 0.0);
    }

    #[test]
    fn deterministic_outcomes() {
        let cfg = quick(Architecture::Interposer);
        let run = || {
            let mut sys = MultichipSystem::build(&cfg).unwrap();
            let mut w = uniform(&cfg, 0.003);
            sys.run(&mut w).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.packets_delivered(), b.packets_delivered());
        assert_eq!(a.avg_latency_cycles, b.avg_latency_cycles);
        assert!(
            (a.total_energy_nj() - b.total_energy_nj()).abs() < 1e-9,
            "energy must be deterministic"
        );
    }
}
