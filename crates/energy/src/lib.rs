//! Energy modelling for the `wimnet` multichip interconnect simulator.
//!
//! This crate provides the three building blocks every other `wimnet` crate
//! uses to account for energy:
//!
//! * [`units`] — strongly typed physical quantities ([`Energy`], [`Power`],
//!   [`Frequency`]) so that picojoules are never accidentally added to
//!   nanojoules or watts.
//! * [`model`] — the [`EnergyModel`]: every per-bit, per-millimetre and
//!   per-cycle constant used by the SOCC'17 paper, with the paper's cited
//!   values as defaults (wireless transceiver 2.3 pJ/bit, serial chip-to-chip
//!   I/O 5 pJ/bit, HBM-style wide I/O 6.5 pJ/bit, 65 nm switches at 2.5 GHz).
//! * [`meter`] — the [`EnergyMeter`]: per-category accumulation with a
//!   conservation invariant (the category breakdown always sums to the
//!   reported total).
//!
//! # Example
//!
//! ```
//! use wimnet_energy::{EnergyModel, EnergyMeter, EnergyCategory};
//!
//! let model = EnergyModel::paper_65nm();
//! let mut meter = EnergyMeter::new();
//!
//! // A 64-flit, 32-bit-per-flit packet crosses one wireless hop.
//! let bits = 64 * 32;
//! meter.add(EnergyCategory::WirelessTx, model.wireless_tx(bits));
//! meter.add(EnergyCategory::WirelessRx, model.wireless_rx(bits));
//!
//! // The paper's transceiver dissipates 2.3 pJ/bit in total.
//! let pj = meter.total().picojoules();
//! assert!((pj - 2.3 * bits as f64).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod meter;
pub mod model;
pub mod units;

pub use meter::{ChargeBatch, EnergyBreakdown, EnergyCategory, EnergyMeter, ExactSum};
pub use model::EnergyModel;
pub use units::{Energy, Frequency, Power};
