//! Per-category energy accounting with a conservation invariant.

use std::fmt;
use std::ops::AddAssign;

use serde::{Deserialize, Serialize};

use crate::units::Energy;

/// Where a quantum of energy was spent.
///
/// The categories follow the components of the SOCC'17 multichip system so
/// that experiment reports can break a packet's energy down the same way the
/// paper's §IV discussion does.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[non_exhaustive]
pub enum EnergyCategory {
    /// Dynamic switch traversal (buffers, arbitration, crossbar).
    SwitchDynamic,
    /// Switch leakage integrated over simulated time.
    SwitchStatic,
    /// On-chip wires between mesh switches.
    Wire,
    /// Interposer metal-layer wiring including µbump crossings.
    InterposerWire,
    /// High-speed serial chip-to-chip I/O.
    SerialIo,
    /// Serial I/O static (PLL, RX front end) integrated over time.
    SerialIoStatic,
    /// 128-bit wide memory I/O.
    WideIo,
    /// Wireless transmitters (data).
    WirelessTx,
    /// Wireless receivers (data decode).
    WirelessRx,
    /// Wireless control packets (MAC overhead, all receivers awake).
    WirelessControl,
    /// Awake-but-idle wireless receivers.
    WirelessIdle,
    /// Power-gated wireless receivers.
    WirelessSleep,
    /// Through-silicon vias inside memory stacks.
    Tsv,
    /// DRAM array accesses (zero under the paper's assumptions).
    DramAccess,
}

impl EnergyCategory {
    /// All categories, in report order.
    pub const ALL: [EnergyCategory; 14] = [
        EnergyCategory::SwitchDynamic,
        EnergyCategory::SwitchStatic,
        EnergyCategory::Wire,
        EnergyCategory::InterposerWire,
        EnergyCategory::SerialIo,
        EnergyCategory::SerialIoStatic,
        EnergyCategory::WideIo,
        EnergyCategory::WirelessTx,
        EnergyCategory::WirelessRx,
        EnergyCategory::WirelessControl,
        EnergyCategory::WirelessIdle,
        EnergyCategory::WirelessSleep,
        EnergyCategory::Tsv,
        EnergyCategory::DramAccess,
    ];

    /// Short, stable label used in CSV output.
    pub fn label(self) -> &'static str {
        match self {
            EnergyCategory::SwitchDynamic => "switch_dynamic",
            EnergyCategory::SwitchStatic => "switch_static",
            EnergyCategory::Wire => "wire",
            EnergyCategory::InterposerWire => "interposer_wire",
            EnergyCategory::SerialIo => "serial_io",
            EnergyCategory::SerialIoStatic => "serial_io_static",
            EnergyCategory::WideIo => "wide_io",
            EnergyCategory::WirelessTx => "wireless_tx",
            EnergyCategory::WirelessRx => "wireless_rx",
            EnergyCategory::WirelessControl => "wireless_control",
            EnergyCategory::WirelessIdle => "wireless_idle",
            EnergyCategory::WirelessSleep => "wireless_sleep",
            EnergyCategory::Tsv => "tsv",
            EnergyCategory::DramAccess => "dram_access",
        }
    }

    fn index(self) -> usize {
        match self {
            EnergyCategory::SwitchDynamic => 0,
            EnergyCategory::SwitchStatic => 1,
            EnergyCategory::Wire => 2,
            EnergyCategory::InterposerWire => 3,
            EnergyCategory::SerialIo => 4,
            EnergyCategory::SerialIoStatic => 5,
            EnergyCategory::WideIo => 6,
            EnergyCategory::WirelessTx => 7,
            EnergyCategory::WirelessRx => 8,
            EnergyCategory::WirelessControl => 9,
            EnergyCategory::WirelessIdle => 10,
            EnergyCategory::WirelessSleep => 11,
            EnergyCategory::Tsv => 12,
            EnergyCategory::DramAccess => 13,
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

const NUM_CATEGORIES: usize = 14;

/// Accumulates energy per [`EnergyCategory`].
///
/// The meter maintains the invariant that [`EnergyMeter::total`] equals the
/// sum over all categories (verified by [`EnergyMeter::verify_conservation`]
/// and the crate's tests), so experiment reports can never silently lose
/// energy.
///
/// # Example
///
/// ```
/// use wimnet_energy::{Energy, EnergyCategory, EnergyMeter};
///
/// let mut meter = EnergyMeter::new();
/// meter.add(EnergyCategory::Wire, Energy::from_pj(8.0));
/// meter.add(EnergyCategory::SwitchDynamic, Energy::from_pj(2.0));
/// assert!((meter.total().picojoules() - 10.0).abs() < 1e-12);
/// assert!(meter.verify_conservation(1e-12));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    by_category: [Energy; NUM_CATEGORIES],
    total: Energy,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Records `energy` against `category`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `energy` is negative or non-finite;
    /// energy consumption is physically non-negative.
    pub fn add(&mut self, category: EnergyCategory, energy: Energy) {
        debug_assert!(
            energy.is_finite() && energy >= Energy::ZERO,
            "energy must be finite and non-negative, got {energy:?}"
        );
        self.by_category[category.index()] += energy;
        self.total += energy;
    }

    /// Energy recorded against `category` so far.
    pub fn category(&self, category: EnergyCategory) -> Energy {
        self.by_category[category.index()]
    }

    /// Total energy recorded across all categories.
    pub fn total(&self) -> Energy {
        self.total
    }

    /// Sum of all wireless categories (TX, RX, control, idle, sleep).
    pub fn wireless_total(&self) -> Energy {
        self.category(EnergyCategory::WirelessTx)
            + self.category(EnergyCategory::WirelessRx)
            + self.category(EnergyCategory::WirelessControl)
            + self.category(EnergyCategory::WirelessIdle)
            + self.category(EnergyCategory::WirelessSleep)
    }

    /// Iterates over `(category, energy)` pairs in report order.
    pub fn iter(&self) -> impl Iterator<Item = (EnergyCategory, Energy)> + '_ {
        EnergyCategory::ALL
            .iter()
            .take(NUM_CATEGORIES)
            .map(move |&c| (c, self.category(c)))
    }

    /// Folds another meter into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        for i in 0..NUM_CATEGORIES {
            self.by_category[i] += other.by_category[i];
        }
        self.total += other.total;
    }

    /// Checks that the per-category sum matches the running total to within
    /// `tolerance_fraction` (relative, with an absolute floor of 1 pJ).
    pub fn verify_conservation(&self, tolerance_fraction: f64) -> bool {
        let sum: Energy = self.by_category.iter().copied().sum();
        let diff = (sum - self.total).joules().abs();
        let bound = (self.total.joules().abs() * tolerance_fraction).max(1e-12);
        diff <= bound
    }

    /// Resets all counters to zero.
    pub fn clear(&mut self) {
        *self = EnergyMeter::default();
    }

    /// An owned snapshot suitable for serialisation in reports.
    pub fn breakdown(&self) -> EnergyBreakdown {
        EnergyBreakdown {
            entries: self.iter().collect(),
            total: self.total,
        }
    }
}

impl AddAssign<&EnergyMeter> for EnergyMeter {
    fn add_assign(&mut self, rhs: &EnergyMeter) {
        self.merge(rhs);
    }
}

/// A run-length-encoded log of pending meter charges.
///
/// Hot paths that charge the same few constants thousands of times per
/// cycle (the per-flit-hop switch-traversal and link-crossing energies)
/// push into a `ChargeBatch` instead of calling [`EnergyMeter::add`]
/// per flit, then drain the batch once per cycle with
/// [`EnergyMeter::apply_batch`].  Consecutive identical charges collapse
/// into one `(category, energy, count)` run, so a saturated cycle's
/// hundreds of meter calls become a handful of run records.
///
/// **Bit-identity contract:** draining replays the charges *in push
/// order*, one [`EnergyMeter::add`] per logged charge.  Run-length
/// merging only coalesces *adjacent* charges whose energies share the
/// exact bit pattern, and repeated addition of the same f64 value is
/// exactly what the unbatched call sequence performed — so meter totals
/// (whose f64 accumulation order is observable) come out bit-identical
/// to unbatched metering.
///
/// # Example
///
/// ```
/// use wimnet_energy::{ChargeBatch, Energy, EnergyCategory, EnergyMeter};
///
/// let mut batch = ChargeBatch::new();
/// batch.push(EnergyCategory::SwitchDynamic, Energy::from_pj(2.0));
/// batch.push(EnergyCategory::SwitchDynamic, Energy::from_pj(2.0));
/// batch.push(EnergyCategory::Wire, Energy::from_pj(8.0));
/// assert_eq!(batch.runs(), 2);
///
/// let mut meter = EnergyMeter::new();
/// meter.apply_batch(&batch);
/// batch.clear();
/// assert!((meter.total().picojoules() - 12.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChargeBatch {
    runs: Vec<(EnergyCategory, Energy, u32)>,
}

impl ChargeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        ChargeBatch::default()
    }

    /// Logs one charge, merging it into the previous run when category
    /// and exact energy bit pattern match.
    #[inline]
    pub fn push(&mut self, category: EnergyCategory, energy: Energy) {
        if let Some(last) = self.runs.last_mut() {
            if last.0 == category && last.1.joules().to_bits() == energy.joules().to_bits() {
                last.2 += 1;
                return;
            }
        }
        self.runs.push((category, energy, 1));
    }

    /// Number of run records currently held (not the charge count).
    pub fn runs(&self) -> usize {
        self.runs.len()
    }

    /// Total logged charges across all runs.
    pub fn charges(&self) -> u64 {
        self.runs.iter().map(|&(_, _, n)| u64::from(n)).sum()
    }

    /// `true` when nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Forgets all logged charges, keeping the allocation.
    pub fn clear(&mut self) {
        self.runs.clear();
    }
}

impl EnergyMeter {
    /// Drains a [`ChargeBatch`] into the meter, replaying the logged
    /// charges in push order (see the batch's bit-identity contract).
    /// The batch is left untouched; callers [`ChargeBatch::clear`] it
    /// for reuse.
    pub fn apply_batch(&mut self, batch: &ChargeBatch) {
        for &(category, energy, count) in &batch.runs {
            for _ in 0..count {
                self.add(category, energy);
            }
        }
    }
}

impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<20} {:>14}", "category", "energy")?;
        for (cat, e) in self.iter() {
            if e > Energy::ZERO {
                writeln!(f, "{:<20} {:>14}", cat.label(), format!("{e}"))?;
            }
        }
        write!(f, "{:<20} {:>14}", "total", format!("{}", self.total))
    }
}

/// A serialisable snapshot of an [`EnergyMeter`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// `(category, energy)` pairs in report order.
    pub entries: Vec<(EnergyCategory, Energy)>,
    /// Total energy across all categories.
    pub total: Energy,
}

impl EnergyBreakdown {
    /// Energy for one category, zero if absent.
    pub fn category(&self, category: EnergyCategory) -> Energy {
        self.entries
            .iter()
            .find(|(c, _)| *c == category)
            .map(|(_, e)| *e)
            .unwrap_or(Energy::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter_is_zero_and_conserved() {
        let m = EnergyMeter::new();
        assert_eq!(m.total(), Energy::ZERO);
        assert!(m.verify_conservation(1e-12));
        for (_, e) in m.iter() {
            assert_eq!(e, Energy::ZERO);
        }
    }

    #[test]
    fn add_accumulates_per_category_and_total() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::Wire, Energy::from_pj(1.0));
        m.add(EnergyCategory::Wire, Energy::from_pj(2.0));
        m.add(EnergyCategory::SerialIo, Energy::from_pj(5.0));
        assert!((m.category(EnergyCategory::Wire).picojoules() - 3.0).abs() < 1e-12);
        assert!((m.category(EnergyCategory::SerialIo).picojoules() - 5.0).abs() < 1e-12);
        assert!((m.total().picojoules() - 8.0).abs() < 1e-12);
        assert!(m.verify_conservation(1e-12));
    }

    #[test]
    fn merge_combines_meters() {
        let mut a = EnergyMeter::new();
        a.add(EnergyCategory::WirelessTx, Energy::from_pj(1.0));
        let mut b = EnergyMeter::new();
        b.add(EnergyCategory::WirelessTx, Energy::from_pj(2.0));
        b.add(EnergyCategory::WirelessRx, Energy::from_pj(4.0));
        a += &b;
        assert!((a.category(EnergyCategory::WirelessTx).picojoules() - 3.0).abs() < 1e-12);
        assert!((a.total().picojoules() - 7.0).abs() < 1e-12);
        assert!(a.verify_conservation(1e-12));
    }

    #[test]
    fn wireless_total_sums_only_wireless_categories() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::WirelessTx, Energy::from_pj(1.0));
        m.add(EnergyCategory::WirelessRx, Energy::from_pj(2.0));
        m.add(EnergyCategory::WirelessControl, Energy::from_pj(3.0));
        m.add(EnergyCategory::WirelessIdle, Energy::from_pj(4.0));
        m.add(EnergyCategory::WirelessSleep, Energy::from_pj(5.0));
        m.add(EnergyCategory::Wire, Energy::from_pj(100.0));
        assert!((m.wireless_total().picojoules() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::Tsv, Energy::from_pj(9.0));
        m.clear();
        assert_eq!(m, EnergyMeter::new());
    }

    #[test]
    fn breakdown_snapshot_matches_meter() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::WideIo, Energy::from_pj(6.5));
        let b = m.breakdown();
        assert_eq!(b.total, m.total());
        assert_eq!(
            b.category(EnergyCategory::WideIo),
            m.category(EnergyCategory::WideIo)
        );
        assert_eq!(b.category(EnergyCategory::Tsv), Energy::ZERO);
    }

    #[test]
    fn display_lists_nonzero_categories_and_total() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::SwitchDynamic, Energy::from_nj(1.0));
        let s = format!("{m}");
        assert!(s.contains("switch_dynamic"));
        assert!(s.contains("total"));
        assert!(!s.contains("dram_access"));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn negative_energy_panics_in_debug() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::Wire, Energy::from_pj(-1.0));
    }

    #[test]
    fn charge_batch_is_bit_identical_to_unbatched_adds() {
        // An interleaved per-flit charge pattern (the phase-4 shape:
        // switch traversal, then a link crossing, repeated).
        let charges = [
            (EnergyCategory::SwitchDynamic, Energy::from_pj(20.16)),
            (EnergyCategory::Wire, Energy::from_pj(3.7)),
            (EnergyCategory::SwitchDynamic, Energy::from_pj(20.16)),
            (EnergyCategory::SwitchDynamic, Energy::from_pj(20.16)),
            (EnergyCategory::WirelessRx, Energy::from_pj(12.8)),
            (EnergyCategory::WirelessTx, Energy::from_pj(60.8)),
            (EnergyCategory::SwitchDynamic, Energy::from_pj(20.16)),
            (EnergyCategory::Wire, Energy::from_pj(3.7)),
            (EnergyCategory::Wire, Energy::from_pj(3.7)),
        ];
        let mut direct = EnergyMeter::new();
        let mut batch = ChargeBatch::new();
        for &(c, e) in &charges {
            direct.add(c, e);
            batch.push(c, e);
        }
        assert!(batch.runs() < charges.len(), "adjacent runs must merge");
        assert_eq!(batch.charges(), charges.len() as u64);
        let mut batched = EnergyMeter::new();
        batched.apply_batch(&batch);
        assert_eq!(
            direct.total().joules().to_bits(),
            batched.total().joules().to_bits(),
            "total must replay bit-identically"
        );
        for (cat, e) in direct.iter() {
            assert_eq!(
                e.joules().to_bits(),
                batched.category(cat).joules().to_bits(),
                "{cat} diverged under batching"
            );
        }
    }

    #[test]
    fn charge_batch_clear_and_reuse() {
        let mut batch = ChargeBatch::new();
        assert!(batch.is_empty());
        for _ in 0..4 {
            batch.push(EnergyCategory::Tsv, Energy::from_pj(1.0));
        }
        assert_eq!(batch.runs(), 1);
        assert_eq!(batch.charges(), 4);
        let mut m = EnergyMeter::new();
        m.apply_batch(&batch);
        assert!((m.category(EnergyCategory::Tsv).picojoules() - 4.0).abs() < 1e-12);
        batch.clear();
        assert!(batch.is_empty());
        // Applying an empty batch is a no-op.
        let before = m.clone();
        m.apply_batch(&batch);
        assert_eq!(m, before);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = EnergyCategory::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), NUM_CATEGORIES);
    }
}
