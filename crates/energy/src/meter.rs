//! Per-category energy accounting on an exact fixed-point
//! superaccumulator.
//!
//! The meter keeps one wide-integer accumulator per category over the
//! quantum 2⁻¹⁰⁷⁴ J (the spacing of the smallest f64 subnormal), so
//! *every* finite `f64` charge is represented exactly and integer
//! addition — which is associative — replaces float addition.  Sums are
//! therefore independent of charge order and batching, and
//! [`EnergyMeter::add_repeated`] can account `k` identical charges with
//! one exact multiply-add: the O(1)-per-skipped-cycle contract the idle
//! fast-forward relies on (`docs/fast_forward.md`).  The f64 the caller
//! observes is produced once, at read time, by correctly rounding the
//! exact sum (round-to-nearest-even).

use std::fmt;
use std::ops::AddAssign;

use serde::{Deserialize, Serialize};

use crate::units::Energy;

/// Where a quantum of energy was spent.
///
/// The categories follow the components of the SOCC'17 multichip system so
/// that experiment reports can break a packet's energy down the same way the
/// paper's §IV discussion does.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[non_exhaustive]
pub enum EnergyCategory {
    /// Dynamic switch traversal (buffers, arbitration, crossbar).
    SwitchDynamic,
    /// Switch leakage integrated over simulated time.
    SwitchStatic,
    /// On-chip wires between mesh switches.
    Wire,
    /// Interposer metal-layer wiring including µbump crossings.
    InterposerWire,
    /// High-speed serial chip-to-chip I/O.
    SerialIo,
    /// Serial I/O static (PLL, RX front end) integrated over time.
    SerialIoStatic,
    /// 128-bit wide memory I/O.
    WideIo,
    /// Wireless transmitters (data).
    WirelessTx,
    /// Wireless receivers (data decode).
    WirelessRx,
    /// Wireless control packets (MAC overhead, all receivers awake).
    WirelessControl,
    /// Awake-but-idle wireless receivers.
    WirelessIdle,
    /// Power-gated wireless receivers.
    WirelessSleep,
    /// Through-silicon vias inside memory stacks.
    Tsv,
    /// DRAM array accesses (zero under the paper's assumptions).
    DramAccess,
    /// DRAM background power integrated over time (zero by default —
    /// the paper excludes intra-stack energy; see
    /// `StackConfig::background_power`).
    DramBackground,
}

impl EnergyCategory {
    /// All categories, in report order.
    pub const ALL: [EnergyCategory; 15] = [
        EnergyCategory::SwitchDynamic,
        EnergyCategory::SwitchStatic,
        EnergyCategory::Wire,
        EnergyCategory::InterposerWire,
        EnergyCategory::SerialIo,
        EnergyCategory::SerialIoStatic,
        EnergyCategory::WideIo,
        EnergyCategory::WirelessTx,
        EnergyCategory::WirelessRx,
        EnergyCategory::WirelessControl,
        EnergyCategory::WirelessIdle,
        EnergyCategory::WirelessSleep,
        EnergyCategory::Tsv,
        EnergyCategory::DramAccess,
        EnergyCategory::DramBackground,
    ];

    /// Short, stable label used in CSV output.
    pub fn label(self) -> &'static str {
        match self {
            EnergyCategory::SwitchDynamic => "switch_dynamic",
            EnergyCategory::SwitchStatic => "switch_static",
            EnergyCategory::Wire => "wire",
            EnergyCategory::InterposerWire => "interposer_wire",
            EnergyCategory::SerialIo => "serial_io",
            EnergyCategory::SerialIoStatic => "serial_io_static",
            EnergyCategory::WideIo => "wide_io",
            EnergyCategory::WirelessTx => "wireless_tx",
            EnergyCategory::WirelessRx => "wireless_rx",
            EnergyCategory::WirelessControl => "wireless_control",
            EnergyCategory::WirelessIdle => "wireless_idle",
            EnergyCategory::WirelessSleep => "wireless_sleep",
            EnergyCategory::Tsv => "tsv",
            EnergyCategory::DramAccess => "dram_access",
            EnergyCategory::DramBackground => "dram_background",
        }
    }

    fn index(self) -> usize {
        match self {
            EnergyCategory::SwitchDynamic => 0,
            EnergyCategory::SwitchStatic => 1,
            EnergyCategory::Wire => 2,
            EnergyCategory::InterposerWire => 3,
            EnergyCategory::SerialIo => 4,
            EnergyCategory::SerialIoStatic => 5,
            EnergyCategory::WideIo => 6,
            EnergyCategory::WirelessTx => 7,
            EnergyCategory::WirelessRx => 8,
            EnergyCategory::WirelessControl => 9,
            EnergyCategory::WirelessIdle => 10,
            EnergyCategory::WirelessSleep => 11,
            EnergyCategory::Tsv => 12,
            EnergyCategory::DramAccess => 13,
            EnergyCategory::DramBackground => 14,
        }
    }
}

impl fmt::Display for EnergyCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

const NUM_CATEGORIES: usize = 15;

/// Limbs of one exact accumulator.  The fixed point covers every finite
/// f64 bit weight — 2⁻¹⁰⁷⁴ J (bit 0) up to 2¹⁰²³ J (bit 2097) — plus
/// 64 bits of carry headroom, so ~2⁶⁴ maximal charges cannot overflow:
/// ⌈(1074 + 1024 + 64) / 64⌉ = 34.
const LIMBS: usize = 34;

/// An exact non-negative fixed-point sum of f64 values (a Kulisch-style
/// superaccumulator): a little-endian multi-limb integer in units of
/// 2⁻¹⁰⁷⁴ J.  Addition is integer addition — exact and associative —
/// so the sum is independent of both the order charges arrive in and
/// how they are batched.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactSum {
    limbs: [u64; LIMBS],
}

impl Default for ExactSum {
    fn default() -> Self {
        ExactSum { limbs: [0; LIMBS] }
    }
}

/// Splits a finite positive f64 into `(mantissa, shift)` with
/// `x == mantissa × 2^(shift − 1074)`, i.e. the mantissa's LSB sits at
/// fixed-point bit `shift`.
#[inline]
fn decompose(x: f64) -> (u64, u32) {
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as u32;
    let frac = bits & ((1u64 << 52) - 1);
    if exp == 0 {
        (frac, 0) // subnormal: no implicit bit, LSB weight 2⁻¹⁰⁷⁴
    } else {
        (frac | (1 << 52), exp - 1)
    }
}

impl ExactSum {
    /// Adds `value × 2^shift` (value < 2¹¹⁷: a mantissa × count
    /// product) into the accumulator, exactly.
    fn add_shifted(&mut self, value: u128, shift: u32) {
        let limb = (shift / 64) as usize;
        let off = shift % 64;
        let lo = value as u64;
        let hi = (value >> 64) as u64;
        // The ≤ 117-bit value lands across at most three limbs.
        let parts = if off == 0 {
            [lo, hi, 0]
        } else {
            [lo << off, (lo >> (64 - off)) | (hi << off), hi >> (64 - off)]
        };
        let mut carry = 0u64;
        let mut i = limb;
        for p in parts {
            let (s1, c1) = self.limbs[i].overflowing_add(p);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = u64::from(c1) + u64::from(c2);
            i += 1;
        }
        while carry > 0 {
            // Indexing past the last limb would mean > 2¹⁶⁰ J were
            // accumulated; the panic is the overflow detector.
            let (s, c) = self.limbs[i].overflowing_add(carry);
            self.limbs[i] = s;
            carry = u64::from(c);
            i += 1;
        }
    }

    /// Adds `x` repeated `k` times — one exact multiply-add.
    #[inline]
    fn add_f64_repeated(&mut self, x: f64, k: u64) {
        if k == 0 || x.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return; // zero adds nothing; the caller validated x
        }
        let (m, shift) = decompose(x);
        self.add_shifted(u128::from(m) * u128::from(k), shift);
    }

    /// Folds another accumulator in (limb-wise add with carry).
    fn add_sum(&mut self, other: &ExactSum) {
        let mut carry = 0u64;
        for i in 0..LIMBS {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        debug_assert_eq!(carry, 0, "exact accumulator overflow on merge");
    }

    /// `true` when any bit strictly below index `n` is set.
    fn any_bits_below(&self, n: usize) -> bool {
        let limb = n / 64;
        let off = n % 64;
        self.limbs[..limb].iter().any(|&l| l != 0)
            || (off > 0 && (self.limbs[limb] & ((1u64 << off) - 1)) != 0)
    }

    /// The correctly rounded (round-to-nearest-even) f64 value of the
    /// accumulator.
    fn to_f64(&self) -> f64 {
        let Some(top) = self.limbs.iter().rposition(|&l| l != 0) else {
            return 0.0;
        };
        let h = top * 64 + 63 - self.limbs[top].leading_zeros() as usize;
        if h <= 52 {
            // Below bit 53 the f64 encoding (subnormals and the first
            // normal binade) is linear in units of 2⁻¹⁰⁷⁴, so the low
            // limb *is* the bit pattern.
            return f64::from_bits(self.limbs[0]);
        }
        // Top 53 significant bits, then round-to-nearest-even on the
        // guard (first dropped) and sticky (any lower) bits.
        let drop = h - 52;
        let limb = drop / 64;
        let off = drop % 64;
        let lo = self.limbs[limb] >> off;
        let hi = if off == 0 {
            0
        } else {
            self.limbs.get(limb + 1).copied().unwrap_or(0) << (64 - off)
        };
        let mut mant = (lo | hi) & ((1u64 << 53) - 1);
        let guard = (self.limbs[(drop - 1) / 64] >> ((drop - 1) % 64)) & 1 == 1;
        if guard && (self.any_bits_below(drop - 1) || mant & 1 == 1) {
            mant += 1;
        }
        let mut h = h;
        if mant == 1 << 53 {
            mant >>= 1;
            h += 1;
        }
        // MSB at fixed-point bit h ⇒ value ≈ 2^(h − 1074) ⇒ biased
        // exponent h − 1074 + 1023 = h − 51 (h > 52 ⇒ always normal).
        let exp_biased = (h - 51) as u64;
        if exp_biased >= 2047 {
            return f64::INFINITY;
        }
        f64::from_bits((exp_biased << 52) | (mant & ((1u64 << 52) - 1)))
    }
}

/// Accumulates energy per [`EnergyCategory`] — exactly.
///
/// Each category is an [`ExactSum`] fixed-point superaccumulator, so
/// accumulation is associative and order-independent, per-cycle replay
/// and batched accounting produce identical sums by construction, and
/// [`EnergyMeter::total`] conserves energy exactly (it is the rounded
/// value of the per-category accumulators' exact sum).
///
/// The meter also counts its own work: [`EnergyMeter::ops`] is the
/// number of add *operations* performed, [`EnergyMeter::charges`] the
/// number of logical charges they represented.  A fast-forwarded idle
/// stretch performs O(1) ops for O(k) charges; `ops` is what the
/// O(1)-accounting tests assert on.
///
/// # Example
///
/// ```
/// use wimnet_energy::{Energy, EnergyCategory, EnergyMeter};
///
/// let mut meter = EnergyMeter::new();
/// meter.add(EnergyCategory::Wire, Energy::from_pj(8.0));
/// meter.add(EnergyCategory::SwitchDynamic, Energy::from_pj(2.0));
/// assert!((meter.total().picojoules() - 10.0).abs() < 1e-12);
/// assert!(meter.verify_conservation(1e-12));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    by_category: [ExactSum; NUM_CATEGORIES],
    /// Add operations performed (an `add_repeated` counts once).
    ops: u64,
    /// Logical charges represented (an `add_repeated` counts `k`).
    charges: u64,
}

/// Meters compare by accumulated energy; the `ops`/`charges` work
/// counters are diagnostics and deliberately excluded (a fast-forwarded
/// run equals its full-stepping twin).
impl PartialEq for EnergyMeter {
    fn eq(&self, other: &Self) -> bool {
        self.by_category == other.by_category
    }
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Records `energy` against `category`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `energy` is negative or non-finite;
    /// energy consumption is physically non-negative.
    #[inline]
    pub fn add(&mut self, category: EnergyCategory, energy: Energy) {
        self.add_repeated(category, energy, 1);
    }

    /// Records `energy` against `category` `count` times — one exact
    /// multiply-add, bit-identical to `count` individual
    /// [`EnergyMeter::add`] calls (the accumulator is exact, so the
    /// equality is by construction, not by replay order).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `energy` is negative or non-finite.
    #[inline]
    pub fn add_repeated(&mut self, category: EnergyCategory, energy: Energy, count: u64) {
        debug_assert!(
            energy.is_finite() && energy >= Energy::ZERO,
            "energy must be finite and non-negative, got {energy:?}"
        );
        if count == 0 {
            return;
        }
        self.ops += 1;
        self.charges += count;
        self.by_category[category.index()].add_f64_repeated(energy.joules(), count);
    }

    /// Energy recorded against `category` so far (correctly rounded
    /// from the exact accumulator).
    pub fn category(&self, category: EnergyCategory) -> Energy {
        Energy::from_joules(self.by_category[category.index()].to_f64())
    }

    /// Total energy recorded across all categories: the correctly
    /// rounded value of the categories' *exact* sum, so conservation
    /// holds by construction.
    pub fn total(&self) -> Energy {
        let mut sum = ExactSum::default();
        for acc in &self.by_category {
            sum.add_sum(acc);
        }
        Energy::from_joules(sum.to_f64())
    }

    /// Sum of all wireless categories (TX, RX, control, idle, sleep),
    /// exact before the single rounding.
    pub fn wireless_total(&self) -> Energy {
        let mut sum = ExactSum::default();
        for c in [
            EnergyCategory::WirelessTx,
            EnergyCategory::WirelessRx,
            EnergyCategory::WirelessControl,
            EnergyCategory::WirelessIdle,
            EnergyCategory::WirelessSleep,
        ] {
            sum.add_sum(&self.by_category[c.index()]);
        }
        Energy::from_joules(sum.to_f64())
    }

    /// Add operations performed so far (each [`EnergyMeter::add`] or
    /// [`EnergyMeter::add_repeated`] call counts once).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Logical charges accounted so far (an
    /// [`EnergyMeter::add_repeated`] of `k` counts `k`).  The spread
    /// between `charges` and `ops` is the work the batched
    /// representation saved.
    pub fn charges(&self) -> u64 {
        self.charges
    }

    /// Iterates over `(category, energy)` pairs in report order.
    pub fn iter(&self) -> impl Iterator<Item = (EnergyCategory, Energy)> + '_ {
        EnergyCategory::ALL.iter().map(move |&c| (c, self.category(c)))
    }

    /// Folds another meter into this one (exact limb-wise addition).
    pub fn merge(&mut self, other: &EnergyMeter) {
        for i in 0..NUM_CATEGORIES {
            self.by_category[i].add_sum(&other.by_category[i]);
        }
        self.ops += other.ops;
        self.charges += other.charges;
    }

    /// Checks that the per-category sum matches the total to within
    /// `tolerance_fraction` (relative, with an absolute floor of 1 pJ).
    /// With the exact accumulator the only slack is the one rounding
    /// per category read-out, so any sane tolerance passes.
    pub fn verify_conservation(&self, tolerance_fraction: f64) -> bool {
        let sum: Energy = self.iter().map(|(_, e)| e).sum();
        let diff = (sum - self.total()).joules().abs();
        let bound = (self.total().joules().abs() * tolerance_fraction).max(1e-12);
        diff <= bound
    }

    /// Resets all accumulators and work counters to zero.
    pub fn clear(&mut self) {
        *self = EnergyMeter::default();
    }

    /// An owned snapshot suitable for serialisation in reports.
    pub fn breakdown(&self) -> EnergyBreakdown {
        EnergyBreakdown {
            entries: self.iter().collect(),
            total: self.total(),
        }
    }
}

impl AddAssign<&EnergyMeter> for EnergyMeter {
    fn add_assign(&mut self, rhs: &EnergyMeter) {
        self.merge(rhs);
    }
}

/// A run-length-encoded log of pending meter charges.
///
/// Hot paths that charge the same few constants thousands of times per
/// cycle (the per-flit-hop switch-traversal and link-crossing energies)
/// push into a `ChargeBatch` instead of calling [`EnergyMeter::add`]
/// per flit, then drain the batch once per cycle with
/// [`EnergyMeter::apply_batch`]; idle closed forms log whole stretches
/// at once with [`ChargeBatch::push_repeated`].  Consecutive identical
/// charges collapse into one `(category, energy, count)` run, and
/// draining costs one [`EnergyMeter::add_repeated`] per *run* — O(1)
/// per run however many charges it represents.
///
/// **Exactness contract:** the meter's accumulator is an exact integer
/// sum, so applying a batch is bit-identical to the unbatched add
/// sequence regardless of charge order or how runs were coalesced —
/// associativity is exact, not approximate.
///
/// # Example
///
/// ```
/// use wimnet_energy::{ChargeBatch, Energy, EnergyCategory, EnergyMeter};
///
/// let mut batch = ChargeBatch::new();
/// batch.push(EnergyCategory::SwitchDynamic, Energy::from_pj(2.0));
/// batch.push(EnergyCategory::SwitchDynamic, Energy::from_pj(2.0));
/// batch.push_repeated(EnergyCategory::Wire, Energy::from_pj(8.0), 1_000_000);
/// assert_eq!(batch.runs(), 2);
/// assert_eq!(batch.charges(), 1_000_002);
///
/// let mut meter = EnergyMeter::new();
/// meter.apply_batch(&batch);
/// batch.clear();
/// assert_eq!(meter.ops(), 2, "one add per run, not per charge");
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChargeBatch {
    runs: Vec<(EnergyCategory, Energy, u64)>,
}

impl ChargeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        ChargeBatch::default()
    }

    /// Logs one charge, merging it into the previous run when category
    /// and exact energy bit pattern match.
    #[inline]
    pub fn push(&mut self, category: EnergyCategory, energy: Energy) {
        self.push_repeated(category, energy, 1);
    }

    /// Logs `count` identical charges as (at most) one run.
    #[inline]
    pub fn push_repeated(&mut self, category: EnergyCategory, energy: Energy, count: u64) {
        if count == 0 {
            return;
        }
        if let Some(last) = self.runs.last_mut() {
            if last.0 == category && last.1.joules().to_bits() == energy.joules().to_bits() {
                last.2 += count;
                return;
            }
        }
        self.runs.push((category, energy, count));
    }

    /// Number of run records currently held (not the charge count).
    pub fn runs(&self) -> usize {
        self.runs.len()
    }

    /// Total logged charges across all runs.
    pub fn charges(&self) -> u64 {
        self.runs.iter().map(|&(_, _, n)| n).sum()
    }

    /// `true` when nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Forgets all logged charges, keeping the allocation.
    pub fn clear(&mut self) {
        self.runs.clear();
    }
}

impl EnergyMeter {
    /// Drains a [`ChargeBatch`] into the meter: one exact
    /// [`EnergyMeter::add_repeated`] per run, bit-identical to replaying
    /// every logged charge individually (see the batch's exactness
    /// contract).  The batch is left untouched; callers
    /// [`ChargeBatch::clear`] it for reuse.
    pub fn apply_batch(&mut self, batch: &ChargeBatch) {
        for &(category, energy, count) in &batch.runs {
            self.add_repeated(category, energy, count);
        }
    }
}

impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<20} {:>14}", "category", "energy")?;
        for (cat, e) in self.iter() {
            if e > Energy::ZERO {
                writeln!(f, "{:<20} {:>14}", cat.label(), format!("{e}"))?;
            }
        }
        write!(f, "{:<20} {:>14}", "total", format!("{}", self.total()))
    }
}

/// A serialisable snapshot of an [`EnergyMeter`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// `(category, energy)` pairs in report order.
    pub entries: Vec<(EnergyCategory, Energy)>,
    /// Total energy across all categories.
    pub total: Energy,
}

impl EnergyBreakdown {
    /// Energy for one category, zero if absent.
    pub fn category(&self, category: EnergyCategory) -> Energy {
        self.entries
            .iter()
            .find(|(c, _)| *c == category)
            .map(|(_, e)| *e)
            .unwrap_or(Energy::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter_is_zero_and_conserved() {
        let m = EnergyMeter::new();
        assert_eq!(m.total(), Energy::ZERO);
        assert!(m.verify_conservation(1e-12));
        for (_, e) in m.iter() {
            assert_eq!(e, Energy::ZERO);
        }
        assert_eq!(m.ops(), 0);
        assert_eq!(m.charges(), 0);
    }

    #[test]
    fn add_accumulates_per_category_and_total() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::Wire, Energy::from_pj(1.0));
        m.add(EnergyCategory::Wire, Energy::from_pj(2.0));
        m.add(EnergyCategory::SerialIo, Energy::from_pj(5.0));
        assert!((m.category(EnergyCategory::Wire).picojoules() - 3.0).abs() < 1e-12);
        assert!((m.category(EnergyCategory::SerialIo).picojoules() - 5.0).abs() < 1e-12);
        assert!((m.total().picojoules() - 8.0).abs() < 1e-12);
        assert!(m.verify_conservation(1e-12));
    }

    #[test]
    fn merge_combines_meters() {
        let mut a = EnergyMeter::new();
        a.add(EnergyCategory::WirelessTx, Energy::from_pj(1.0));
        let mut b = EnergyMeter::new();
        b.add(EnergyCategory::WirelessTx, Energy::from_pj(2.0));
        b.add(EnergyCategory::WirelessRx, Energy::from_pj(4.0));
        a += &b;
        assert!((a.category(EnergyCategory::WirelessTx).picojoules() - 3.0).abs() < 1e-12);
        assert!((a.total().picojoules() - 7.0).abs() < 1e-12);
        assert!(a.verify_conservation(1e-12));
        assert_eq!(a.ops(), 3, "merge folds the work counters too");
    }

    #[test]
    fn wireless_total_sums_only_wireless_categories() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::WirelessTx, Energy::from_pj(1.0));
        m.add(EnergyCategory::WirelessRx, Energy::from_pj(2.0));
        m.add(EnergyCategory::WirelessControl, Energy::from_pj(3.0));
        m.add(EnergyCategory::WirelessIdle, Energy::from_pj(4.0));
        m.add(EnergyCategory::WirelessSleep, Energy::from_pj(5.0));
        m.add(EnergyCategory::Wire, Energy::from_pj(100.0));
        assert!((m.wireless_total().picojoules() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::Tsv, Energy::from_pj(9.0));
        m.clear();
        assert_eq!(m, EnergyMeter::new());
        assert_eq!(m.ops(), 0);
    }

    #[test]
    fn breakdown_snapshot_matches_meter() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::WideIo, Energy::from_pj(6.5));
        let b = m.breakdown();
        assert_eq!(b.total, m.total());
        assert_eq!(
            b.category(EnergyCategory::WideIo),
            m.category(EnergyCategory::WideIo)
        );
        assert_eq!(b.category(EnergyCategory::Tsv), Energy::ZERO);
    }

    #[test]
    fn display_lists_nonzero_categories_and_total() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::SwitchDynamic, Energy::from_nj(1.0));
        let s = format!("{m}");
        assert!(s.contains("switch_dynamic"));
        assert!(s.contains("total"));
        assert!(!s.contains("dram_access"));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn negative_energy_panics_in_debug() {
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::Wire, Energy::from_pj(-1.0));
    }

    #[test]
    fn add_repeated_is_bit_identical_to_individual_adds() {
        // Adversarial mantissa: all 52 fraction bits set, so a float
        // loop would drift within a few adds.
        let e = Energy::from_joules(f64::from_bits(0x3D3F_FFFF_FFFF_FFFF));
        let k = 1_000_003u64;
        let mut looped = EnergyMeter::new();
        for _ in 0..k {
            looped.add(EnergyCategory::WirelessIdle, e);
        }
        let mut batched = EnergyMeter::new();
        batched.add_repeated(EnergyCategory::WirelessIdle, e, k);
        assert_eq!(looped, batched);
        assert_eq!(
            looped.total().joules().to_bits(),
            batched.total().joules().to_bits()
        );
        assert_eq!(batched.ops(), 1);
        assert_eq!(batched.charges(), k);
        assert_eq!(looped.ops(), k);
    }

    #[test]
    fn accumulation_is_order_independent() {
        let charges = [
            Energy::from_pj(20.16),
            Energy::from_joules(1e-300),
            Energy::from_pj(3.7),
            Energy::from_joules(f64::from_bits(1)), // smallest subnormal
            Energy::from_nj(123.456),
        ];
        let mut fwd = EnergyMeter::new();
        for &e in &charges {
            fwd.add(EnergyCategory::Wire, e);
        }
        let mut rev = EnergyMeter::new();
        for &e in charges.iter().rev() {
            rev.add(EnergyCategory::Wire, e);
        }
        assert_eq!(fwd, rev);
        assert_eq!(
            fwd.total().joules().to_bits(),
            rev.total().joules().to_bits()
        );
    }

    #[test]
    fn read_out_is_correctly_rounded() {
        // 2⁵³ + 1 is not representable: the exact sum sits halfway
        // between 2⁵³ and 2⁵³ + 2, and round-to-nearest-even must pick
        // 2⁵³ (even mantissa).
        let mut m = EnergyMeter::new();
        m.add(EnergyCategory::Wire, Energy::from_joules(9007199254740992.0));
        m.add(EnergyCategory::Wire, Energy::from_joules(1.0));
        assert_eq!(m.category(EnergyCategory::Wire).joules(), 9007199254740992.0);
        // …while 2⁵³ + 3 rounds up to 2⁵³ + 4 (nearest even).
        let mut m2 = EnergyMeter::new();
        m2.add(EnergyCategory::Wire, Energy::from_joules(9007199254740992.0));
        m2.add(EnergyCategory::Wire, Energy::from_joules(3.0));
        assert_eq!(m2.category(EnergyCategory::Wire).joules(), 9007199254740996.0);
        // A tiny term below the guard bit is sticky: 2⁵³ + 1 + ε
        // rounds *up* to 2⁵³ + 2.
        let mut m3 = EnergyMeter::new();
        m3.add(EnergyCategory::Wire, Energy::from_joules(9007199254740992.0));
        m3.add(EnergyCategory::Wire, Energy::from_joules(1.0));
        m3.add(EnergyCategory::Wire, Energy::from_joules(1e-30));
        assert_eq!(m3.category(EnergyCategory::Wire).joules(), 9007199254740994.0);
    }

    #[test]
    fn tiny_and_huge_magnitudes_coexist_exactly() {
        // Sub-ulp charges are retained, not absorbed: a running f64 sum
        // at 1000.0 J would never move under 1 fJ adds (1e-15 is below
        // half an ulp of 1000), but the exact accumulator keeps every
        // one and they surface at read-out once they amount to > ½ ulp.
        let big = Energy::from_joules(1.0);
        let tiny = Energy::from_joules(1e-15);
        let mut m = EnergyMeter::new();
        m.add_repeated(EnergyCategory::Tsv, big, 1_000);
        assert_eq!(m.category(EnergyCategory::Tsv).joules(), 1000.0);
        for _ in 0..1_000_000 {
            m.add(EnergyCategory::Tsv, tiny);
        }
        assert!(
            m.category(EnergyCategory::Tsv).joules() > 1000.0,
            "a million femtojoules must not vanish"
        );
        // And the pure-subnormal regime reads back exactly.
        let sub = Energy::from_joules(f64::from_bits(7));
        let mut m3 = EnergyMeter::new();
        m3.add_repeated(EnergyCategory::Tsv, sub, 3);
        assert_eq!(m3.category(EnergyCategory::Tsv).joules().to_bits(), 21);
    }

    #[test]
    fn charge_batch_is_bit_identical_to_unbatched_adds() {
        // An interleaved per-flit charge pattern (the phase-4 shape:
        // switch traversal, then a link crossing, repeated).
        let charges = [
            (EnergyCategory::SwitchDynamic, Energy::from_pj(20.16)),
            (EnergyCategory::Wire, Energy::from_pj(3.7)),
            (EnergyCategory::SwitchDynamic, Energy::from_pj(20.16)),
            (EnergyCategory::SwitchDynamic, Energy::from_pj(20.16)),
            (EnergyCategory::WirelessRx, Energy::from_pj(12.8)),
            (EnergyCategory::WirelessTx, Energy::from_pj(60.8)),
            (EnergyCategory::SwitchDynamic, Energy::from_pj(20.16)),
            (EnergyCategory::Wire, Energy::from_pj(3.7)),
            (EnergyCategory::Wire, Energy::from_pj(3.7)),
        ];
        let mut direct = EnergyMeter::new();
        let mut batch = ChargeBatch::new();
        for &(c, e) in &charges {
            direct.add(c, e);
            batch.push(c, e);
        }
        assert!(batch.runs() < charges.len(), "adjacent runs must merge");
        assert_eq!(batch.charges(), charges.len() as u64);
        let mut batched = EnergyMeter::new();
        batched.apply_batch(&batch);
        assert_eq!(
            direct.total().joules().to_bits(),
            batched.total().joules().to_bits(),
            "total must replay bit-identically"
        );
        for (cat, e) in direct.iter() {
            assert_eq!(
                e.joules().to_bits(),
                batched.category(cat).joules().to_bits(),
                "{cat} diverged under batching"
            );
        }
        assert!(
            batched.ops() < direct.ops(),
            "batched application does one op per run"
        );
    }

    #[test]
    fn charge_batch_clear_and_reuse() {
        let mut batch = ChargeBatch::new();
        assert!(batch.is_empty());
        for _ in 0..4 {
            batch.push(EnergyCategory::Tsv, Energy::from_pj(1.0));
        }
        batch.push_repeated(EnergyCategory::Tsv, Energy::from_pj(1.0), 6);
        assert_eq!(batch.runs(), 1, "push_repeated merges into the open run");
        assert_eq!(batch.charges(), 10);
        let mut m = EnergyMeter::new();
        m.apply_batch(&batch);
        assert!((m.category(EnergyCategory::Tsv).picojoules() - 10.0).abs() < 1e-12);
        assert_eq!(m.ops(), 1);
        batch.clear();
        assert!(batch.is_empty());
        // Applying an empty batch is a no-op.
        let before = m.clone();
        m.apply_batch(&batch);
        assert_eq!(m, before);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = EnergyCategory::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), NUM_CATEGORIES);
    }
}
