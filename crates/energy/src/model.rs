//! The energy model: every technology constant used by the simulator.
//!
//! Defaults are the values the SOCC'17 paper states or cites:
//!
//! | Constant | Value | Source in paper |
//! |---|---|---|
//! | wireless transceiver | 2.3 pJ/bit @ 16 Gbps | §IV, TSMC 65 nm OOK design of ref \[6\] |
//! | chip-to-chip serial I/O | 5 pJ/bit @ 15 Gbps | §IV.A, ref \[8\] |
//! | memory wide I/O | 6.5 pJ/bit @ 128 Gbps | §IV.A, ref \[19\] (HBM) |
//! | clock / supply | 2.5 GHz / 1 V | §IV, 65 nm nominal |
//!
//! The remaining constants (switch traversal energy, wire energy per
//! millimetre, leakage) are not printed in the paper — the authors obtained
//! them from Synopsys synthesis and Cadence extraction.  We substitute
//! representative 65 nm NoC literature values (their refs \[6\]\[18\]) and
//! document them here; see `DESIGN.md` §3 for the substitution rationale.

use serde::{Deserialize, Serialize};

use crate::units::{Energy, Frequency, Power};

/// All per-bit / per-mm / per-cycle energy constants for one simulation.
///
/// This is a passive configuration struct: fields are public on purpose so
/// experiments can perturb individual constants (for the sensitivity
/// ablations) without a builder for every knob.
///
/// # Example
///
/// ```
/// use wimnet_energy::EnergyModel;
///
/// let model = EnergyModel::paper_65nm();
/// // The paper's wireless link dissipates 2.3 pJ/bit in total.
/// let e = model.wireless_tx(1) + model.wireless_rx(1);
/// assert!((e.picojoules() - 2.3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// System clock for all digital components (paper: 2.5 GHz).
    pub clock: Frequency,
    /// Supply voltage in volts (paper: 1.0 V; informational, energy
    /// constants below already include it).
    pub supply_voltage: f64,

    // ---- switches (65 nm synthesis substitute) ------------------------
    /// Dynamic energy for one bit to traverse one switch (buffer write,
    /// arbitration, crossbar). Literature value for a 5-port 65 nm
    /// virtual-channel switch.
    pub switch_traversal_pj_per_bit: f64,
    /// Leakage of one switch port's buffers + control.
    /// Total switch leakage = `switch_static_base` + ports × this.
    pub switch_static_per_port: Power,
    /// Port-independent switch leakage (allocators, crossbar drivers).
    pub switch_static_base: Power,

    // ---- wireline links ----------------------------------------------
    /// On-chip global wire energy per bit per millimetre (repeated wire,
    /// 65 nm Cadence extraction substitute).
    pub wire_pj_per_bit_per_mm: f64,
    /// Interposer metal-layer wire energy per bit per millimetre
    /// (slightly above the on-chip value: finer, longer interposer
    /// traces).
    pub interposer_pj_per_bit_per_mm: f64,
    /// Fixed per-bit cost of one interposer crossing: the signal leaves
    /// the die through a µbump, traverses the interposer routing layers
    /// and re-enters the neighbouring die through a second µbump.
    pub interposer_crossing_pj_per_bit: f64,
    /// High-speed serial chip-to-chip I/O (SerDes), paper ref \[8\].
    pub serial_io_pj_per_bit: f64,
    /// Static power of one serial I/O endpoint pair (PLL + RX front end);
    /// ref \[8\] reports 14–75 mW for the full transceiver, dominated by the
    /// active path; we model a small always-on fraction.
    pub serial_io_static: Power,
    /// 128-bit wide memory I/O energy per bit, paper ref \[19\].
    pub wide_io_pj_per_bit: f64,

    // ---- wireless ------------------------------------------------------
    /// Wireless transmitter energy per bit (OOK, 16 Gbps). TX+RX sum to
    /// the paper's 2.3 pJ/bit.
    pub wireless_tx_pj_per_bit: f64,
    /// Wireless receiver energy per bit.
    pub wireless_rx_pj_per_bit: f64,
    /// Power of a receiver that is awake and listening but not decoding
    /// useful data (no sleep gating).
    pub wireless_idle: Power,
    /// Power of a power-gated ("sleepy", paper ref \[17\]) receiver.
    pub wireless_sleep: Power,

    // ---- memory stack ---------------------------------------------------
    /// Through-silicon-via energy per bit per layer crossed.
    pub tsv_pj_per_bit: f64,
    /// DRAM array access energy per bit. The paper ignores it ("same in
    /// all configurations"), so it defaults to zero but stays available
    /// for extensions.
    pub dram_access_pj_per_bit: f64,
}

impl EnergyModel {
    /// The paper's 65 nm / 2.5 GHz / 1 V configuration.
    ///
    /// Constants the paper states are used verbatim; synthesis-derived
    /// constants use documented literature substitutes (see module docs).
    pub fn paper_65nm() -> Self {
        EnergyModel {
            clock: Frequency::from_ghz(2.5),
            supply_voltage: 1.0,
            switch_traversal_pj_per_bit: 0.63,
            switch_static_per_port: Power::from_uw(180.0),
            switch_static_base: Power::from_uw(400.0),
            wire_pj_per_bit_per_mm: 0.20,
            interposer_pj_per_bit_per_mm: 0.26,
            interposer_crossing_pj_per_bit: 2.0,
            serial_io_pj_per_bit: 5.0,
            serial_io_static: Power::from_mw(2.0),
            wide_io_pj_per_bit: 6.5,
            wireless_tx_pj_per_bit: 1.4,
            wireless_rx_pj_per_bit: 0.9,
            wireless_idle: Power::from_mw(1.2),
            wireless_sleep: Power::from_uw(120.0),
            tsv_pj_per_bit: 0.05,
            dram_access_pj_per_bit: 0.0,
        }
    }

    // ---- derived per-event energies -----------------------------------

    /// Dynamic energy for `bits` bits to traverse one switch.
    pub fn switch_traversal(&self, bits: u64) -> Energy {
        Energy::from_pj(self.switch_traversal_pj_per_bit * bits as f64)
    }

    /// Leakage power of one switch with `ports` ports.
    pub fn switch_static(&self, ports: usize) -> Power {
        self.switch_static_base + self.switch_static_per_port * ports as f64
    }

    /// Energy for `bits` bits over `mm` millimetres of on-chip wire.
    pub fn wire(&self, bits: u64, mm: f64) -> Energy {
        Energy::from_pj(self.wire_pj_per_bit_per_mm * bits as f64 * mm)
    }

    /// Energy for `bits` bits over one interposer hop of `mm`
    /// millimetres: two µbump crossings plus the interposer trace.
    pub fn interposer_wire(&self, bits: u64, mm: f64) -> Energy {
        Energy::from_pj(
            (self.interposer_crossing_pj_per_bit
                + self.interposer_pj_per_bit_per_mm * mm)
                * bits as f64,
        )
    }

    /// Energy for `bits` bits through one serial chip-to-chip I/O link.
    pub fn serial_io(&self, bits: u64) -> Energy {
        Energy::from_pj(self.serial_io_pj_per_bit * bits as f64)
    }

    /// Energy for `bits` bits through the 128-bit wide memory I/O.
    pub fn wide_io(&self, bits: u64) -> Energy {
        Energy::from_pj(self.wide_io_pj_per_bit * bits as f64)
    }

    /// Transmitter energy for `bits` bits on the wireless channel.
    pub fn wireless_tx(&self, bits: u64) -> Energy {
        Energy::from_pj(self.wireless_tx_pj_per_bit * bits as f64)
    }

    /// Receiver (decode) energy for `bits` bits on the wireless channel.
    pub fn wireless_rx(&self, bits: u64) -> Energy {
        Energy::from_pj(self.wireless_rx_pj_per_bit * bits as f64)
    }

    /// Energy for `bits` bits crossing `layers` TSV layer boundaries.
    pub fn tsv(&self, bits: u64, layers: u32) -> Energy {
        Energy::from_pj(self.tsv_pj_per_bit * bits as f64 * layers as f64)
    }

    /// DRAM array access energy for `bits` bits.
    pub fn dram_access(&self, bits: u64) -> Energy {
        Energy::from_pj(self.dram_access_pj_per_bit * bits as f64)
    }

    /// Idle (listening) receiver energy over `cycles` clock cycles.
    pub fn wireless_idle_over(&self, cycles: u64) -> Energy {
        self.wireless_idle.energy_over_cycles(cycles, self.clock)
    }

    /// Power-gated receiver energy over `cycles` clock cycles.
    pub fn wireless_sleep_over(&self, cycles: u64) -> Energy {
        self.wireless_sleep.energy_over_cycles(cycles, self.clock)
    }
}

impl Default for EnergyModel {
    /// Defaults to [`EnergyModel::paper_65nm`].
    fn default() -> Self {
        EnergyModel::paper_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_cited_values() {
        let m = EnergyModel::paper_65nm();
        // §IV: transceiver dissipates 2.3 pJ/bit.
        assert!(
            (m.wireless_tx_pj_per_bit + m.wireless_rx_pj_per_bit - 2.3).abs() < 1e-12
        );
        // §IV.A: serial I/O 5 pJ/bit, wide I/O 6.5 pJ/bit.
        assert!((m.serial_io_pj_per_bit - 5.0).abs() < 1e-12);
        assert!((m.wide_io_pj_per_bit - 6.5).abs() < 1e-12);
        // §IV: 2.5 GHz, 1 V.
        assert!((m.clock.gigahertz() - 2.5).abs() < 1e-12);
        assert!((m.supply_voltage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_event_energies_scale_linearly_with_bits() {
        let m = EnergyModel::paper_65nm();
        assert!((m.serial_io(2).picojoules() - 10.0).abs() < 1e-9);
        assert!((m.wide_io(4).picojoules() - 26.0).abs() < 1e-9);
        assert!(
            (m.wireless_tx(100).picojoules() + m.wireless_rx(100).picojoules() - 230.0).abs()
                < 1e-9
        );
        assert!((m.switch_traversal(32).picojoules() - 0.63 * 32.0).abs() < 1e-9);
    }

    #[test]
    fn wire_energy_scales_with_length() {
        let m = EnergyModel::paper_65nm();
        let short = m.wire(32, 2.5);
        let long = m.wire(32, 5.0);
        assert!((long.picojoules() - 2.0 * short.picojoules()).abs() < 1e-9);
        // Interposer wiring costs more than plain on-chip wire.
        assert!(m.interposer_wire(32, 2.5) > m.wire(32, 2.5));
    }

    #[test]
    fn switch_static_grows_with_ports() {
        let m = EnergyModel::paper_65nm();
        let five = m.switch_static(5);
        let six = m.switch_static(6);
        assert!(six > five);
        let delta_uw = (six.watts() - five.watts()) * 1e6;
        assert!((delta_uw - 180.0).abs() < 1e-6);
    }

    #[test]
    fn sleep_power_is_an_order_of_magnitude_below_idle() {
        let m = EnergyModel::paper_65nm();
        assert!(m.wireless_sleep.watts() * 5.0 < m.wireless_idle.watts());
        let idle = m.wireless_idle_over(1000);
        let sleep = m.wireless_sleep_over(1000);
        assert!(sleep < idle);
        assert!(sleep > Energy::ZERO);
    }

    #[test]
    fn tsv_energy_counts_layers() {
        let m = EnergyModel::paper_65nm();
        let one = m.tsv(32, 1);
        let four = m.tsv(32, 4);
        assert!((four.picojoules() - 4.0 * one.picojoules()).abs() < 1e-9);
        // The paper ignores DRAM array energy — default must be zero.
        assert_eq!(m.dram_access(1024), Energy::ZERO);
    }

    #[test]
    fn default_is_paper_preset() {
        assert_eq!(EnergyModel::default(), EnergyModel::paper_65nm());
    }

    #[test]
    fn model_is_serializable() {
        // serde_json is only a dependency of downstream crates; here we
        // just verify the Serialize/Deserialize impls are wired up.
        // `DeserializeOwned` is valid against both the offline serde
        // shim and crates.io serde, keeping the dependency swappable.
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<EnergyModel>();
    }
}
