//! Strongly typed physical quantities.
//!
//! All quantities are stored in SI base units (`f64` joules, watts, hertz)
//! and expose conversion constructors/accessors for the sub-units the NoC
//! literature actually uses (picojoules, nanojoules, milliwatts, gigahertz).
//!
//! The types are deliberately tiny `Copy` newtypes ([C-NEWTYPE]) so they can
//! be passed around the hot simulation loop at zero cost.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An amount of energy, stored in joules.
///
/// # Example
///
/// ```
/// use wimnet_energy::Energy;
///
/// let per_bit = Energy::from_pj(2.3);
/// let packet = per_bit * 2048.0;
/// assert!((packet.nanojoules() - 4.7104).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules.
    pub fn from_joules(j: f64) -> Self {
        Energy(j)
    }

    /// Creates an energy from microjoules.
    pub fn from_uj(uj: f64) -> Self {
        Energy(uj * 1e-6)
    }

    /// Creates an energy from nanojoules.
    pub fn from_nj(nj: f64) -> Self {
        Energy(nj * 1e-9)
    }

    /// Creates an energy from picojoules.
    pub fn from_pj(pj: f64) -> Self {
        Energy(pj * 1e-12)
    }

    /// This energy in joules.
    pub fn joules(self) -> f64 {
        self.0
    }

    /// This energy in microjoules.
    pub fn microjoules(self) -> f64 {
        self.0 * 1e6
    }

    /// This energy in nanojoules.
    pub fn nanojoules(self) -> f64 {
        self.0 * 1e9
    }

    /// This energy in picojoules.
    pub fn picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns `true` if the stored value is finite (not NaN/∞).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Numerically safe maximum of two energies.
    pub fn max(self, other: Energy) -> Energy {
        Energy(self.0.max(other.0))
    }

    /// Numerically safe minimum of two energies.
    pub fn min(self, other: Energy) -> Energy {
        Energy(self.0.min(other.0))
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl SubAssign for Energy {
    fn sub_assign(&mut self, rhs: Energy) {
        self.0 -= rhs.0;
    }
}

impl Neg for Energy {
    type Output = Energy;
    fn neg(self) -> Energy {
        Energy(-self.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Mul<Energy> for f64 {
    type Output = Energy;
    fn mul(self, rhs: Energy) -> Energy {
        Energy(self * rhs.0)
    }
}

impl Div<f64> for Energy {
    type Output = Energy;
    fn div(self, rhs: f64) -> Energy {
        Energy(self.0 / rhs)
    }
}

impl Div<Energy> for Energy {
    /// Ratio of two energies (dimensionless).
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let j = self.0.abs();
        if j >= 1.0 {
            write!(f, "{:.4} J", self.0)
        } else if j >= 1e-3 {
            write!(f, "{:.4} mJ", self.0 * 1e3)
        } else if j >= 1e-6 {
            write!(f, "{:.4} uJ", self.0 * 1e6)
        } else if j >= 1e-9 {
            write!(f, "{:.4} nJ", self.0 * 1e9)
        } else {
            write!(f, "{:.4} pJ", self.0 * 1e12)
        }
    }
}

/// A power, stored in watts.
///
/// Multiplying a [`Power`] by a number of cycles of a [`Frequency`] yields
/// the [`Energy`] dissipated over that interval:
///
/// ```
/// use wimnet_energy::{Power, Frequency};
///
/// let leak = Power::from_mw(1.3);
/// let clk = Frequency::from_ghz(2.5);
/// let e = leak.energy_over_cycles(1000, clk);
/// assert!((e.picojoules() - 520.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from watts.
    pub fn from_watts(w: f64) -> Self {
        Power(w)
    }

    /// Creates a power from milliwatts.
    pub fn from_mw(mw: f64) -> Self {
        Power(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    pub fn from_uw(uw: f64) -> Self {
        Power(uw * 1e-6)
    }

    /// This power in watts.
    pub fn watts(self) -> f64 {
        self.0
    }

    /// This power in milliwatts.
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Energy dissipated by this power over `cycles` periods of `clock`.
    pub fn energy_over_cycles(self, cycles: u64, clock: Frequency) -> Energy {
        Energy::from_joules(self.0 * cycles as f64 / clock.hertz())
    }

    /// Energy dissipated by this power over `seconds`.
    pub fn energy_over_seconds(self, seconds: f64) -> Energy {
        Energy::from_joules(self.0 * seconds)
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.0.abs();
        if w >= 1.0 {
            write!(f, "{:.4} W", self.0)
        } else if w >= 1e-3 {
            write!(f, "{:.4} mW", self.0 * 1e3)
        } else {
            write!(f, "{:.4} uW", self.0 * 1e6)
        }
    }
}

/// A frequency, stored in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a frequency from hertz.
    pub fn from_hz(hz: f64) -> Self {
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Frequency(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Frequency(ghz * 1e9)
    }

    /// This frequency in hertz.
    pub fn hertz(self) -> f64 {
        self.0
    }

    /// This frequency in gigahertz.
    pub fn gigahertz(self) -> f64 {
        self.0 * 1e-9
    }

    /// Duration of one period, in seconds.
    pub fn period_seconds(self) -> f64 {
        1.0 / self.0
    }

    /// Converts a cycle count at this frequency to seconds.
    pub fn cycles_to_seconds(self, cycles: u64) -> f64 {
        cycles as f64 / self.0
    }
}

impl Default for Frequency {
    /// The paper's nominal 2.5 GHz 65 nm clock.
    fn default() -> Self {
        Frequency::from_ghz(2.5)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} GHz", self.0 * 1e-9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.3} MHz", self.0 * 1e-6)
        } else {
            write!(f, "{:.3} Hz", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_unit_round_trips() {
        let e = Energy::from_pj(2.3);
        assert!((e.picojoules() - 2.3).abs() < 1e-12);
        assert!((e.nanojoules() - 0.0023).abs() < 1e-12);
        assert!((e.joules() - 2.3e-12).abs() < 1e-24);

        let e = Energy::from_nj(1500.0);
        assert!((e.microjoules() - 1.5).abs() < 1e-12);
        assert!((Energy::from_uj(1.5).nanojoules() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn energy_arithmetic() {
        let a = Energy::from_pj(10.0);
        let b = Energy::from_pj(5.0);
        assert!(((a + b).picojoules() - 15.0).abs() < 1e-12);
        assert!(((a - b).picojoules() - 5.0).abs() < 1e-12);
        assert!(((a * 3.0).picojoules() - 30.0).abs() < 1e-12);
        assert!(((3.0 * a).picojoules() - 30.0).abs() < 1e-12);
        assert!(((a / 2.0).picojoules() - 5.0).abs() < 1e-12);
        assert!((a / b - 2.0).abs() < 1e-12);
        assert!(((-a).picojoules() + 10.0).abs() < 1e-12);
    }

    #[test]
    fn energy_add_assign_and_sum() {
        let mut e = Energy::ZERO;
        e += Energy::from_pj(1.0);
        e += Energy::from_pj(2.0);
        assert!((e.picojoules() - 3.0).abs() < 1e-12);

        let total: Energy = (0..10).map(|i| Energy::from_pj(i as f64)).sum();
        assert!((total.picojoules() - 45.0).abs() < 1e-12);
    }

    #[test]
    fn energy_ordering_and_min_max() {
        let a = Energy::from_pj(1.0);
        let b = Energy::from_pj(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn energy_display_picks_sensible_units() {
        assert_eq!(format!("{}", Energy::from_pj(2.3)), "2.3000 pJ");
        assert_eq!(format!("{}", Energy::from_nj(1400.0)), "1.4000 uJ");
        assert_eq!(format!("{}", Energy::from_nj(12.0)), "12.0000 nJ");
        assert_eq!(format!("{}", Energy::from_joules(0.5)), "500.0000 mJ");
        assert_eq!(format!("{}", Energy::from_joules(1.5)), "1.5000 J");
    }

    #[test]
    fn power_to_energy_over_cycles() {
        // 1 W for 2.5e9 cycles at 2.5 GHz is exactly one second: 1 J.
        let p = Power::from_watts(1.0);
        let clk = Frequency::from_ghz(2.5);
        let e = p.energy_over_cycles(2_500_000_000, clk);
        assert!((e.joules() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn power_display_and_arithmetic() {
        let p = Power::from_mw(1.5) + Power::from_mw(0.5);
        assert!((p.milliwatts() - 2.0).abs() < 1e-12);
        assert_eq!(format!("{}", Power::from_mw(2.0)), "2.0000 mW");
        assert_eq!(format!("{}", Power::from_uw(17.0)), "17.0000 uW");
        let total: Power = (0..4).map(|_| Power::from_mw(1.0)).sum();
        assert!((total.milliwatts() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_defaults_to_paper_clock() {
        let f = Frequency::default();
        assert!((f.gigahertz() - 2.5).abs() < 1e-12);
        assert!((f.period_seconds() - 0.4e-9).abs() < 1e-21);
        assert!((f.cycles_to_seconds(10_000) - 4e-6).abs() < 1e-15);
        assert_eq!(format!("{f}"), "2.500 GHz");
    }
}
