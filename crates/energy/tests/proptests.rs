//! Property-based tests for energy arithmetic and accounting.

use proptest::prelude::*;

use wimnet_energy::{Energy, EnergyCategory, EnergyMeter, EnergyModel, Frequency, Power};

fn finite_pj() -> impl Strategy<Value = f64> {
    0.0f64..1.0e9
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Energy addition is commutative and associative within float
    /// tolerance, and subtraction inverts addition.
    #[test]
    fn energy_field_axioms(a in finite_pj(), b in finite_pj(), c in finite_pj()) {
        let (ea, eb, ec) = (Energy::from_pj(a), Energy::from_pj(b), Energy::from_pj(c));
        prop_assert!(((ea + eb) - (eb + ea)).joules().abs() < 1e-18);
        let lhs = (ea + eb) + ec;
        let rhs = ea + (eb + ec);
        prop_assert!((lhs - rhs).joules().abs() <= lhs.joules().abs() * 1e-12 + 1e-18);
        prop_assert!(((ea + eb) - eb - ea).joules().abs() <= ea.joules() * 1e-9 + 1e-18);
    }

    /// Unit conversions round-trip.
    #[test]
    fn unit_round_trips(pj in finite_pj()) {
        let e = Energy::from_pj(pj);
        prop_assert!((Energy::from_nj(e.nanojoules()) - e).joules().abs() < 1e-18);
        prop_assert!((Energy::from_uj(e.microjoules()) - e).joules().abs() < 1e-15);
        prop_assert!((e.picojoules() - pj).abs() < pj.abs() * 1e-12 + 1e-12);
    }

    /// Power × time is linear in both arguments.
    #[test]
    fn power_energy_linearity(mw in 0.0f64..1e4, cycles in 0u64..1_000_000) {
        let p = Power::from_mw(mw);
        let clk = Frequency::from_ghz(2.5);
        let one = p.energy_over_cycles(cycles, clk);
        let two = p.energy_over_cycles(2 * cycles, clk);
        prop_assert!((two.joules() - 2.0 * one.joules()).abs() <= one.joules() * 1e-9 + 1e-18);
        let double_p = Power::from_mw(2.0 * mw);
        let scaled = double_p.energy_over_cycles(cycles, clk);
        prop_assert!((scaled.joules() - 2.0 * one.joules()).abs() <= one.joules() * 1e-9 + 1e-18);
    }

    /// The meter's per-category breakdown always sums to its total,
    /// regardless of the add/merge sequence.
    #[test]
    fn meter_conservation_under_random_sequences(
        adds in prop::collection::vec((0usize..14, finite_pj()), 0..200),
        split in 0usize..200,
    ) {
        let cat = |i: usize| EnergyCategory::ALL[i % EnergyCategory::ALL.len()];
        let mut a = EnergyMeter::new();
        let mut b = EnergyMeter::new();
        for (i, &(c, pj)) in adds.iter().enumerate() {
            let m = if i < split { &mut a } else { &mut b };
            m.add(cat(c), Energy::from_pj(pj));
        }
        a.merge(&b);
        prop_assert!(a.verify_conservation(1e-9));
        let manual: f64 = a.iter().map(|(_, e)| e.joules()).sum();
        prop_assert!((manual - a.total().joules()).abs()
            <= a.total().joules() * 1e-9 + 1e-15);
    }

    /// Model energies are non-negative, monotone in bits, and linear.
    #[test]
    fn model_energies_scale(bits in 1u64..100_000, mm in 0.0f64..100.0) {
        let m = EnergyModel::paper_65nm();
        let fns: Vec<Box<dyn Fn(u64) -> Energy>> = vec![
            Box::new(|b| m.switch_traversal(b)),
            Box::new(|b| m.serial_io(b)),
            Box::new(|b| m.wide_io(b)),
            Box::new(|b| m.wireless_tx(b)),
            Box::new(|b| m.wireless_rx(b)),
            Box::new(|b| m.wire(b, mm)),
            Box::new(|b| m.interposer_wire(b, mm)),
        ];
        for f in &fns {
            let one = f(bits);
            let two = f(2 * bits);
            prop_assert!(one >= Energy::ZERO);
            prop_assert!(
                (two.joules() - 2.0 * one.joules()).abs()
                    <= one.joules().abs() * 1e-9 + 1e-18
            );
        }
    }
}
