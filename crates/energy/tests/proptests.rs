//! Property-based tests for energy arithmetic and accounting.

use proptest::prelude::*;

use wimnet_energy::{Energy, EnergyCategory, EnergyMeter, EnergyModel, Frequency, Power};

fn finite_pj() -> impl Strategy<Value = f64> {
    0.0f64..1.0e9
}

/// Adversarial finite positive f64 assembled bit-by-bit: any fraction
/// pattern (all-ones mantissas are the float-drift worst case) crossed
/// with exponents from deep subnormal to ~10³⁰ J.
fn adversarial(frac: u64, exp: u64) -> f64 {
    f64::from_bits(((exp % 1124) << 52) | (frac & ((1 << 52) - 1)))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Energy addition is commutative and associative within float
    /// tolerance, and subtraction inverts addition.
    #[test]
    fn energy_field_axioms(a in finite_pj(), b in finite_pj(), c in finite_pj()) {
        let (ea, eb, ec) = (Energy::from_pj(a), Energy::from_pj(b), Energy::from_pj(c));
        prop_assert!(((ea + eb) - (eb + ea)).joules().abs() < 1e-18);
        let lhs = (ea + eb) + ec;
        let rhs = ea + (eb + ec);
        prop_assert!((lhs - rhs).joules().abs() <= lhs.joules().abs() * 1e-12 + 1e-18);
        prop_assert!(((ea + eb) - eb - ea).joules().abs() <= ea.joules() * 1e-9 + 1e-18);
    }

    /// Unit conversions round-trip.
    #[test]
    fn unit_round_trips(pj in finite_pj()) {
        let e = Energy::from_pj(pj);
        prop_assert!((Energy::from_nj(e.nanojoules()) - e).joules().abs() < 1e-18);
        prop_assert!((Energy::from_uj(e.microjoules()) - e).joules().abs() < 1e-15);
        prop_assert!((e.picojoules() - pj).abs() < pj.abs() * 1e-12 + 1e-12);
    }

    /// Power × time is linear in both arguments.
    #[test]
    fn power_energy_linearity(mw in 0.0f64..1e4, cycles in 0u64..1_000_000) {
        let p = Power::from_mw(mw);
        let clk = Frequency::from_ghz(2.5);
        let one = p.energy_over_cycles(cycles, clk);
        let two = p.energy_over_cycles(2 * cycles, clk);
        prop_assert!((two.joules() - 2.0 * one.joules()).abs() <= one.joules() * 1e-9 + 1e-18);
        let double_p = Power::from_mw(2.0 * mw);
        let scaled = double_p.energy_over_cycles(cycles, clk);
        prop_assert!((scaled.joules() - 2.0 * one.joules()).abs() <= one.joules() * 1e-9 + 1e-18);
    }

    /// The meter's per-category breakdown always sums to its total,
    /// regardless of the add/merge sequence.
    #[test]
    fn meter_conservation_under_random_sequences(
        adds in prop::collection::vec((0usize..14, finite_pj()), 0..200),
        split in 0usize..200,
    ) {
        let cat = |i: usize| EnergyCategory::ALL[i % EnergyCategory::ALL.len()];
        let mut a = EnergyMeter::new();
        let mut b = EnergyMeter::new();
        for (i, &(c, pj)) in adds.iter().enumerate() {
            let m = if i < split { &mut a } else { &mut b };
            m.add(cat(c), Energy::from_pj(pj));
        }
        a.merge(&b);
        prop_assert!(a.verify_conservation(1e-9));
        let manual: f64 = a.iter().map(|(_, e)| e.joules()).sum();
        prop_assert!((manual - a.total().joules()).abs()
            <= a.total().joules() * 1e-9 + 1e-15);
    }

    /// `add_repeated(c, x, k)` equals k individual adds — *exactly*,
    /// for adversarial mantissas and exponents: the accumulator is an
    /// exact integer sum, so the multiply-add is the real sum by
    /// construction, and read-outs match bit for bit.
    #[test]
    fn add_repeated_equals_the_exact_sum_of_k_adds(
        x in (0u64..(1 << 52), 0u64..1124),
        k in 0u64..4_096,
        interleave in (0u64..(1 << 52), 0u64..1124),
    ) {
        let e = Energy::from_joules(adversarial(x.0, x.1));
        let other = Energy::from_joules(adversarial(interleave.0, interleave.1));
        let mut looped = EnergyMeter::new();
        looped.add(EnergyCategory::WirelessControl, other);
        for _ in 0..k {
            looped.add(EnergyCategory::WirelessIdle, e);
        }
        let mut batched = EnergyMeter::new();
        batched.add_repeated(EnergyCategory::WirelessIdle, e, k);
        batched.add(EnergyCategory::WirelessControl, other);
        prop_assert_eq!(&looped, &batched);
        prop_assert_eq!(
            looped.total().joules().to_bits(),
            batched.total().joules().to_bits()
        );
        prop_assert_eq!(
            looped.category(EnergyCategory::WirelessIdle).joules().to_bits(),
            batched.category(EnergyCategory::WirelessIdle).joules().to_bits()
        );
        if k > 0 {
            prop_assert!(batched.ops() < 3);
        }
    }

    /// Accumulation order is irrelevant: forward, reversed and split/
    /// merged charge sequences land on bit-identical meters.
    #[test]
    fn meter_is_order_independent(
        adds in prop::collection::vec((0usize..15, 0u64..(1 << 52), 0u64..1124), 0..64),
        split in 0usize..64,
    ) {
        let cat = |i: usize| EnergyCategory::ALL[i % EnergyCategory::ALL.len()];
        let mut fwd = EnergyMeter::new();
        for &(c, f, x) in &adds {
            fwd.add(cat(c), Energy::from_joules(adversarial(f, x)));
        }
        let mut rev = EnergyMeter::new();
        for &(c, f, x) in adds.iter().rev() {
            rev.add(cat(c), Energy::from_joules(adversarial(f, x)));
        }
        let mut a = EnergyMeter::new();
        let mut b = EnergyMeter::new();
        for (i, &(c, f, x)) in adds.iter().enumerate() {
            let m = if i < split { &mut a } else { &mut b };
            m.add(cat(c), Energy::from_joules(adversarial(f, x)));
        }
        a.merge(&b);
        prop_assert_eq!(&fwd, &rev);
        prop_assert_eq!(&fwd, &a);
        prop_assert_eq!(fwd.total().joules().to_bits(), rev.total().joules().to_bits());
        prop_assert_eq!(fwd.total().joules().to_bits(), a.total().joules().to_bits());
    }

    /// Meter read-out is correctly rounded (round-to-nearest-even).
    /// Oracle: charges are dyadic rationals m × 2⁻⁵⁰⁰, so the exact sum
    /// fits a u128 and Rust's u128 → f64 conversion (itself
    /// round-to-nearest-even) scaled by the exact power 2⁻⁵⁰⁰ is the
    /// correctly rounded real sum.
    #[test]
    fn read_out_is_correctly_rounded(
        terms in prop::collection::vec((1u64..(1 << 53), 1u64..(1 << 40)), 1..16),
    ) {
        let scale = 2.0f64.powi(-500);
        let mut m = EnergyMeter::new();
        let mut exact: u128 = 0;
        for &(mant, k) in &terms {
            m.add_repeated(EnergyCategory::SerialIo, Energy::from_joules(mant as f64 * scale), k);
            exact += u128::from(mant) * u128::from(k);
        }
        let expected = (exact as f64) * scale;
        prop_assert_eq!(
            m.category(EnergyCategory::SerialIo).joules().to_bits(),
            expected.to_bits()
        );
        prop_assert_eq!(m.total().joules().to_bits(), expected.to_bits());
    }

    /// Model energies are non-negative, monotone in bits, and linear.
    #[test]
    fn model_energies_scale(bits in 1u64..100_000, mm in 0.0f64..100.0) {
        let m = EnergyModel::paper_65nm();
        let fns: Vec<Box<dyn Fn(u64) -> Energy>> = vec![
            Box::new(|b| m.switch_traversal(b)),
            Box::new(|b| m.serial_io(b)),
            Box::new(|b| m.wide_io(b)),
            Box::new(|b| m.wireless_tx(b)),
            Box::new(|b| m.wireless_rx(b)),
            Box::new(|b| m.wire(b, mm)),
            Box::new(|b| m.interposer_wire(b, mm)),
        ];
        for f in &fns {
            let one = f(bits);
            let two = f(2 * bits);
            prop_assert!(one >= Energy::ZERO);
            prop_assert!(
                (two.joules() - 2.0 * one.joules()).abs()
                    <= one.joules().abs() * 1e-9 + 1e-18
            );
        }
    }
}
