//! Physical address interleaving across stacks, channels and banks.
//!
//! Addresses are block-interleaved: consecutive cache blocks rotate over
//! stacks first (spreading load over the package), then over the four
//! channels inside each stack, then over banks — the standard layout for
//! in-package DRAM where channel-level parallelism is the scarce
//! resource.

use serde::{Deserialize, Serialize};

/// Decoded location of a physical address inside the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Memory stack index.
    pub stack: usize,
    /// Channel within the stack.
    pub channel: usize,
    /// Bank within the channel.
    pub bank: usize,
    /// DRAM row within the bank.
    pub row: u64,
    /// DRAM layer holding the row (for TSV accounting).
    pub layer: u32,
}

/// Block-interleaved address map.
///
/// Interleave order, from the least significant block bits upward:
/// **stack → channel → column-in-row → bank → row**.  Consecutive blocks
/// spread over stacks and channels (bandwidth), while a stream on one
/// channel walks columns of the *same* open row before touching the next
/// bank (row-buffer locality).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMap {
    stacks: usize,
    channels: usize,
    banks: usize,
    layers: u32,
    block_bytes: u64,
    row_bytes: u64,
    rows_per_bank: u64,
}

impl AddressMap {
    /// Creates a map over `stacks` stacks of `channels` channels ×
    /// `banks` banks × `layers` layers with `block_bytes` interleaving
    /// granularity and `row_bytes` DRAM rows.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, sizes are not powers of two, or
    /// a row does not hold at least one block.
    pub fn new(
        stacks: usize,
        channels: usize,
        banks: usize,
        layers: u32,
        block_bytes: u64,
        row_bytes: u64,
        rows_per_bank: u64,
    ) -> Self {
        assert!(stacks > 0 && channels > 0 && banks > 0 && layers > 0);
        assert!(rows_per_bank > 0);
        assert!(
            block_bytes.is_power_of_two() && row_bytes.is_power_of_two(),
            "block and row sizes must be powers of two"
        );
        assert!(row_bytes >= block_bytes, "a row holds at least one block");
        AddressMap {
            stacks,
            channels,
            banks,
            layers,
            block_bytes,
            row_bytes,
            rows_per_bank,
        }
    }

    /// The paper's system: `stacks` stacks × 4 channels × 8 banks × 4
    /// layers, 64-byte blocks in 2 KiB rows.
    pub fn paper(stacks: usize) -> Self {
        AddressMap::new(stacks, 4, 8, 4, 64, 2_048, 16_384)
    }

    /// Number of stacks covered.
    pub fn stacks(&self) -> usize {
        self.stacks
    }

    /// Blocks per DRAM row.
    pub fn blocks_per_row(&self) -> u64 {
        self.row_bytes / self.block_bytes
    }

    /// Decodes a physical byte address.
    pub fn decode(&self, addr: u64) -> Location {
        let block = addr / self.block_bytes;
        let stack = (block % self.stacks as u64) as usize;
        let block = block / self.stacks as u64;
        let channel = (block % self.channels as u64) as usize;
        let block = block / self.channels as u64;
        let block = block / self.blocks_per_row(); // column within the row
        let bank = (block % self.banks as u64) as usize;
        let block = block / self.banks as u64;
        let row = block % self.rows_per_bank;
        // Rows are striped across layers so adjacent rows sit on
        // different dies (thermal spreading).
        let layer = (row % u64::from(self.layers)) as u32;
        Location { stack, channel, bank, row, layer }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_blocks_rotate_over_stacks_first() {
        let m = AddressMap::paper(4);
        let a = m.decode(0);
        let b = m.decode(64);
        let c = m.decode(128);
        assert_eq!(a.stack, 0);
        assert_eq!(b.stack, 1);
        assert_eq!(c.stack, 2);
        // Same channel until the stack wheel wraps.
        assert_eq!(a.channel, b.channel);
    }

    #[test]
    fn channel_rotates_after_stack_wrap() {
        let m = AddressMap::paper(4);
        let wrapped = m.decode(4 * 64);
        assert_eq!(wrapped.stack, 0);
        assert_eq!(wrapped.channel, 1);
    }

    #[test]
    fn same_block_same_location() {
        let m = AddressMap::paper(2);
        assert_eq!(m.decode(100), m.decode(101));
        assert_ne!(m.decode(0), m.decode(64));
    }

    #[test]
    fn all_fields_stay_in_range() {
        let m = AddressMap::paper(4);
        for i in 0..10_000u64 {
            let loc = m.decode(i * 64 + 17);
            assert!(loc.stack < 4);
            assert!(loc.channel < 4);
            assert!(loc.bank < 8);
            assert!(loc.row < 16_384);
            assert!(loc.layer < 4);
        }
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_block_panics() {
        AddressMap::new(1, 1, 1, 1, 48, 2048, 16);
    }
}
