//! Cycle-accurate per-stack memory controllers: bounded request
//! queues, per-bank state machines and an FR-FCFS scheduler.
//!
//! The closed-form [`crate::stack::MemoryStack`] serves one access per
//! channel behind a single `busy_until` scalar — adequate for isolated
//! requests, blind to everything a real controller does under load:
//! queueing, bank-level parallelism, and row-buffer-aware scheduling.
//! [`MemoryController`] models those explicitly:
//!
//! * each channel owns a **bounded request queue**
//!   ([`ControllerConfig::queue_capacity`]); admission fails when the
//!   queue is full, giving the system driver real backpressure;
//! * each bank is a small **state machine**
//!   (idle / precharging / activating / row-open, see [`BankState`]),
//!   with page-empty distinguished from page-miss — a cold bank pays
//!   activate + CAS only;
//! * a scheduler picks the next request per channel per cycle:
//!   **FR-FCFS** (row hits first, then oldest; the default) or plain
//!   **FCFS** ([`SchedulerPolicy`]);
//! * reads and writes carry their distinct CAS latencies and array
//!   energies from [`StackConfig`].
//!
//! # Timing model
//!
//! An issue at cycle `t` walks the bank through its row transition
//! (`opening_cycles`), then occupies the channel's shared data path for
//! CAS + burst (the **bus chain**: `cas_start = max(row_ready,
//! bus_free)`), completing at `cas_start + cas + burst + tsv_latency`.
//! Banks overlap their precharge/activate phases freely; only the data
//! path serialises.  With a single outstanding request the sum reduces
//! exactly to the closed-form model's `service_cycles` — the
//! equivalence proven in `tests/controller_equivalence.rs`.
//!
//! # Fast-forward contract
//!
//! The controller participates in the engine's universal idle
//! fast-forward (`docs/fast_forward.md`, `docs/memory.md`):
//!
//! * [`MemoryController::next_event_at`] names the earliest cycle at
//!   which a step can complete or issue anything — **exact**, because
//!   completion times are fixed at issue and the earliest possible
//!   issue is bounded by bank-ready times;
//! * [`MemoryController::is_quiescent`] is `true` when no request is
//!   queued or in flight;
//! * [`MemoryController::idle_advance`]`(first, k)` replays `k` skipped
//!   [`MemoryController::step`]s in closed form.  Skipped steps accrue
//!   the occupancy statistics (queue depth and bank-busy integrals) —
//!   u64 sums over piecewise-constant state, so bit-exact — plus the
//!   constant per-cycle DRAM background energy, emitted as one
//!   repeated charge ([`wimnet_energy::ChargeBatch::push_repeated`])
//!   that the meter's exact accumulator lands bit-identically to `k`
//!   per-cycle adds — the `idle_step(k) ≡ k×step` obligation, proven
//!   by proptest replay in `tests/controller_equivalence.rs`.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use wimnet_energy::{ChargeBatch, Energy, EnergyCategory};

use crate::address::{AddressMap, Location};
use crate::stack::{AccessKind, PageOutcome, StackConfig};

/// Which request the per-channel scheduler issues next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// First-ready, first-come-first-served: among requests whose bank
    /// is ready, row hits win, ties broken by age — the standard
    /// row-buffer-locality-exploiting policy.
    FrFcfs,
    /// Strict arrival order: the queue head waits for its bank even
    /// while younger requests could issue (head-of-line blocking).
    Fcfs,
}

/// Controller parameters (timings live in [`StackConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Bounded request-queue depth per channel, in requests.
    pub queue_capacity: usize,
    /// Scheduling policy.
    pub scheduler: SchedulerPolicy,
}

impl ControllerConfig {
    /// The default controller: 16-deep per-channel queues under
    /// FR-FCFS.
    pub fn paper() -> Self {
        ControllerConfig { queue_capacity: 16, scheduler: SchedulerPolicy::FrFcfs }
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig::paper()
    }
}

/// One request offered to a controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Physical byte address (must decode to this controller's stack).
    pub addr: u64,
    /// Transfer size in bytes.
    pub bytes: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Opaque caller tag, returned on the [`Completion`] (the engine
    /// stores the requesting node here).
    pub tag: u64,
}

/// A finished request, popped from [`MemoryController::step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The caller's tag from the [`MemRequest`].
    pub tag: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Cycle at which the data is ready at the base logic die.
    pub at: u64,
    /// How the access found the row buffer.
    pub outcome: PageOutcome,
    /// Energy spent inside the stack (array + TSVs).
    pub energy: Energy,
    /// Where the access landed.
    pub location: Location,
}

/// Externally observable bank state at a given cycle (the per-bank
/// state machine: idle / precharging / activating / row-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// No row open, nothing in progress.
    Idle,
    /// Closing the previously open row (page-miss prefix).
    Precharging,
    /// Opening the addressed row.
    Activating,
    /// A row is open (possibly bursting data).
    RowOpen,
}

/// Per-bank service state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Bank {
    /// The open row, if any (set at issue: by the time the access
    /// completes the row is open).
    open_row: Option<u64>,
    /// The bank is occupied by an in-flight access until this cycle.
    ready_at: u64,
    /// End of the precharge phase of the current access (page miss
    /// only; equals the issue cycle otherwise).
    precharge_until: u64,
    /// End of the activate phase of the current access (equals the
    /// issue cycle on a row hit).
    activate_until: u64,
}

impl Bank {
    fn new() -> Self {
        Bank { open_row: None, ready_at: 0, precharge_until: 0, activate_until: 0 }
    }

    /// The state-machine phase at cycle `t`.
    fn state(&self, t: u64) -> BankState {
        if t < self.precharge_until {
            BankState::Precharging
        } else if t < self.activate_until {
            BankState::Activating
        } else if self.open_row.is_some() {
            BankState::RowOpen
        } else {
            BankState::Idle
        }
    }
}

/// A queued request, decoded once at admission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Queued {
    req: MemRequest,
    loc: Location,
    /// Admission order within the controller (scheduler age ties and
    /// deterministic completion ordering).
    seq: u64,
}

/// A request in service; its completion time was fixed at issue.
/// Entries sit in issue order (at most one issue per channel per
/// cycle), which is the completion tie-break order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct InFlight {
    complete_at: u64,
    tag: u64,
    kind: AccessKind,
    outcome: PageOutcome,
    energy: Energy,
    loc: Location,
}

/// One channel: bounded queue, banks, shared data path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Channel {
    queue: VecDeque<Queued>,
    banks: Vec<Bank>,
    /// The shared CAS/burst data path is occupied until this cycle.
    bus_free_at: u64,
    /// In service, completion times fixed; small (≤ banks entries).
    inflight: Vec<InFlight>,
}

/// Raw statistic accumulators (all integer, so closed-form idle
/// replay is bit-exact).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
struct Counters {
    accesses: u64,
    reads: u64,
    writes: u64,
    page_hits: u64,
    page_empties: u64,
    page_misses: u64,
    admit_stall_cycles: u64,
    max_queue_depth: usize,
    /// Σ over stepped cycles of total queued requests.
    queued_cycle_sum: u64,
    /// Σ over stepped cycles of busy banks (any channel).
    busy_bank_cycle_sum: u64,
    /// Cycles with ≥ 1 busy bank.
    active_cycles: u64,
    /// Cycles accounted (stepped + idle-advanced).
    stepped_cycles: u64,
}

/// Per-stack controller statistics snapshot, surfaced through
/// `RunOutcome` (averages are over every accounted cycle since
/// construction, warmup included).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryStackStats {
    /// The stack index.
    pub stack: usize,
    /// Requests issued to banks.
    pub accesses: u64,
    /// Read requests issued.
    pub reads: u64,
    /// Write requests issued.
    pub writes: u64,
    /// Accesses that hit the open row.
    pub page_hits: u64,
    /// Accesses into a bank with no open row (activate only).
    pub page_empties: u64,
    /// Accesses that had to precharge a conflicting row.
    pub page_misses: u64,
    /// Admission attempts bounced off a full channel queue.  The
    /// engine re-offers a blocked request every cycle, so this counts
    /// *request-stall cycles* (how long backpressure held the door),
    /// not distinct rejected requests.
    pub admit_stall_cycles: u64,
    /// Deepest any channel queue got.
    pub max_queue_depth: usize,
    /// Mean queued requests per cycle (all channels summed).
    pub avg_queue_depth: f64,
    /// Mean busy banks over cycles with at least one busy bank — the
    /// bank-level-parallelism figure.
    pub avg_bank_parallelism: f64,
    /// Fraction of cycles with at least one bank busy.
    pub busy_fraction: f64,
}

impl MemoryStackStats {
    /// Fraction of accesses that hit the open row.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.page_hits as f64 / self.accesses as f64
        }
    }
}

/// Checkpointed dynamic state of a [`MemoryController`]: queues, bank
/// state machines, in-flight completions and statistic accumulators.
/// The configurations and the background-energy quantum are rebuilt by
/// the constructor path and deliberately excluded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryControllerState {
    channels: Vec<Channel>,
    next_seq: u64,
    counters: Counters,
}

/// The cycle-accurate queued controller of one memory stack.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryController {
    cfg: StackConfig,
    ctrl: ControllerConfig,
    stack_index: usize,
    channels: Vec<Channel>,
    next_seq: u64,
    counters: Counters,
    /// Constant background energy per cycle (refresh/standby draw of
    /// the whole stack), precomputed by the system driver from
    /// [`StackConfig::background_power`] and its clock.  The stepped
    /// path charges it once per [`MemoryController::step`]; the
    /// fast-forwarded path batches it in
    /// [`MemoryController::idle_advance`].
    background_energy: Energy,
}

impl MemoryController {
    /// Creates the controller for stack `stack_index`.
    ///
    /// # Panics
    ///
    /// Panics if `ctrl.queue_capacity` is zero.
    pub fn new(stack_index: usize, cfg: StackConfig, ctrl: ControllerConfig) -> Self {
        assert!(ctrl.queue_capacity > 0, "queue capacity must be positive");
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                queue: VecDeque::with_capacity(ctrl.queue_capacity),
                banks: (0..cfg.banks).map(|_| Bank::new()).collect(),
                bus_free_at: 0,
                inflight: Vec::with_capacity(cfg.banks),
            })
            .collect();
        MemoryController {
            cfg,
            ctrl,
            stack_index,
            channels,
            next_seq: 0,
            counters: Counters::default(),
            background_energy: Energy::ZERO,
        }
    }

    /// Sets the constant background energy charged per accounted cycle
    /// (`DramBackground`).  The driver derives it once from
    /// [`StackConfig::background_power`] at the system clock so the
    /// stepped and fast-forwarded paths charge the bit-identical
    /// quantum.
    pub fn set_background_energy(&mut self, per_cycle: Energy) {
        self.background_energy = per_cycle;
    }

    /// The background energy charged per accounted cycle.
    pub fn background_energy(&self) -> Energy {
        self.background_energy
    }

    /// The stack's index in the package.
    pub fn stack_index(&self) -> usize {
        self.stack_index
    }

    /// The timing configuration.
    pub fn config(&self) -> &StackConfig {
        &self.cfg
    }

    /// The controller configuration.
    pub fn controller_config(&self) -> &ControllerConfig {
        &self.ctrl
    }

    /// Offers `req` to its channel's queue.  Returns the request back
    /// when the queue is full (the caller keeps it staged and retries;
    /// the rejection is counted).
    ///
    /// # Panics
    ///
    /// Panics if `map` decodes the address to a different stack.
    pub fn enqueue(&mut self, req: MemRequest, map: &AddressMap) -> Result<(), MemRequest> {
        let loc = map.decode(req.addr);
        assert_eq!(
            loc.stack, self.stack_index,
            "request for stack {} routed to controller {}",
            loc.stack, self.stack_index
        );
        let ch = &mut self.channels[loc.channel];
        if ch.queue.len() >= self.ctrl.queue_capacity {
            self.counters.admit_stall_cycles += 1;
            return Err(req);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        ch.queue.push_back(Queued { req, loc, seq });
        self.counters.max_queue_depth = self.counters.max_queue_depth.max(ch.queue.len());
        Ok(())
    }

    /// `true` when `req`'s channel queue has room.
    ///
    /// # Panics
    ///
    /// Panics if `map` decodes the address to a different stack (the
    /// same routing contract as [`MemoryController::enqueue`] — the
    /// check must not silently answer for the wrong controller).
    pub fn has_room(&self, req: &MemRequest, map: &AddressMap) -> bool {
        let loc = map.decode(req.addr);
        assert_eq!(
            loc.stack, self.stack_index,
            "request for stack {} routed to controller {}",
            loc.stack, self.stack_index
        );
        self.channels[loc.channel].queue.len() < self.ctrl.queue_capacity
    }

    /// One controller cycle at time `now`: pop due completions (into
    /// `out`, appended in deterministic `(channel, complete_at, seq)`
    /// order), issue at most one request per channel, accrue occupancy
    /// statistics.  Callers step with strictly increasing `now`, except
    /// across gaps sanctioned by [`MemoryController::next_event_at`]
    /// and replayed with [`MemoryController::idle_advance`].
    pub fn step(&mut self, now: u64, out: &mut Vec<Completion>) {
        let mut busy_banks = 0u64;
        let mut queued = 0u64;
        for ch in &mut self.channels {
            // Completions due this cycle, pushed straight into `out`
            // (no per-cycle allocation) and ordered by completion
            // cycle; the stable sort breaks the rare tie (possible
            // only with a non-zero TSV layer latency) by issue order,
            // which is itself deterministic.
            if !ch.inflight.is_empty() {
                let start = out.len();
                ch.inflight.retain(|f| {
                    if f.complete_at <= now {
                        out.push(Completion {
                            tag: f.tag,
                            kind: f.kind,
                            at: f.complete_at,
                            outcome: f.outcome,
                            energy: f.energy,
                            location: f.loc,
                        });
                        false
                    } else {
                        true
                    }
                });
                out[start..].sort_by_key(|c| c.at);
            }
            // Issue at most one request.
            if let Some(idx) = pick(&ch.queue, &ch.banks, self.ctrl.scheduler, now) {
                let q = ch.queue.remove(idx).expect("picked index is in the queue");
                let bank = &mut ch.banks[q.loc.bank];
                let outcome = match bank.open_row {
                    Some(row) if row == q.loc.row => PageOutcome::Hit,
                    Some(_) => PageOutcome::Miss,
                    None => PageOutcome::Empty,
                };
                let precharge_until = now
                    + if outcome == PageOutcome::Miss { self.cfg.precharge_cycles } else { 0 };
                let row_ready = now + self.cfg.opening_cycles(outcome);
                let cas_start = row_ready.max(ch.bus_free_at);
                let data_done =
                    cas_start + self.cfg.cas_cycles(q.req.kind) + self.cfg.burst_cycles;
                let complete_at = data_done + self.cfg.tsv.latency(q.loc.layer);
                ch.bus_free_at = data_done;
                bank.open_row = Some(q.loc.row);
                bank.ready_at = complete_at;
                bank.precharge_until = precharge_until;
                bank.activate_until = row_ready;
                let bits = u64::from(q.req.bytes) * 8;
                ch.inflight.push(InFlight {
                    complete_at,
                    tag: q.req.tag,
                    kind: q.req.kind,
                    outcome,
                    energy: self.cfg.access_energy(bits, q.req.kind, q.loc.layer),
                    loc: q.loc,
                });
                self.counters.accesses += 1;
                match q.req.kind {
                    AccessKind::Read => self.counters.reads += 1,
                    AccessKind::Write => self.counters.writes += 1,
                }
                match outcome {
                    PageOutcome::Hit => self.counters.page_hits += 1,
                    PageOutcome::Empty => self.counters.page_empties += 1,
                    PageOutcome::Miss => self.counters.page_misses += 1,
                }
            }
            // Occupancy after this cycle's activity: an access issued at
            // `now` occupies its bank this cycle.
            queued += ch.queue.len() as u64;
            busy_banks += ch.banks.iter().filter(|b| b.ready_at > now).count() as u64;
        }
        self.counters.queued_cycle_sum += queued;
        self.counters.busy_bank_cycle_sum += busy_banks;
        self.counters.active_cycles += u64::from(busy_banks > 0);
        self.counters.stepped_cycles += 1;
    }

    /// `true` when nothing is queued or in flight — the controller's
    /// quiescence gate in the fast-forward contract.  Bank timers may
    /// still run out their tail (e.g. a just-completed burst); those
    /// affect only the occupancy integrals, which
    /// [`MemoryController::idle_advance`] replays exactly.
    pub fn is_quiescent(&self) -> bool {
        self.channels
            .iter()
            .all(|ch| ch.queue.is_empty() && ch.inflight.is_empty())
    }

    /// The earliest cycle strictly after `now` (the last stepped cycle)
    /// at which [`MemoryController::step`] can complete or issue
    /// anything, or `u64::MAX` when the controller is quiescent.
    ///
    /// Exact for completions (times fixed at issue) and sound for
    /// issues: a request can issue no earlier than its bank's
    /// `ready_at` (under FCFS, no earlier than the *head's* bank), and
    /// nothing else unblocks a queue without an external enqueue —
    /// which the engine only performs while the network is busy, i.e.
    /// never inside a sanctioned skip.
    pub fn next_event_at(&self, now: u64) -> u64 {
        let floor = now + 1;
        let mut at = u64::MAX;
        for ch in &self.channels {
            for f in &ch.inflight {
                at = at.min(f.complete_at.max(floor));
            }
            match self.ctrl.scheduler {
                SchedulerPolicy::Fcfs => {
                    if let Some(head) = ch.queue.front() {
                        at = at.min(ch.banks[head.loc.bank].ready_at.max(floor));
                    }
                }
                SchedulerPolicy::FrFcfs => {
                    for q in &ch.queue {
                        at = at.min(ch.banks[q.loc.bank].ready_at.max(floor));
                    }
                }
            }
        }
        at
    }

    /// Replays `k` skipped steps covering cycles `first .. first + k`
    /// in closed form.  The caller guarantees (via
    /// [`MemoryController::next_event_at`]) that none of those steps
    /// would complete or issue anything, so each would only accrue the
    /// occupancy statistics over piecewise-constant state:
    ///
    /// * queue depths cannot change (no issues, and the engine never
    ///   enqueues while skipping), so the queued integral is
    ///   `k × current depth` exactly;
    /// * every busy interval `[first, ready_at)` is a prefix of the
    ///   window, so per-bank busy cycles are
    ///   `min(ready_at − first, k)` and the any-bank-busy count is the
    ///   maximum prefix — all u64 arithmetic, bit-identical to `k`
    ///   individual steps (proptest-proven in
    ///   `tests/controller_equivalence.rs`).
    ///
    /// DRAM background power joins the closed form: the `k` per-cycle
    /// `DramBackground` quanta the skipped steps would have charged
    /// land in `charges` as one repeated run — exact under the meter's
    /// superaccumulator, so stepping and skipping stay bit-identical.
    pub fn idle_advance(&mut self, first: u64, k: u64, charges: &mut ChargeBatch) {
        if k == 0 {
            return;
        }
        if self.background_energy > Energy::ZERO {
            charges.push_repeated(EnergyCategory::DramBackground, self.background_energy, k);
        }
        let mut queued = 0u64;
        let mut busy_sum = 0u64;
        let mut busy_max = 0u64;
        for ch in &self.channels {
            debug_assert!(
                ch.inflight.iter().all(|f| f.complete_at >= first + k),
                "idle_advance skipped over a completion"
            );
            queued += ch.queue.len() as u64;
            for b in &ch.banks {
                let busy = b.ready_at.saturating_sub(first).min(k);
                busy_sum += busy;
                busy_max = busy_max.max(busy);
            }
        }
        self.counters.queued_cycle_sum += k * queued;
        self.counters.busy_bank_cycle_sum += busy_sum;
        self.counters.active_cycles += busy_max;
        self.counters.stepped_cycles += k;
    }

    /// The state-machine phase of `(channel, bank)` at cycle `t`.
    pub fn bank_state(&self, channel: usize, bank: usize, t: u64) -> BankState {
        self.channels[channel].banks[bank].state(t)
    }

    /// Requests currently queued (all channels).
    pub fn queued_requests(&self) -> usize {
        self.channels.iter().map(|ch| ch.queue.len()).sum()
    }

    /// Requests currently in service (all channels).
    pub fn inflight_requests(&self) -> usize {
        self.channels.iter().map(|ch| ch.inflight.len()).sum()
    }

    /// Captures the controller's complete dynamic state for
    /// checkpointing (see `wimnet_core::checkpoint`).
    pub fn state(&self) -> MemoryControllerState {
        MemoryControllerState {
            channels: self.channels.clone(),
            next_seq: self.next_seq,
            counters: self.counters,
        }
    }

    /// Restores a [`MemoryControllerState`] into this controller.  The
    /// controller must have been built with the same configurations the
    /// snapshot was taken from.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot's channel/bank shape disagrees with
    /// this controller's configuration.
    pub fn restore_state(&mut self, s: &MemoryControllerState) {
        assert_eq!(s.channels.len(), self.channels.len(), "channel count changed");
        for (ch, cs) in self.channels.iter().zip(&s.channels) {
            assert_eq!(cs.banks.len(), ch.banks.len(), "bank count changed");
        }
        self.channels = s.channels.clone();
        self.next_seq = s.next_seq;
        self.counters = s.counters;
    }

    /// Exact queued-requests-over-cycles integral (the numerator of
    /// [`MemoryStackStats::avg_queue_depth`], exposed for telemetry so
    /// the queue-depth integral survives without float round-trips).
    pub fn queued_cycle_sum(&self) -> u64 {
        self.counters.queued_cycle_sum
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> MemoryStackStats {
        let c = &self.counters;
        let frac = |num: u64, den: u64| if den == 0 { 0.0 } else { num as f64 / den as f64 };
        MemoryStackStats {
            stack: self.stack_index,
            accesses: c.accesses,
            reads: c.reads,
            writes: c.writes,
            page_hits: c.page_hits,
            page_empties: c.page_empties,
            page_misses: c.page_misses,
            admit_stall_cycles: c.admit_stall_cycles,
            max_queue_depth: c.max_queue_depth,
            avg_queue_depth: frac(c.queued_cycle_sum, c.stepped_cycles),
            avg_bank_parallelism: frac(c.busy_bank_cycle_sum, c.active_cycles),
            busy_fraction: frac(c.active_cycles, c.stepped_cycles),
        }
    }
}

/// The scheduler: the queue index to issue at cycle `now`, if any.
fn pick(
    queue: &VecDeque<Queued>,
    banks: &[Bank],
    policy: SchedulerPolicy,
    now: u64,
) -> Option<usize> {
    match policy {
        SchedulerPolicy::Fcfs => {
            let head = queue.front()?;
            (banks[head.loc.bank].ready_at <= now).then_some(0)
        }
        SchedulerPolicy::FrFcfs => {
            // First ready row hit in age order, else oldest ready.
            let ready = |q: &Queued| banks[q.loc.bank].ready_at <= now;
            queue
                .iter()
                .position(|q| ready(q) && banks[q.loc.bank].open_row == Some(q.loc.row))
                .or_else(|| queue.iter().position(ready))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(policy: SchedulerPolicy) -> (MemoryController, AddressMap) {
        let ctrl = ControllerConfig { queue_capacity: 4, scheduler: policy };
        (
            MemoryController::new(0, StackConfig::paper(), ctrl),
            AddressMap::paper(1),
        )
    }

    /// Stack-local block `b` as a byte address for a one-stack map.
    fn addr(block: u64) -> u64 {
        block * 64
    }

    fn req(block: u64, kind: AccessKind, tag: u64) -> MemRequest {
        MemRequest { addr: addr(block), bytes: 64, kind, tag }
    }

    fn run_until_drained(
        mc: &mut MemoryController,
        mut now: u64,
        limit: u64,
    ) -> Vec<Completion> {
        let mut all = Vec::new();
        while !mc.is_quiescent() {
            now += 1;
            assert!(now < limit, "controller failed to drain");
            mc.step(now, &mut all);
        }
        all
    }

    #[test]
    fn single_request_matches_the_closed_form_service_time() {
        let (mut mc, map) = controller(SchedulerPolicy::FrFcfs);
        mc.enqueue(req(0, AccessKind::Read, 7), &map).unwrap();
        let mut out = Vec::new();
        mc.step(0, &mut out);
        assert!(out.is_empty(), "service takes time");
        let done = run_until_drained(&mut mc, 0, 100);
        assert_eq!(done.len(), 1);
        let cfg = StackConfig::paper();
        assert_eq!(
            done[0].at,
            cfg.service_cycles(AccessKind::Read, PageOutcome::Empty),
            "cold access = activate + CAS + burst from the issue cycle"
        );
        assert_eq!(done[0].tag, 7);
        assert_eq!(done[0].outcome, PageOutcome::Empty);
    }

    #[test]
    fn queue_capacity_is_enforced_and_rejections_counted() {
        let (mut mc, map) = controller(SchedulerPolicy::FrFcfs);
        // Same channel (stride a full channel wheel: 4 blocks).
        for i in 0..4 {
            mc.enqueue(req(i * 4, AccessKind::Read, i), &map).unwrap();
        }
        let r = req(16, AccessKind::Read, 99);
        assert!(!mc.has_room(&r, &map));
        assert_eq!(mc.enqueue(r, &map), Err(r));
        assert_eq!(mc.stats().admit_stall_cycles, 1);
        assert_eq!(mc.stats().max_queue_depth, 4);
    }

    #[test]
    fn frfcfs_prefers_row_hits_over_older_misses() {
        let (mut mc, map) = controller(SchedulerPolicy::FrFcfs);
        let mut out = Vec::new();
        // Open a row in bank 0 (blocks 0..32 of channel 0 share row 0).
        mc.enqueue(req(0, AccessKind::Read, 0), &map).unwrap();
        mc.step(0, &mut out);
        let first = run_until_drained(&mut mc, 0, 100);
        let t0 = first[0].at;
        // Now queue: a conflicting row in bank 0 (older) and a hit on
        // the open row (younger).  FR-FCFS issues the hit first.
        let bank_wheel = 4 * 32 * 8; // blocks per bank wheel on ch 0
        mc.enqueue(req(bank_wheel, AccessKind::Read, 1), &map).unwrap(); // row conflict
        mc.enqueue(req(4, AccessKind::Read, 2), &map).unwrap(); // same row 0 hit
        let done = run_until_drained(&mut mc, t0, 1_000);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].tag, 2, "the row hit overtakes the older miss");
        assert_eq!(done[0].outcome, PageOutcome::Hit);
        assert_eq!(done[1].tag, 1);
        assert_eq!(done[1].outcome, PageOutcome::Miss);
    }

    #[test]
    fn fcfs_preserves_arrival_order_even_when_blocked() {
        let (mut mc, map) = controller(SchedulerPolicy::Fcfs);
        let bank_wheel = 4 * 32 * 8;
        mc.enqueue(req(0, AccessKind::Read, 0), &map).unwrap();
        mc.enqueue(req(bank_wheel, AccessKind::Read, 1), &map).unwrap();
        mc.enqueue(req(4, AccessKind::Read, 2), &map).unwrap();
        let done = run_until_drained(&mut mc, 0, 1_000);
        let tags: Vec<u64> = done.iter().map(|c| c.tag).collect();
        assert_eq!(tags, vec![0, 1, 2], "FCFS never reorders");
    }

    #[test]
    fn independent_banks_overlap_their_activations() {
        let (mut mc, map) = controller(SchedulerPolicy::FrFcfs);
        // Two different banks of channel 0: blocks 0 and 128
        // (4 ch × 32 cols rotate the bank every 128 channel-0 blocks).
        let bank_stride = 4 * 32;
        mc.enqueue(req(0, AccessKind::Read, 0), &map).unwrap();
        mc.enqueue(req(bank_stride, AccessKind::Read, 1), &map).unwrap();
        let done = run_until_drained(&mut mc, 0, 1_000);
        assert_ne!(done[0].location.bank, done[1].location.bank);
        let cfg = StackConfig::paper();
        let serial = 2 * cfg.service_cycles(AccessKind::Read, PageOutcome::Empty);
        assert!(
            done[1].at < serial,
            "bank-parallel activations beat serial service: {} vs {serial}",
            done[1].at
        );
        let stats = mc.stats();
        assert!(
            stats.avg_bank_parallelism > 1.0,
            "two banks were busy at once: {stats:?}"
        );
    }

    #[test]
    fn bank_state_machine_walks_precharge_activate_open() {
        let (mut mc, map) = controller(SchedulerPolicy::FrFcfs);
        let mut out = Vec::new();
        // Open row 0 of bank 0, drain, then issue a conflicting row.
        mc.enqueue(req(0, AccessKind::Read, 0), &map).unwrap();
        mc.step(0, &mut out);
        let t0 = run_until_drained(&mut mc, 0, 100)[0].at;
        assert_eq!(mc.bank_state(0, 0, t0), BankState::RowOpen);
        let bank_wheel = 4 * 32 * 8;
        mc.enqueue(req(bank_wheel, AccessKind::Read, 1), &map).unwrap();
        out.clear();
        mc.step(t0 + 1, &mut out); // issues the miss at t0 + 1
        let cfg = StackConfig::paper();
        assert_eq!(mc.bank_state(0, 0, t0 + 1), BankState::Precharging);
        assert_eq!(
            mc.bank_state(0, 0, t0 + 1 + cfg.precharge_cycles),
            BankState::Activating
        );
        assert_eq!(
            mc.bank_state(0, 0, t0 + 1 + cfg.precharge_cycles + cfg.activate_cycles),
            BankState::RowOpen
        );
        // A never-touched bank is idle.
        assert_eq!(mc.bank_state(0, 7, t0), BankState::Idle);
    }

    #[test]
    fn next_event_at_is_exact_on_a_live_controller() {
        let (mut mc, map) = controller(SchedulerPolicy::FrFcfs);
        mc.enqueue(req(0, AccessKind::Write, 0), &map).unwrap();
        let mut out = Vec::new();
        mc.step(0, &mut out); // issues at 0
        let e = mc.next_event_at(0);
        // Nothing happens strictly before `e`…
        let mut probe = mc.clone();
        for t in 1..e {
            probe.step(t, &mut out);
            assert!(out.is_empty(), "no completions before the promised cycle");
            assert_eq!(probe.queued_requests(), mc.queued_requests());
        }
        // …and the completion fires exactly at `e`.
        probe.step(e, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].at, e);
        assert_eq!(mc.next_event_at(0), e, "query is state-free");
        assert!(probe.is_quiescent());
        assert_eq!(probe.next_event_at(e), u64::MAX);
    }

    #[test]
    fn quiescent_controller_reports_never() {
        let (mc, _) = controller(SchedulerPolicy::Fcfs);
        assert!(mc.is_quiescent());
        assert_eq!(mc.next_event_at(123), u64::MAX);
        assert_eq!(mc.stats().accesses, 0);
    }

    #[test]
    fn write_and_read_cas_differ_in_completion_time() {
        let (mut mc_r, map) = controller(SchedulerPolicy::FrFcfs);
        let (mut mc_w, _) = controller(SchedulerPolicy::FrFcfs);
        mc_r.enqueue(req(0, AccessKind::Read, 0), &map).unwrap();
        mc_w.enqueue(req(0, AccessKind::Write, 0), &map).unwrap();
        let r = run_until_drained(&mut mc_r, 0, 100);
        let w = run_until_drained(&mut mc_w, 0, 100);
        let cfg = StackConfig::paper();
        assert_eq!(r[0].at - w[0].at, cfg.read_cas_cycles - cfg.write_cas_cycles);
        assert_eq!(mc_r.stats().reads, 1);
        assert_eq!(mc_w.stats().writes, 1);
    }
}
