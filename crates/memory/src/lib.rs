//! In-package stacked DRAM for the `wimnet` multichip systems.
//!
//! §IV of the paper: "We considered the memory module to be vertically
//! stacked 4-layered DRAM memory mounted on top of a base logic die.
//! Each memory stack is assumed to have four channels.  The base logic
//! die works as an interface between the memory stacks and multicore
//! chips … The layers of the memory stacks are interconnected using
//! TSVs."
//!
//! The network-level evaluation treats stacks as endpoints (the paper
//! explicitly ignores intra-stack transfer energy because it is the same
//! in all configurations), but the reproduction still models the stack
//! properly so that request/reply workloads see realistic service times:
//!
//! * [`address`] — block-interleaved mapping of physical addresses onto
//!   (stack, channel, bank, row).
//! * [`tsv`] — the through-silicon-via bundle: per-bit energy and layer
//!   crossing latency.
//! * [`stack`] — the closed-form service model: one access per channel
//!   behind a `busy_until` scalar, open-page row-buffer semantics with
//!   hit / empty / miss distinguished, read/write-differentiated CAS
//!   and array energy.
//! * [`controller`] — the cycle-accurate queued controller the engine
//!   drives: bounded per-channel request queues, per-bank state
//!   machines, FR-FCFS / FCFS scheduling, per-stack statistics, and
//!   the idle fast-forward contract (`docs/memory.md`).  Reduces to
//!   the closed-form model for a single outstanding request
//!   (proptest-proven in `tests/controller_equivalence.rs`).
//! * [`wideio`] — the HBM-style 128-bit 1 GHz wide I/O interface used by
//!   the substrate architecture (128 Gbps, 6.5 pJ/bit, paper ref \[19\]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod controller;
pub mod stack;
pub mod tsv;
pub mod wideio;

pub use address::AddressMap;
pub use controller::{
    BankState, Completion, ControllerConfig, MemRequest, MemoryController,
    MemoryControllerState, MemoryStackStats, SchedulerPolicy,
};
pub use stack::{AccessKind, AccessResult, MemoryStack, PageOutcome, StackConfig};
pub use tsv::TsvBundle;
pub use wideio::WideIoSpec;
