//! In-package stacked DRAM for the `wimnet` multichip systems.
//!
//! §IV of the paper: "We considered the memory module to be vertically
//! stacked 4-layered DRAM memory mounted on top of a base logic die.
//! Each memory stack is assumed to have four channels.  The base logic
//! die works as an interface between the memory stacks and multicore
//! chips … The layers of the memory stacks are interconnected using
//! TSVs."
//!
//! The network-level evaluation treats stacks as endpoints (the paper
//! explicitly ignores intra-stack transfer energy because it is the same
//! in all configurations), but the reproduction still models the stack
//! properly so that request/reply workloads see realistic service times:
//!
//! * [`address`] — block-interleaved mapping of physical addresses onto
//!   (stack, channel, bank, row).
//! * [`tsv`] — the through-silicon-via bundle: per-bit energy and layer
//!   crossing latency.
//! * [`stack`] — per-channel service queues with open-page row-buffer
//!   semantics (row hits beat row misses) over the four DRAM layers.
//! * [`wideio`] — the HBM-style 128-bit 1 GHz wide I/O interface used by
//!   the substrate architecture (128 Gbps, 6.5 pJ/bit, paper ref \[19\]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod stack;
pub mod tsv;
pub mod wideio;

pub use address::AddressMap;
pub use stack::{AccessKind, AccessResult, MemoryStack, StackConfig};
pub use tsv::TsvBundle;
pub use wideio::WideIoSpec;
