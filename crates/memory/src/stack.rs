//! The four-layer stacked DRAM with per-channel service queues.
//!
//! Each stack has four independent channels (paper §IV); each channel
//! serves one access at a time with open-page row-buffer semantics.
//! Three page outcomes are distinguished (see [`PageOutcome`]):
//!
//! * **hit** — the addressed row is already open: CAS only;
//! * **empty** — the bank has *no* open row (cold bank, or explicitly
//!   precharged): activate + CAS, nothing to precharge;
//! * **miss** — a *different* row is open: precharge + activate + CAS.
//!
//! Reads and writes carry distinct CAS latencies and per-bit array
//! energies ([`StackConfig::cas_cycles`] /
//! [`StackConfig::array_pj_per_bit`]).  The base logic die arbitrates
//! and drives the TSV bundles to the DRAM layers.
//!
//! [`MemoryStack`] is the *closed-form* service model: one access per
//! channel at a time, serialized by a `busy_until` scalar.  The
//! cycle-accurate queued controller in [`crate::controller`] reduces to
//! this model in the contention-free single-outstanding-request regime
//! (proven by proptest in `tests/controller_equivalence.rs`) and
//! supersedes it inside the simulation engine.

use serde::{Deserialize, Serialize};

use wimnet_energy::{Energy, Frequency, Power};

use crate::address::{AddressMap, Location};
use crate::tsv::TsvBundle;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// DRAM read.
    Read,
    /// DRAM write.
    Write,
}

/// How an access found the row buffer of its bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageOutcome {
    /// The addressed row was already open: CAS only.
    Hit,
    /// No row was open (cold or precharged bank): activate + CAS —
    /// there is nothing to precharge, so this is strictly cheaper than
    /// a miss.
    Empty,
    /// A different row was open: precharge + activate + CAS.
    Miss,
}

/// Timing/energy parameters of one stack.
///
/// The `paper()` defaults are HBM-generation timings expressed in the
/// paper's 2.5 GHz system clock (§IV simulates 2.5 GHz cores against
/// in-package stacks; the paper itself reports only the wide-I/O
/// interface numbers, so the DRAM core timings follow its HBM
/// reference \[19\]): a 12-cycle (~5 ns) read CAS, a 10-cycle write
/// CAS (CWL runs a couple of cycles under CL), 9-cycle (~3.6 ns)
/// precharge and activate phases — so a page miss costs
/// 9 + 9 + 12 = 30 cycles (~12 ns), matching the pre-split
/// `row_miss_cycles` value — and 64-byte bursts over 4 cycles.  The
/// DRAM array energies default to zero because the paper explicitly
/// excludes intra-stack energy from its cross-architecture comparison
/// (it is identical in all configurations); the fields exist so
/// calibrated studies can charge reads and writes differently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackConfig {
    /// DRAM layers (paper: 4).
    pub layers: u32,
    /// Channels per stack (paper: 4).
    pub channels: usize,
    /// Banks per channel.
    pub banks: usize,
    /// Read CAS latency in 2.5 GHz cycles (column access of an open
    /// row to first data).
    pub read_cas_cycles: u64,
    /// Write CAS latency in cycles (CWL; typically below the read CL).
    pub write_cas_cycles: u64,
    /// Precharge latency in cycles (closing an open row).
    pub precharge_cycles: u64,
    /// Activate latency in cycles (opening a row into the row buffer).
    pub activate_cycles: u64,
    /// Data transfer cycles per access burst on the channel.
    pub burst_cycles: u64,
    /// DRAM array energy per bit *read*, in pJ (0 by default: the paper
    /// ignores intra-stack energy in cross-architecture comparisons).
    pub array_read_pj_per_bit: f64,
    /// DRAM array energy per bit *written*, in pJ (0 by default, as
    /// above; writes cost more than reads on real parts).
    pub array_write_pj_per_bit: f64,
    /// Constant DRAM background power of the whole stack (refresh,
    /// peripheral and standby current), charged every cycle — stepped
    /// or fast-forwarded — as `EnergyCategory::DramBackground`.  Zero
    /// by default: the paper excludes intra-stack energy from its
    /// cross-architecture comparison, so the paper anchors are
    /// unaffected; calibrated deep-idle studies set it to surface
    /// standby draw.
    #[serde(default)]
    pub background_power: Power,
    /// TSV bundle between layers.
    pub tsv: TsvBundle,
}

impl StackConfig {
    /// HBM-generation timings at a 2.5 GHz system clock — see the
    /// type-level docs for the derivation of each value.
    pub fn paper() -> Self {
        StackConfig {
            layers: 4,
            channels: 4,
            banks: 8,
            read_cas_cycles: 12,
            write_cas_cycles: 10,
            precharge_cycles: 9,
            activate_cycles: 9,
            burst_cycles: 4,
            array_read_pj_per_bit: 0.0,
            array_write_pj_per_bit: 0.0,
            background_power: Power::ZERO,
            tsv: TsvBundle::paper(),
        }
    }

    /// CAS latency of `kind` in cycles.
    pub fn cas_cycles(&self, kind: AccessKind) -> u64 {
        match kind {
            AccessKind::Read => self.read_cas_cycles,
            AccessKind::Write => self.write_cas_cycles,
        }
    }

    /// DRAM array energy per bit of `kind`, in pJ.
    pub fn array_pj_per_bit(&self, kind: AccessKind) -> f64 {
        match kind {
            AccessKind::Read => self.array_read_pj_per_bit,
            AccessKind::Write => self.array_write_pj_per_bit,
        }
    }

    /// Cycles spent getting the row into the row buffer for `outcome`
    /// (before CAS can start): 0 on a hit, activate on an empty bank,
    /// precharge + activate on a miss.
    pub fn opening_cycles(&self, outcome: PageOutcome) -> u64 {
        match outcome {
            PageOutcome::Hit => 0,
            PageOutcome::Empty => self.activate_cycles,
            PageOutcome::Miss => self.precharge_cycles + self.activate_cycles,
        }
    }

    /// Full contention-free service latency of one access (excluding
    /// TSV layer-crossing latency): opening + CAS + burst.
    pub fn service_cycles(&self, kind: AccessKind, outcome: PageOutcome) -> u64 {
        self.opening_cycles(outcome) + self.cas_cycles(kind) + self.burst_cycles
    }

    /// Energy spent inside the stack for `bits` bits of `kind` landing
    /// on `layer`: array access + TSV layer crossings.
    pub fn access_energy(&self, bits: u64, kind: AccessKind, layer: u32) -> Energy {
        Energy::from_pj(self.array_pj_per_bit(kind) * bits as f64)
            + self.tsv.energy(bits, layer)
    }

    /// Background energy of one clock cycle at `clock` — the per-cycle
    /// quantum both the stepped and the fast-forwarded engine paths
    /// charge as `DramBackground` (the closed form charges it as one
    /// repeated charge over the skipped span).
    pub fn background_energy_per_cycle(&self, clock: Frequency) -> Energy {
        self.background_power.energy_over_cycles(1, clock)
    }
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig::paper()
    }
}

/// Outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessResult {
    /// Cycle at which the data is ready at the base logic die.
    pub complete_at: u64,
    /// How the access found the row buffer.
    pub outcome: PageOutcome,
    /// Energy spent inside the stack (array + TSVs).
    pub energy: Energy,
    /// Where the access landed.
    pub location: Location,
}

impl AccessResult {
    /// `true` when the access hit the open row.
    pub fn row_hit(&self) -> bool {
        self.outcome == PageOutcome::Hit
    }
}

/// Per-channel open-page state.
#[derive(Debug, Clone, Default)]
struct ChannelState {
    busy_until: u64,
    open_row: Vec<Option<u64>>, // per bank
}

/// One in-package memory stack (closed-form service model; see the
/// module docs for its relation to [`crate::controller`]).
#[derive(Debug, Clone)]
pub struct MemoryStack {
    cfg: StackConfig,
    stack_index: usize,
    channels: Vec<ChannelState>,
    accesses: u64,
    row_hits: u64,
}

impl MemoryStack {
    /// Creates stack `stack_index` with configuration `cfg`.
    pub fn new(stack_index: usize, cfg: StackConfig) -> Self {
        let channels = (0..cfg.channels)
            .map(|_| ChannelState {
                busy_until: 0,
                open_row: vec![None; cfg.banks],
            })
            .collect();
        MemoryStack {
            cfg,
            stack_index,
            channels,
            accesses: 0,
            row_hits: 0,
        }
    }

    /// The stack's index in the package.
    pub fn stack_index(&self) -> usize {
        self.stack_index
    }

    /// The configuration.
    pub fn config(&self) -> &StackConfig {
        &self.cfg
    }

    /// Services an access of `bytes` bytes at `addr` issued at cycle
    /// `now`, using `map` to locate it.
    ///
    /// # Panics
    ///
    /// Panics if `map` decodes the address to a different stack — the
    /// caller routed the request wrongly.
    pub fn access(
        &mut self,
        now: u64,
        addr: u64,
        bytes: u32,
        kind: AccessKind,
        map: &AddressMap,
    ) -> AccessResult {
        let loc = map.decode(addr);
        assert_eq!(
            loc.stack, self.stack_index,
            "access for stack {} routed to stack {}",
            loc.stack, self.stack_index
        );
        let ch = &mut self.channels[loc.channel];
        let outcome = match ch.open_row[loc.bank] {
            Some(row) if row == loc.row => PageOutcome::Hit,
            Some(_) => PageOutcome::Miss,
            None => PageOutcome::Empty,
        };
        ch.open_row[loc.bank] = Some(loc.row);
        let service = self.cfg.service_cycles(kind, outcome) + self.cfg.tsv.latency(loc.layer);
        let start = now.max(ch.busy_until);
        let complete_at = start + service;
        ch.busy_until = complete_at;

        let bits = u64::from(bytes) * 8;
        let energy = self.cfg.access_energy(bits, kind, loc.layer);
        self.accesses += 1;
        self.row_hits += u64::from(outcome == PageOutcome::Hit);
        AccessResult { complete_at, outcome, energy, location: loc }
    }

    /// Accesses served so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Fraction of accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> (MemoryStack, AddressMap) {
        (MemoryStack::new(0, StackConfig::paper()), AddressMap::paper(1))
    }

    #[test]
    fn first_access_is_page_empty_then_same_row_hits() {
        let (mut s, map) = stack();
        let a = s.access(0, 0, 64, AccessKind::Read, &map);
        assert_eq!(a.outcome, PageOutcome::Empty, "cold bank: nothing to precharge");
        let b = s.access(a.complete_at, 0, 64, AccessKind::Read, &map);
        assert_eq!(b.outcome, PageOutcome::Hit);
        assert!(b.row_hit());
        assert!(
            b.complete_at - a.complete_at < a.complete_at,
            "row hits are faster than cold activations"
        );
        assert_eq!(s.accesses(), 2);
        assert!((s.row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn page_empty_is_cheaper_than_page_miss() {
        let cfg = StackConfig::paper();
        let map = AddressMap::paper(1);
        // Cold bank: activate + CAS only.
        let mut cold = MemoryStack::new(0, cfg.clone());
        let empty = cold.access(0, 0, 64, AccessKind::Read, &map);
        assert_eq!(
            empty.complete_at,
            cfg.activate_cycles + cfg.read_cas_cycles + cfg.burst_cycles
        );
        // Conflicting row in the same bank: the full precharge penalty.
        let row_stride = 4 * 32 * 8 * 64; // one full bank wheel
        let mut warm = MemoryStack::new(0, cfg.clone());
        warm.access(0, 0, 64, AccessKind::Read, &map);
        let miss = warm.access(1_000, row_stride, 64, AccessKind::Read, &map);
        assert_eq!(miss.outcome, PageOutcome::Miss);
        assert_eq!(
            miss.complete_at - 1_000,
            cfg.precharge_cycles + cfg.activate_cycles + cfg.read_cas_cycles + cfg.burst_cycles
        );
        assert!(miss.complete_at - 1_000 > empty.complete_at);
    }

    #[test]
    fn channel_serialises_back_to_back_accesses() {
        let (mut s, map) = stack();
        // Two accesses to the same channel at the same cycle.
        let a = s.access(0, 0, 64, AccessKind::Read, &map);
        let b = s.access(0, 0, 64, AccessKind::Read, &map);
        assert!(b.complete_at > a.complete_at);
    }

    #[test]
    fn different_channels_serve_in_parallel() {
        let (mut s, map) = stack();
        // One-stack map: blocks rotate over channels.
        let a = s.access(0, 0, 64, AccessKind::Read, &map);
        let b = s.access(0, 64, 64, AccessKind::Read, &map);
        assert_ne!(a.location.channel, b.location.channel);
        assert_eq!(
            a.complete_at, b.complete_at,
            "independent channels see identical zero-queue latency"
        );
    }

    #[test]
    fn tsv_energy_counts_layers() {
        let (mut s, map) = stack();
        // Find an address on a non-zero layer.
        let mut found = false;
        // Stride of one full row (1 stack x 4 channels x 8 banks x 64 B)
        // advances the row index by one, striping across layers.
        for i in 0..64u64 {
            let r = s.access(0, i * 2048, 64, AccessKind::Read, &map);
            if r.location.layer > 0 {
                assert!(r.energy > Energy::ZERO);
                found = true;
                break;
            }
        }
        assert!(found, "some rows must land on upper layers");
    }

    #[test]
    #[should_panic]
    fn wrong_stack_routing_panics() {
        let mut s = MemoryStack::new(1, StackConfig::paper());
        let map = AddressMap::paper(4);
        s.access(0, 0, 64, AccessKind::Read, &map); // addr 0 → stack 0
    }

    #[test]
    fn writes_use_the_write_cas_latency() {
        let cfg = StackConfig::paper();
        let map = AddressMap::paper(1);
        let mut r = MemoryStack::new(0, cfg.clone());
        let read = r.access(0, 0, 64, AccessKind::Read, &map);
        let mut w = MemoryStack::new(0, cfg.clone());
        let write = w.access(0, 0, 64, AccessKind::Write, &map);
        assert_eq!(
            read.complete_at - write.complete_at,
            cfg.read_cas_cycles - cfg.write_cas_cycles,
            "read/write differ by exactly the CAS split"
        );
    }

    #[test]
    fn read_and_write_array_energy_are_distinct() {
        let mut cfg = StackConfig::paper();
        cfg.array_read_pj_per_bit = 1.0;
        cfg.array_write_pj_per_bit = 2.5;
        let map = AddressMap::paper(1);
        let mut s = MemoryStack::new(0, cfg);
        let read = s.access(0, 0, 64, AccessKind::Read, &map);
        let write = s.access(1_000, 0, 64, AccessKind::Write, &map);
        // Same location (layer 0: no TSV term), so the ratio is the
        // array constant ratio.
        assert_eq!(read.location, write.location);
        assert!(
            (write.energy.picojoules() - 2.5 * read.energy.picojoules()).abs() < 1e-9,
            "write energy {} vs read {}",
            write.energy.picojoules(),
            read.energy.picojoules()
        );
    }

    #[test]
    fn paper_miss_latency_matches_the_pre_split_value() {
        let cfg = StackConfig::paper();
        // precharge + activate + read CAS == the historical 30-cycle
        // row-miss figure (~12 ns at 2.5 GHz).
        assert_eq!(
            cfg.opening_cycles(PageOutcome::Miss) + cfg.read_cas_cycles,
            30
        );
        assert_eq!(cfg.service_cycles(AccessKind::Read, PageOutcome::Miss), 34);
        assert_eq!(cfg.service_cycles(AccessKind::Read, PageOutcome::Hit), 16);
        assert_eq!(cfg.service_cycles(AccessKind::Read, PageOutcome::Empty), 25);
    }
}
