//! The four-layer stacked DRAM with per-channel service queues.
//!
//! Each stack has four independent channels (paper §IV); each channel
//! serves one access at a time with open-page row-buffer semantics: a
//! row hit costs CAS only, a row miss pays precharge + activate + CAS.
//! The base logic die arbitrates and drives the TSV bundles to the DRAM
//! layers.

use serde::{Deserialize, Serialize};

use wimnet_energy::Energy;

use crate::address::{AddressMap, Location};
use crate::tsv::TsvBundle;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// DRAM read.
    Read,
    /// DRAM write.
    Write,
}

/// Timing/energy parameters of one stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackConfig {
    /// DRAM layers (paper: 4).
    pub layers: u32,
    /// Channels per stack (paper: 4).
    pub channels: usize,
    /// Banks per channel.
    pub banks: usize,
    /// Row-hit (CAS-only) service latency in 2.5 GHz cycles.
    pub row_hit_cycles: u64,
    /// Row-miss (precharge + activate + CAS) latency in cycles.
    pub row_miss_cycles: u64,
    /// Data transfer cycles per access burst on the channel.
    pub burst_cycles: u64,
    /// DRAM array energy per bit accessed, in pJ (the paper ignores it
    /// in cross-architecture comparisons; kept for completeness).
    pub array_pj_per_bit: f64,
    /// TSV bundle between layers.
    pub tsv: TsvBundle,
}

impl StackConfig {
    /// HBM-generation timings at a 2.5 GHz system clock: ~12 ns row
    /// miss, ~5 ns row hit, 64-byte bursts.
    pub fn paper() -> Self {
        StackConfig {
            layers: 4,
            channels: 4,
            banks: 8,
            row_hit_cycles: 12,
            row_miss_cycles: 30,
            burst_cycles: 4,
            array_pj_per_bit: 0.0,
            tsv: TsvBundle::paper(),
        }
    }
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig::paper()
    }
}

/// Outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessResult {
    /// Cycle at which the data is ready at the base logic die.
    pub complete_at: u64,
    /// Whether the access hit the open row.
    pub row_hit: bool,
    /// Energy spent inside the stack (array + TSVs).
    pub energy: Energy,
    /// Where the access landed.
    pub location: Location,
}

/// Per-channel open-page state.
#[derive(Debug, Clone, Default)]
struct ChannelState {
    busy_until: u64,
    open_row: Vec<Option<u64>>, // per bank
}

/// One in-package memory stack.
#[derive(Debug, Clone)]
pub struct MemoryStack {
    cfg: StackConfig,
    stack_index: usize,
    channels: Vec<ChannelState>,
    accesses: u64,
    row_hits: u64,
}

impl MemoryStack {
    /// Creates stack `stack_index` with configuration `cfg`.
    pub fn new(stack_index: usize, cfg: StackConfig) -> Self {
        let channels = (0..cfg.channels)
            .map(|_| ChannelState {
                busy_until: 0,
                open_row: vec![None; cfg.banks],
            })
            .collect();
        MemoryStack {
            cfg,
            stack_index,
            channels,
            accesses: 0,
            row_hits: 0,
        }
    }

    /// The stack's index in the package.
    pub fn stack_index(&self) -> usize {
        self.stack_index
    }

    /// The configuration.
    pub fn config(&self) -> &StackConfig {
        &self.cfg
    }

    /// Services an access of `bytes` bytes at `addr` issued at cycle
    /// `now`, using `map` to locate it.
    ///
    /// # Panics
    ///
    /// Panics if `map` decodes the address to a different stack — the
    /// caller routed the request wrongly.
    pub fn access(
        &mut self,
        now: u64,
        addr: u64,
        bytes: u32,
        kind: AccessKind,
        map: &AddressMap,
    ) -> AccessResult {
        let loc = map.decode(addr);
        assert_eq!(
            loc.stack, self.stack_index,
            "access for stack {} routed to stack {}",
            loc.stack, self.stack_index
        );
        let ch = &mut self.channels[loc.channel];
        let row_hit = ch.open_row[loc.bank] == Some(loc.row);
        ch.open_row[loc.bank] = Some(loc.row);
        let service = if row_hit {
            self.cfg.row_hit_cycles
        } else {
            self.cfg.row_miss_cycles
        } + self.cfg.burst_cycles
            + self.cfg.tsv.latency(loc.layer);
        let start = now.max(ch.busy_until);
        let complete_at = start + service;
        ch.busy_until = complete_at;

        let bits = u64::from(bytes) * 8;
        let energy = Energy::from_pj(self.cfg.array_pj_per_bit * bits as f64)
            + self.cfg.tsv.energy(bits, loc.layer);
        self.accesses += 1;
        self.row_hits += u64::from(row_hit);
        let _ = kind; // reads and writes share timing in this model
        AccessResult { complete_at, row_hit, energy, location: loc }
    }

    /// Accesses served so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Fraction of accesses that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack() -> (MemoryStack, AddressMap) {
        (MemoryStack::new(0, StackConfig::paper()), AddressMap::paper(1))
    }

    #[test]
    fn first_access_misses_then_same_row_hits() {
        let (mut s, map) = stack();
        let a = s.access(0, 0, 64, AccessKind::Read, &map);
        assert!(!a.row_hit);
        let b = s.access(a.complete_at, 0, 64, AccessKind::Read, &map);
        assert!(b.row_hit);
        assert!(
            b.complete_at - a.complete_at < a.complete_at,
            "row hits are faster than misses"
        );
        assert_eq!(s.accesses(), 2);
        assert!((s.row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn channel_serialises_back_to_back_accesses() {
        let (mut s, map) = stack();
        // Two accesses to the same channel at the same cycle.
        let a = s.access(0, 0, 64, AccessKind::Read, &map);
        let b = s.access(0, 0, 64, AccessKind::Read, &map);
        assert!(b.complete_at > a.complete_at);
    }

    #[test]
    fn different_channels_serve_in_parallel() {
        let (mut s, map) = stack();
        // One-stack map: blocks rotate over channels.
        let a = s.access(0, 0, 64, AccessKind::Read, &map);
        let b = s.access(0, 64, 64, AccessKind::Read, &map);
        assert_ne!(a.location.channel, b.location.channel);
        assert_eq!(
            a.complete_at, b.complete_at,
            "independent channels see identical zero-queue latency"
        );
    }

    #[test]
    fn tsv_energy_counts_layers() {
        let (mut s, map) = stack();
        // Find an address on a non-zero layer.
        let mut found = false;
        // Stride of one full row (1 stack x 4 channels x 8 banks x 64 B)
        // advances the row index by one, striping across layers.
        for i in 0..64u64 {
            let r = s.access(0, i * 2048, 64, AccessKind::Read, &map);
            if r.location.layer > 0 {
                assert!(r.energy > Energy::ZERO);
                found = true;
                break;
            }
        }
        assert!(found, "some rows must land on upper layers");
    }

    #[test]
    #[should_panic]
    fn wrong_stack_routing_panics() {
        let mut s = MemoryStack::new(1, StackConfig::paper());
        let map = AddressMap::paper(4);
        s.access(0, 0, 64, AccessKind::Read, &map); // addr 0 → stack 0
    }

    #[test]
    fn write_and_read_share_timing_model() {
        let (mut s, map) = stack();
        let r = s.access(0, 0, 64, AccessKind::Read, &map);
        let mut s2 = MemoryStack::new(0, StackConfig::paper());
        let w = s2.access(0, 0, 64, AccessKind::Write, &map);
        assert_eq!(r.complete_at, w.complete_at);
    }
}
