//! The through-silicon-via bundle connecting stacked DRAM layers.
//!
//! §III.A: "The layers of the memory stacks are interconnected using
//! TSVs."  TSVs are short (tens of µm) vertical copper pillars: their
//! energy per bit is an order of magnitude below package wires and their
//! latency is effectively one clock edge per crossing at 2.5 GHz.

use serde::{Deserialize, Serialize};

use wimnet_energy::Energy;

/// A vertical TSV bundle between adjacent dies of a stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsvBundle {
    /// Data width of the bundle in bits (per channel).
    pub width_bits: u32,
    /// Energy per bit per layer crossing, in pJ.
    pub pj_per_bit_per_layer: f64,
    /// Additional cycles per layer crossing (usually 0 at 2.5 GHz; kept
    /// configurable for taller stacks).
    pub cycles_per_layer: u64,
}

impl TsvBundle {
    /// The paper-era TSV bundle: 128-bit channel TSVs, 0.05 pJ/bit per
    /// crossing, same-cycle traversal.
    pub fn paper() -> Self {
        TsvBundle {
            width_bits: 128,
            pj_per_bit_per_layer: 0.05,
            cycles_per_layer: 0,
        }
    }

    /// Energy for `bits` bits to climb `layers` layer crossings.
    pub fn energy(&self, bits: u64, layers: u32) -> Energy {
        Energy::from_pj(self.pj_per_bit_per_layer * bits as f64 * f64::from(layers))
    }

    /// Extra latency in cycles for `layers` layer crossings.
    pub fn latency(&self, layers: u32) -> u64 {
        self.cycles_per_layer * u64::from(layers)
    }

    /// Cycles to serialise `bits` across the bundle at one transfer per
    /// cycle of the bundle width.
    pub fn serialization_cycles(&self, bits: u64) -> u64 {
        bits.div_ceil(u64::from(self.width_bits))
    }
}

impl Default for TsvBundle {
    fn default() -> Self {
        TsvBundle::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_scales_with_bits_and_layers() {
        let t = TsvBundle::paper();
        assert_eq!(t.energy(0, 4), Energy::ZERO);
        let one = t.energy(128, 1);
        let four = t.energy(128, 4);
        assert!((four.picojoules() - 4.0 * one.picojoules()).abs() < 1e-12);
        assert!((one.picojoules() - 6.4).abs() < 1e-12);
    }

    #[test]
    fn latency_defaults_to_zero_cycles() {
        let t = TsvBundle::paper();
        assert_eq!(t.latency(3), 0);
        let slow = TsvBundle { cycles_per_layer: 2, ..TsvBundle::paper() };
        assert_eq!(slow.latency(3), 6);
    }

    #[test]
    fn serialization_rounds_up() {
        let t = TsvBundle::paper();
        assert_eq!(t.serialization_cycles(128), 1);
        assert_eq!(t.serialization_cycles(129), 2);
        assert_eq!(t.serialization_cycles(512), 4);
    }
}
