//! The 128-bit wide memory I/O interface (paper ref \[19\], HBM-style).
//!
//! §IV.A: "the memory stacks are connected to the I/O modules of the
//! processing chips through 128 bit (assuming µ-bump pitch of 50 µm and
//! 10 mm die edge) wide channel operating at 1 GHz.  Hence, this wide
//! I/O provides a total bandwidth of 128 Gbps per DRAM stack with its
//! neighbouring processing chip with an energy consumption of
//! 6.5 pJ/bit."

use serde::{Deserialize, Serialize};

use wimnet_energy::{Energy, Frequency};

/// Datasheet description of the wide I/O interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WideIoSpec {
    /// Parallel data width in bits.
    pub width_bits: u32,
    /// Interface clock.
    pub clock: Frequency,
    /// Energy per bit in pJ.
    pub pj_per_bit: f64,
    /// µ-bump pitch in µm (sets how many signals fit a die edge).
    pub ubump_pitch_um: f64,
    /// Die edge length available for the interface, in mm.
    pub die_edge_mm: f64,
}

impl WideIoSpec {
    /// The paper's wide I/O: 128 bits at 1 GHz, 6.5 pJ/bit, 50 µm
    /// µ-bumps on a 10 mm die edge.
    pub fn paper() -> Self {
        WideIoSpec {
            width_bits: 128,
            clock: Frequency::from_ghz(1.0),
            pj_per_bit: 6.5,
            ubump_pitch_um: 50.0,
            die_edge_mm: 10.0,
        }
    }

    /// Aggregate bandwidth in Gbps.
    pub fn bandwidth_gbps(&self) -> f64 {
        f64::from(self.width_bits) * self.clock.gigahertz()
    }

    /// Energy to move `bits` across the interface.
    pub fn energy(&self, bits: u64) -> Energy {
        Energy::from_pj(self.pj_per_bit * bits as f64)
    }

    /// How many signal bumps fit on the die edge — a feasibility check
    /// for the configured width (data plus roughly equal overhead for
    /// power/ground and control).
    pub fn bumps_available(&self) -> u32 {
        (self.die_edge_mm * 1000.0 / self.ubump_pitch_um) as u32
    }

    /// `true` when the data width (with 100% power/control overhead)
    /// fits the available bump count.
    pub fn width_is_feasible(&self) -> bool {
        self.width_bits * 2 <= self.bumps_available()
    }

    /// Transfer rate in flits of `flit_bits` per cycle of `system_clock`
    /// — what the NoC link model needs.
    pub fn flits_per_cycle(&self, flit_bits: u32, system_clock: Frequency) -> f64 {
        self.bandwidth_gbps() * 1e9 / f64::from(flit_bits) / system_clock.hertz()
    }
}

impl Default for WideIoSpec {
    fn default() -> Self {
        WideIoSpec::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidth_is_128_gbps() {
        let w = WideIoSpec::paper();
        assert!((w.bandwidth_gbps() - 128.0).abs() < 1e-12);
    }

    #[test]
    fn paper_width_fits_the_die_edge() {
        let w = WideIoSpec::paper();
        // 10 mm / 50 µm = 200 bumps ≥ 2 × 128 bits? No — the paper's
        // sizing assumes bumps on multiple rows; one row alone carries
        // 200. With two rows the 256 needed signals fit.
        assert_eq!(w.bumps_available(), 200);
        assert!(!w.width_is_feasible(), "single-row bump budget is tight");
        let two_rows = WideIoSpec { ubump_pitch_um: 25.0, ..WideIoSpec::paper() };
        assert!(two_rows.width_is_feasible());
    }

    #[test]
    fn energy_matches_cited_value() {
        let w = WideIoSpec::paper();
        assert!((w.energy(2).picojoules() - 13.0).abs() < 1e-12);
    }

    #[test]
    fn flit_rate_matches_link_model() {
        let w = WideIoSpec::paper();
        // 128 Gbps / 32-bit flits / 2.5 GHz = 1.6 flits per cycle — the
        // exact rate `wimnet-noc`'s link model uses.
        let rate = w.flits_per_cycle(32, Frequency::from_ghz(2.5));
        assert!((rate - 1.6).abs() < 1e-12);
    }
}
