//! The two contracts of the cycle-accurate controller, property-based:
//!
//! 1. **Closed-form equivalence** — with a single outstanding request
//!    (the next one arrives only after the previous completed), the
//!    queued controller's completion times, page outcomes and energies
//!    are identical to the (page-empty-fixed) closed-form
//!    `MemoryStack::access` model, for random address/kind/gap
//!    sequences and both scheduler policies.
//! 2. **Idle replay** — `idle_advance(first, k)` over any window
//!    sanctioned by `next_event_at` leaves the controller in exactly
//!    the state `k` individual `step`s would, with no completions in
//!    between, and the resumed walk stays bit-identical — the
//!    `idle_step(k) ≡ k×step` obligation of `docs/fast_forward.md`.

use proptest::prelude::*;

use wimnet_energy::{ChargeBatch, Energy, EnergyCategory, EnergyMeter};
use wimnet_memory::{
    AccessKind, AddressMap, ControllerConfig, MemRequest, MemoryController, MemoryStack,
    SchedulerPolicy, StackConfig,
};

fn kind_of(bit: bool) -> AccessKind {
    if bit {
        AccessKind::Write
    } else {
        AccessKind::Read
    }
}

fn policy_of(bit: bool) -> SchedulerPolicy {
    if bit {
        SchedulerPolicy::Fcfs
    } else {
        SchedulerPolicy::FrFcfs
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Contention-free single-outstanding-request equivalence: issue →
    /// drain → gap → issue, comparing every completion against the
    /// closed-form model access-by-access.
    #[test]
    fn contention_free_controller_matches_closed_form(
        seq in prop::collection::vec((0u64..4_096, any::<bool>(), 0u64..50), 1..40),
        policy_bit in any::<bool>(),
        write_energy in 0.0f64..4.0,
    ) {
        let mut cfg = StackConfig::paper();
        // Exercise the read/write energy split too.
        cfg.array_read_pj_per_bit = 1.0;
        cfg.array_write_pj_per_bit = write_energy;
        let map = AddressMap::paper(1);
        let ctrl = ControllerConfig { queue_capacity: 8, scheduler: policy_of(policy_bit) };
        let mut mc = MemoryController::new(0, cfg.clone(), ctrl);
        let mut reference = MemoryStack::new(0, cfg);

        let mut now = 0u64;
        let mut out = Vec::new();
        for (i, &(block, write_bit, gap)) in seq.iter().enumerate() {
            let kind = kind_of(write_bit);
            let addr = block * 64;
            let expect = reference.access(now, addr, 64, kind, &map);
            mc.enqueue(MemRequest { addr, bytes: 64, kind, tag: i as u64 }, &map)
                .expect("an empty controller always has room");
            out.clear();
            mc.step(now, &mut out); // issues at `now`
            prop_assert!(out.is_empty(), "service takes at least one cycle");
            while out.is_empty() {
                now += 1;
                prop_assert!(now < 1 << 20, "controller failed to drain");
                mc.step(now, &mut out);
            }
            prop_assert_eq!(out.len(), 1);
            let got = &out[0];
            prop_assert_eq!(got.tag, i as u64);
            prop_assert_eq!(
                got.at, expect.complete_at,
                "completion time diverged at access {} (addr {})", i, addr
            );
            prop_assert_eq!(got.outcome, expect.outcome, "page outcome diverged");
            prop_assert_eq!(
                got.energy.picojoules().to_bits(),
                expect.energy.picojoules().to_bits(),
                "energy diverged"
            );
            prop_assert_eq!(got.location, expect.location);
            prop_assert!(mc.is_quiescent());
            now = got.at + gap;
        }
        prop_assert_eq!(mc.stats().accesses, seq.len() as u64);
    }

    /// Idle replay: from a random mid-service state, a sanctioned skip
    /// window replayed with `idle_advance` is bit-identical (full
    /// `PartialEq` on the controller, statistics included) to stepping
    /// every cycle — and the resumed live walk stays identical.
    #[test]
    fn idle_window_replay_is_bit_identical_to_stepping(
        batch in prop::collection::vec((0u64..512, any::<bool>()), 1..12),
        policy_bit in any::<bool>(),
        warm_steps in 0u64..20,
        window in 1u64..200,
        background_pj in 0.0f64..10.0,
    ) {
        let map = AddressMap::paper(1);
        let ctrl = ControllerConfig { queue_capacity: 16, scheduler: policy_of(policy_bit) };
        let mut mc = MemoryController::new(0, StackConfig::paper(), ctrl);
        mc.set_background_energy(Energy::from_pj(background_pj));
        let mut sink = Vec::new();
        for (i, &(block, write_bit)) in batch.iter().enumerate() {
            mc.enqueue(
                MemRequest { addr: block * 64, bytes: 64, kind: kind_of(write_bit), tag: i as u64 },
                &map,
            )
            .expect("queue deep enough for the batch");
        }
        // Step into the middle of service so banks/bus/inflight are in
        // a nontrivial state.
        let mut now = 0u64;
        mc.step(now, &mut sink);
        for _ in 0..warm_steps {
            now += 1;
            mc.step(now, &mut sink);
        }
        // The sanctioned window: strictly before the next event.
        let event = mc.next_event_at(now);
        let gap = if event == u64::MAX { window } else { (event - now).saturating_sub(1) };
        let k = gap.min(window);
        if k == 0 {
            return Ok(()); // an event is due next cycle: nothing to skip
        }

        let mut stepped = mc.clone();
        let mut completions = Vec::new();
        for t in (now + 1)..=(now + k) {
            stepped.step(t, &mut completions);
        }
        prop_assert!(
            completions.is_empty(),
            "the sanctioned window must contain no completions"
        );
        let mut jumped = mc.clone();
        let mut charges = ChargeBatch::new();
        jumped.idle_advance(now + 1, k, &mut charges);
        prop_assert_eq!(
            &stepped, &jumped,
            "idle_advance({}, {}) diverged from {} steps", now + 1, k, k
        );
        // The batched background run must land exactly where k stepped
        // cycles' per-cycle quanta would — and in O(1) meter adds.
        let mut batched = EnergyMeter::new();
        batched.apply_batch(&charges);
        let mut looped = EnergyMeter::new();
        for _ in 0..k {
            looped.add(EnergyCategory::DramBackground, mc.background_energy());
        }
        prop_assert_eq!(&batched, &looped, "background closed form diverged");
        prop_assert!(batched.ops() <= 1, "background charge must be O(1) in k");

        // Resume both live until drained: identical completion streams.
        let mut a_out = Vec::new();
        let mut b_out = Vec::new();
        let mut t = now + k;
        while !(stepped.is_quiescent() && jumped.is_quiescent()) {
            t += 1;
            prop_assert!(t < 1 << 20, "resumed controllers failed to drain");
            stepped.step(t, &mut a_out);
            jumped.step(t, &mut b_out);
        }
        prop_assert_eq!(a_out, b_out, "resumed walks diverged");
        prop_assert_eq!(stepped.stats(), jumped.stats());
    }

    /// `next_event_at` is sound and tight on random workloads: nothing
    /// completes or issues strictly before the promised cycle, and (on
    /// a non-quiescent controller) *something* observable happens at
    /// it.
    #[test]
    fn next_event_at_is_sound_and_tight(
        batch in prop::collection::vec((0u64..256, any::<bool>()), 1..10),
        policy_bit in any::<bool>(),
        warm_steps in 0u64..40,
    ) {
        let map = AddressMap::paper(1);
        let ctrl = ControllerConfig { queue_capacity: 16, scheduler: policy_of(policy_bit) };
        let mut mc = MemoryController::new(0, StackConfig::paper(), ctrl);
        let mut sink = Vec::new();
        for (i, &(block, write_bit)) in batch.iter().enumerate() {
            mc.enqueue(
                MemRequest { addr: block * 64, bytes: 64, kind: kind_of(write_bit), tag: i as u64 },
                &map,
            )
            .expect("queue deep enough");
        }
        let mut now = 0u64;
        mc.step(now, &mut sink);
        for _ in 0..warm_steps {
            now += 1;
            mc.step(now, &mut sink);
        }
        if mc.is_quiescent() {
            prop_assert_eq!(mc.next_event_at(now), u64::MAX);
            return Ok(());
        }
        let event = mc.next_event_at(now);
        prop_assert!(event > now);
        let mut probe = mc.clone();
        let mut out = Vec::new();
        let before = (probe.queued_requests(), probe.inflight_requests());
        for t in (now + 1)..event {
            probe.step(t, &mut out);
            prop_assert!(out.is_empty(), "completion before the promise");
            prop_assert_eq!(
                (probe.queued_requests(), probe.inflight_requests()),
                before,
                "issue before the promise"
            );
        }
        probe.step(event, &mut out);
        let after = (probe.queued_requests(), probe.inflight_requests());
        prop_assert!(
            !out.is_empty() || after != before,
            "nothing happened at the promised cycle {}", event
        );
    }
}
