//! Integration-level behaviour of the memory stack: queueing, bank
//! conflicts and sustained throughput.

use wimnet_memory::{AccessKind, AddressMap, MemoryStack, StackConfig};

fn stack() -> (MemoryStack, AddressMap) {
    (MemoryStack::new(0, StackConfig::paper()), AddressMap::paper(1))
}

#[test]
fn bank_conflicts_serialise_row_misses() {
    let (mut s, map) = stack();
    // Alternate between two rows of the same channel-0 bank: with the
    // stack/channel/column/bank/row interleave, advancing one full
    // bank wheel (4 channels x 32 columns x 8 banks x 64 B) lands on
    // the same bank, next row.
    let row_stride = 4 * 32 * 8 * 64;
    let a = s.access(0, 0, 64, AccessKind::Read, &map);
    let b = s.access(0, row_stride, 64, AccessKind::Read, &map);
    let c = s.access(0, 0, 64, AccessKind::Read, &map);
    assert_ne!(a.location.row, b.location.row);
    assert_eq!(a.location.bank, b.location.bank);
    assert!(
        !a.row_hit() && !b.row_hit() && !c.row_hit(),
        "ping-pong rows never hit"
    );
    assert!(b.complete_at > a.complete_at);
    assert!(c.complete_at > b.complete_at);
}

#[test]
fn streaming_same_row_hits_after_the_first_access() {
    let (mut s, map) = stack();
    // Sequential blocks in one stack rotate channels; pick a fixed
    // channel by striding a full channel wheel.
    let stride = 64 * 4; // stacks=1, channels=4: stays on channel 0
    let mut now = 0;
    let mut hits = 0;
    for i in 0..32u64 {
        let r = s.access(now, i * stride, 64, AccessKind::Read, &map);
        now = r.complete_at;
        hits += u64::from(r.row_hit());
    }
    // The first access opens the row; banks rotate every 4 channel
    // wheels, so hits dominate.
    assert!(hits >= 20, "streaming should mostly hit, got {hits}/32");
    assert!(s.row_hit_rate() > 0.6);
}

#[test]
fn four_channels_give_near_4x_throughput_over_one() {
    let cfg = StackConfig::paper();
    let map = AddressMap::paper(1);
    // Saturate all four channels with independent accesses.
    let mut multi = MemoryStack::new(0, cfg.clone());
    let mut last_completion = 0;
    let accesses = 64u64;
    for i in 0..accesses {
        // Rotate channels via consecutive blocks.
        let r = multi.access(0, i * 64, 64, AccessKind::Read, &map);
        last_completion = last_completion.max(r.complete_at);
    }
    let multi_time = last_completion;

    // Same accesses forced through one channel (stride a channel wheel).
    let mut single = MemoryStack::new(0, cfg);
    let mut last_completion = 0;
    for i in 0..accesses {
        let r = single.access(0, i * 64 * 4, 64, AccessKind::Read, &map);
        last_completion = last_completion.max(r.complete_at);
    }
    let single_time = last_completion;
    assert!(
        multi_time * 3 < single_time,
        "4 channels should be ~4x faster: {multi_time} vs {single_time}"
    );
}

#[test]
fn service_time_bounds_hold_under_random_load() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let (mut s, map) = stack();
    let cfg = StackConfig::paper();
    let mut rng = SmallRng::seed_from_u64(3);
    let mut now = 0u64;
    for _ in 0..500 {
        now += rng.gen_range(0..20);
        let addr = rng.gen_range(0..1u64 << 24) & !63;
        let r = s.access(now, addr, 64, AccessKind::Read, &map);
        let min_service = cfg.read_cas_cycles + cfg.burst_cycles;
        assert!(
            r.complete_at >= now + min_service,
            "completion below the row-hit floor"
        );
        assert!(r.energy.joules() >= 0.0);
    }
    assert_eq!(s.accesses(), 500);
    assert!(s.row_hit_rate() >= 0.0 && s.row_hit_rate() <= 1.0);
}
