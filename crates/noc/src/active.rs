//! Dense active sets for the cycle engine.
//!
//! The engine's inner loop must only visit components that can make
//! progress this cycle: links with flits on the wire or unsaturated
//! bandwidth credit, switches with buffered flits, endpoints with
//! source-queue backlog, input VCs holding flits or a live pipeline
//! stage.  An [`ActiveSet`] tracks such components as a dense index
//! list with O(1) stamped membership, so insertion on the hot path (a
//! flit delivery, a link send) costs one array write and a push, and
//! per-cycle iteration costs O(active) instead of O(total).
//!
//! Members are removed lazily by [`ActiveSet::sweep`], which each cycle
//! retains only the members whose predicate still holds — components
//! quiesce (drain, saturate) and drop out without any bookkeeping at
//! the place that made them quiescent.

/// A dense set of component indices with stamped membership.
#[derive(Debug, Clone)]
pub(crate) struct ActiveSet {
    /// Membership stamp per index.
    stamp: Vec<bool>,
    /// Dense member list, unordered unless [`ActiveSet::sort`] ran;
    /// callers sort when the processing order is observable.
    list: Vec<usize>,
}

impl ActiveSet {
    /// An empty set over indices `0..n`.
    pub(crate) fn new(n: usize) -> Self {
        ActiveSet { stamp: vec![false; n], list: Vec::with_capacity(n) }
    }

    /// A full set over indices `0..n` (used at construction, when every
    /// component still has warm-up work: links accruing initial credit).
    pub(crate) fn full(n: usize) -> Self {
        ActiveSet { stamp: vec![true; n], list: (0..n).collect() }
    }

    /// Inserts `i`; O(1), idempotent.
    #[inline]
    pub(crate) fn insert(&mut self, i: usize) {
        if !self.stamp[i] {
            self.stamp[i] = true;
            self.list.push(i);
        }
    }

    /// Current members, unordered.
    #[inline]
    pub(crate) fn members(&self) -> &[usize] {
        &self.list
    }

    /// Sorts the member list ascending (cheap on the near-sorted small
    /// lists the engine produces; required by order-sensitive
    /// consumers like `RoundRobin::grant_among`).
    pub(crate) fn sort(&mut self) {
        self.list.sort_unstable();
    }

    /// Retains only members for which `still_active` holds, un-stamping
    /// the rest.  O(members).
    pub(crate) fn sweep(&mut self, mut still_active: impl FnMut(usize) -> bool) {
        let stamp = &mut self.stamp;
        self.list.retain(|&i| {
            if still_active(i) {
                true
            } else {
                stamp[i] = false;
                false
            }
        });
    }

    /// Rebuilds a set over `0..n` from a saved member list
    /// (checkpoint restore).  Replaying the members through
    /// [`ActiveSet::insert`] in order reproduces both the stamp array
    /// and the dense list exactly, so post-restore iteration order is
    /// identical to the snapshotted set's.
    pub(crate) fn restore(n: usize, members: &[usize]) -> Self {
        let mut set = ActiveSet::new(n);
        for &i in members {
            set.insert(i);
        }
        set
    }

    /// O(1) membership test (invariant checking; the hot path never
    /// needs it — insert is already idempotent).
    pub(crate) fn contains(&self, i: usize) -> bool {
        self.stamp[i]
    }

    /// Asserts that the stamp array and the dense member list agree:
    /// every stamped index is listed exactly once and vice versa.
    /// O(n); test support.
    pub(crate) fn assert_consistent(&self) {
        let mut seen = vec![false; self.stamp.len()];
        for &i in &self.list {
            assert!(self.stamp[i], "member {i} is not stamped");
            assert!(!seen[i], "member {i} is listed twice");
            seen[i] = true;
        }
        let stamped = self.stamp.iter().filter(|&&s| s).count();
        assert_eq!(stamped, self.list.len(), "stamped count != member count");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_idempotent() {
        let mut s = ActiveSet::new(8);
        s.insert(3);
        s.insert(3);
        s.insert(5);
        assert_eq!(s.members().len(), 2);
    }

    #[test]
    fn sweep_removes_and_allows_reinsert() {
        let mut s = ActiveSet::full(4);
        s.sweep(|i| i % 2 == 0);
        let mut m = s.members().to_vec();
        m.sort_unstable();
        assert_eq!(m, vec![0, 2]);
        s.insert(1);
        assert_eq!(s.members().len(), 3);
        // Still-active members are not duplicated by reinsertion.
        s.insert(0);
        assert_eq!(s.members().len(), 3);
    }

    #[test]
    fn sort_orders_members() {
        let mut s = ActiveSet::new(8);
        for i in [5, 1, 7, 2] {
            s.insert(i);
        }
        s.sort();
        assert_eq!(s.members(), &[1, 2, 5, 7]);
    }
}
