//! Round-robin arbitration, the allocator building block of the switch.

/// A round-robin arbiter over `n` requesters.
///
/// Grants rotate: after requester `i` wins, the next arbitration starts
/// its scan at `i + 1`, providing the strong fairness the shared switch
/// ports need.  Determinism: the same request sets in the same order
/// always produce the same grants.
///
/// # Example
///
/// ```
/// use wimnet_noc::arbiter::RoundRobin;
///
/// let mut arb = RoundRobin::new(3);
/// assert_eq!(arb.grant(|i| i != 1), Some(0));
/// assert_eq!(arb.grant(|_| true), Some(1));
/// assert_eq!(arb.grant(|_| true), Some(2));
/// assert_eq!(arb.grant(|_| false), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRobin {
    n: usize,
    next: usize,
}

impl RoundRobin {
    /// An arbiter over `n` requesters (may be zero; then no grant is ever
    /// issued).
    pub fn new(n: usize) -> Self {
        RoundRobin { n, next: 0 }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when there are no requesters at all.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grants to the first requester at or after the rotation pointer for
    /// which `requesting` returns `true`, advancing the pointer past the
    /// winner.  Returns `None` when nobody requests.
    pub fn grant(&mut self, mut requesting: impl FnMut(usize) -> bool) -> Option<usize> {
        for off in 0..self.n {
            let i = (self.next + off) % self.n;
            if requesting(i) {
                self.next = (i + 1) % self.n;
                return Some(i);
            }
        }
        None
    }

    /// Like [`RoundRobin::grant`], but scans only `candidates` (sorted
    /// ascending, each `< n`).  Equivalent to `grant` whenever
    /// `requesting` would be `false` for every index outside
    /// `candidates` — the switch pre-passes guarantee exactly that, so
    /// arbitration cost drops from O(n) to O(candidates) without
    /// changing a single grant decision.
    pub fn grant_among(
        &mut self,
        candidates: &[usize],
        mut requesting: impl FnMut(usize) -> bool,
    ) -> Option<usize> {
        let split = candidates.partition_point(|&c| c < self.next);
        for &c in candidates[split..].iter().chain(&candidates[..split]) {
            debug_assert!(c < self.n);
            if requesting(c) {
                self.next = (c + 1) % self.n;
                return Some(c);
            }
        }
        None
    }

    /// Like [`RoundRobin::grant_among`], but the candidate set is a bit
    /// mask (bit `i` = requester `i` is a candidate) and `requesting` is
    /// the residual predicate for candidates in the mask.  Equivalent to
    /// `grant` whenever the predicate would be `false` for every index
    /// outside the mask — same rotation, same winner, same pointer
    /// updates, bit for bit; only the scan is bit-parallel.  The batch
    /// engine's fused switch pre-passes build these masks (see
    /// `docs/engine.md`, "Replica batching").
    ///
    /// Requires `n <= 128`.
    pub fn grant_masked(
        &mut self,
        mask: u128,
        mut requesting: impl FnMut(usize) -> bool,
    ) -> Option<usize> {
        debug_assert!(self.n <= 128, "masked arbitration needs n <= 128");
        // Candidates at or after the rotation pointer first (ascending),
        // then the wrapped-around prefix — exactly `grant_among`'s
        // partition-point split.
        let hi = if self.next < 128 { mask & (!0u128 << self.next) } else { 0 };
        let lo = mask & !hi;
        for mut part in [hi, lo] {
            while part != 0 {
                let c = part.trailing_zeros() as usize;
                part &= part - 1;
                if requesting(c) {
                    self.next = (c + 1) % self.n;
                    return Some(c);
                }
            }
        }
        None
    }

    /// The rotation pointer, for checkpointing.
    pub fn cursor(&self) -> usize {
        self.next
    }

    /// Restores the rotation pointer from a [`RoundRobin::cursor`]
    /// snapshot.
    ///
    /// # Panics
    ///
    /// Panics when `cursor` is out of range for a non-empty arbiter.
    pub fn set_cursor(&mut self, cursor: usize) {
        assert!(cursor < self.n.max(1), "round-robin cursor {cursor} out of range");
        self.next = cursor;
    }

    /// Peeks the winner without advancing the pointer.
    pub fn peek(&self, mut requesting: impl FnMut(usize) -> bool) -> Option<usize> {
        for off in 0..self.n {
            let i = (self.next + off) % self.n;
            if requesting(i) {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_after_each_grant() {
        let mut a = RoundRobin::new(4);
        assert_eq!(a.grant(|_| true), Some(0));
        assert_eq!(a.grant(|_| true), Some(1));
        assert_eq!(a.grant(|_| true), Some(2));
        assert_eq!(a.grant(|_| true), Some(3));
        assert_eq!(a.grant(|_| true), Some(0));
    }

    #[test]
    fn skips_non_requesters() {
        let mut a = RoundRobin::new(4);
        assert_eq!(a.grant(|i| i == 2), Some(2));
        assert_eq!(a.grant(|i| i == 2), Some(2));
        assert_eq!(a.grant(|i| i == 0 || i == 1), Some(0));
    }

    #[test]
    fn no_requests_no_grant() {
        let mut a = RoundRobin::new(3);
        assert_eq!(a.grant(|_| false), None);
        // Pointer does not move on a failed arbitration.
        assert_eq!(a.grant(|_| true), Some(0));
    }

    #[test]
    fn fairness_over_many_rounds() {
        let mut a = RoundRobin::new(3);
        let mut wins = [0u32; 3];
        for _ in 0..300 {
            let w = a.grant(|_| true).unwrap();
            wins[w] += 1;
        }
        assert_eq!(wins, [100, 100, 100]);
    }

    #[test]
    fn empty_arbiter_never_grants() {
        let mut a = RoundRobin::new(0);
        assert!(a.is_empty());
        assert_eq!(a.grant(|_| true), None);
    }

    #[test]
    fn grant_masked_matches_grant_among_decision_for_decision() {
        // Drive both arbiters through the same pseudo-random request
        // sequences (candidate masks + a residual predicate) and demand
        // identical winners and pointer evolution at every step.
        let n = 11usize;
        let mut a = RoundRobin::new(n);
        let mut b = RoundRobin::new(n);
        let mut state = 0x5eed_1234_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let mask_bits = rng() & ((1 << n) - 1);
            let pred_bits = rng() & ((1 << n) - 1);
            let candidates: Vec<usize> =
                (0..n).filter(|i| mask_bits >> i & 1 == 1).collect();
            let wa = a.grant_among(&candidates, |i| pred_bits >> i & 1 == 1);
            let wb = b.grant_masked(u128::from(mask_bits), |i| pred_bits >> i & 1 == 1);
            assert_eq!(wa, wb);
            assert_eq!(a, b, "pointer state diverged");
        }
    }

    #[test]
    fn grant_masked_failed_arbitration_leaves_pointer() {
        let mut a = RoundRobin::new(8);
        assert_eq!(a.grant_masked(0b1010, |_| false), None);
        assert_eq!(a.grant_masked(0b1010, |_| true), Some(1));
        // Pointer now 2: wrap-around picks 3 before 1.
        assert_eq!(a.grant_masked(0b1010, |i| i == 1), Some(1));
    }

    #[test]
    fn peek_does_not_advance() {
        let a = RoundRobin::new(2);
        assert_eq!(a.peek(|_| true), Some(0));
        assert_eq!(a.peek(|_| true), Some(0));
    }
}
