//! Error type for the NoC engine.

use std::error::Error;
use std::fmt;

use wimnet_topology::NodeId;

/// Errors raised while building or driving a [`crate::Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NocError {
    /// A configuration value was zero or out of range.
    InvalidConfig {
        /// Human-readable description of the offending parameter.
        what: &'static str,
    },
    /// A packet was injected at a node that does not exist or is not an
    /// endpoint.
    BadEndpoint {
        /// The offending node.
        node: NodeId,
    },
    /// The network made no progress for a long interval while flits were
    /// still in flight — a deadlock or livelock (only possible with
    /// routing policies that are not deadlock-free).
    Stalled {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Flits still buffered in the network.
        flits_in_flight: u64,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            NocError::BadEndpoint { node } => {
                write!(f, "{node} is not a valid traffic endpoint")
            }
            NocError::Stalled { cycle, flits_in_flight } => write!(
                f,
                "network stalled at cycle {cycle} with {flits_in_flight} flits in flight \
                 (deadlock?)"
            ),
        }
    }
}

impl Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NocError::Stalled { cycle: 420, flits_in_flight: 7 };
        let s = format!("{e}");
        assert!(s.contains("420") && s.contains('7'));
        fn is_error<E: Error>(_: &E) {}
        is_error(&e);
    }
}
