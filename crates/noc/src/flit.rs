//! Flow-control units (flits) — the atomic quantum the engine moves.
//!
//! §III.C: "data packets are broken down into flow control units or
//! flits"; §IV fixes 64-flit packets of 32-bit flits.

use serde::{Deserialize, Serialize};
use wimnet_topology::NodeId;

/// Globally unique packet identifier (also the `PktID` of the wireless
/// control packets, §III.D).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PacketId(pub u64);

impl std::fmt::Display for PacketId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pkt{}", self.0)
    }
}

/// Position of a flit within its packet.
///
/// `repr(u8)` + a [`Default`] keep the kind lane of the switches' SoA
/// flit slab (`wimnet_noc::vc::VcFabric`) one dense byte array; the
/// default ([`FlitKind::Body`]) is what unoccupied slab slots hold — it
/// carries no head/tail semantics, so a stale slot can never fabricate
/// a wormhole open or release.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum FlitKind {
    /// First flit: carries the route and allocates VCs.
    Head,
    /// Middle flit: follows the wormhole path.
    #[default]
    Body,
    /// Last flit: releases the path.
    Tail,
    /// Single-flit packet: head and tail at once.
    HeadTail,
}

impl FlitKind {
    /// `true` for flits that open a wormhole path (head or head-tail).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// `true` for flits that close a wormhole path (tail or head-tail).
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// One flow-control unit in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// The packet this flit belongs to.
    pub packet: PacketId,
    /// Head / body / tail marker.
    pub kind: FlitKind,
    /// Index within the packet (head is 0).
    pub seq: u32,
    /// Source endpoint switch.
    pub src: NodeId,
    /// Destination endpoint switch.
    pub dest: NodeId,
    /// Cycle at which the packet was created by the traffic source.
    pub created_at: u64,
}

impl Flit {
    /// Kind of the flit at position `seq` in a packet of `len` flits.
    pub fn kind_for(seq: u32, len: u32) -> FlitKind {
        match (seq, len) {
            (0, 1) => FlitKind::HeadTail,
            (0, _) => FlitKind::Head,
            (s, l) if s + 1 == l => FlitKind::Tail,
            _ => FlitKind::Body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_for_positions() {
        assert_eq!(Flit::kind_for(0, 1), FlitKind::HeadTail);
        assert_eq!(Flit::kind_for(0, 64), FlitKind::Head);
        assert_eq!(Flit::kind_for(1, 64), FlitKind::Body);
        assert_eq!(Flit::kind_for(63, 64), FlitKind::Tail);
    }

    #[test]
    fn head_tail_predicates() {
        assert!(FlitKind::Head.is_head());
        assert!(FlitKind::HeadTail.is_head());
        assert!(!FlitKind::Body.is_head());
        assert!(FlitKind::Tail.is_tail());
        assert!(FlitKind::HeadTail.is_tail());
        assert!(!FlitKind::Head.is_tail());
    }

    #[test]
    fn packet_id_display() {
        assert_eq!(format!("{}", PacketId(42)), "pkt42");
    }
}
