//! Cycle-accurate wormhole network-on-chip engine.
//!
//! This crate is the simulation substrate of the `wimnet` reproduction:
//! a synchronous, deterministic, cycle-stepped model of the paper's
//! interconnect fabric —
//!
//! * **wormhole switching** with per-packet virtual-channel allocation
//!   (§III.C; flow-control classics per the paper's ref \[16\]),
//! * **three-stage pipelined switches** (route compute → virtual-channel
//!   allocation → switch allocation + traversal; ref \[18\]),
//! * **8 virtual channels × 16-flit buffers** per port (§IV),
//! * **credit-based backpressure** on every wired hop,
//! * **rate-limited links** (single-cycle mesh wires, 15 Gbps serial I/O,
//!   128 Gbps wide memory I/O expressed as fractional flits per 2.5 GHz
//!   cycle), and
//! * a **shared-medium extension point** ([`SharedMedium`]) through which
//!   `wimnet-wireless` plugs the 16 Gbps mm-wave channel and its MAC.
//!
//! Energy is charged through `wimnet-energy` as flits move: switch
//! traversals, wire/serial/wide-I/O crossings per link kind, per-cycle
//! leakage, with the wireless categories delegated to the medium.
//!
//! The [`Network`] is built from a `wimnet-topology` layout plus
//! `wimnet-routing` forwarding tables; the experiment driver in
//! `wimnet-core` injects traffic and reads [`NetworkStats`].
//!
//! # Example
//!
//! ```
//! use wimnet_noc::{Network, NocConfig, PacketDesc};
//! use wimnet_routing::{Routes, RoutingPolicy};
//! use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout};
//!
//! let layout = MultichipLayout::build(
//!     &MultichipConfig::xcym(4, 4, Architecture::Interposer),
//! )?;
//! let routes = Routes::build(layout.graph(), RoutingPolicy::default())?;
//! let mut net = Network::new(&layout, routes, NocConfig::paper())?;
//!
//! // Send one 64-flit packet from core 0 to memory stack 3.
//! let src = layout.core_nodes()[0];
//! let dst = layout.memory_nodes()[3];
//! net.inject(PacketDesc::new(src, dst, 64, 0));
//! for _ in 0..500 {
//!     net.step();
//! }
//! assert_eq!(net.stats().packets_delivered(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod active;
pub mod arbiter;
pub mod error;
pub mod flit;
pub mod link;
pub mod network;
pub mod packet;
pub mod radio;
pub mod ring;
pub mod stats;
pub mod switch;
pub mod vc;

pub use error::NocError;
pub use flit::{Flit, FlitKind, PacketId};
pub use link::{Link, LinkDelivery};
pub use network::{Network, NetworkState, NocConfig, RadioTxState, WirelessMode};
pub use packet::{ArrivedPacket, PacketDesc, Reassembler};
pub use radio::{MediumActions, MediumView, RadioId, SharedMedium};
pub use ring::RingSlab;
pub use stats::NetworkStats;
pub use switch::{SwitchState, VcState};
pub use vc::{VcFabric, VcStage};
