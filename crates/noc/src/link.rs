//! Wired links: rate-limited, latency-pipelined simplex channels.
//!
//! Bandwidths are expressed in flits per 2.5 GHz cycle relative to the
//! 32-bit flit (80 Gbps per unit rate):
//!
//! | kind | paper bandwidth | rate (flits/cycle) |
//! |---|---|---|
//! | mesh / interposer wire | one flit per cycle (§IV) | 1.0 |
//! | serial chip-to-chip I/O | 15 Gbps (ref \[8\]) | 0.1875 |
//! | wide memory I/O | 128 Gbps (ref \[19\]) | 1.6 |
//!
//! Fractional rates use an accumulator: a 0.1875-rate link earns 0.1875
//! flit-credits per cycle and ships a flit whenever a whole credit is
//! available, which reproduces serialisation delay without event queues.
//!
//! A `Link` owns only its credit state; the flits actually on the wire
//! live in a network-owned [`RingSlab`] with one lane per link (see
//! `docs/engine.md`, "Ring slabs") so every in-flight pipeline in the
//! system shares one contiguous allocation.  [`Link::send`] and the
//! arrival drains take the slab and the link's lane explicitly.

use serde::{Deserialize, Serialize};
use wimnet_topology::{EdgeId, EdgeKind};

use crate::flit::Flit;
use crate::ring::RingSlab;

/// A flit due to arrive at the downstream switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDelivery {
    /// The flit being carried.
    pub flit: Flit,
    /// Input VC at the downstream port it was admitted to.
    pub vc: usize,
    /// Cycle at which it reaches the downstream buffer.
    pub arrives_at: u64,
}

/// One simplex wired channel between two switch ports.
#[derive(Debug, Clone)]
pub struct Link {
    edge: EdgeId,
    kind: EdgeKind,
    length_mm: f64,
    rate: f64,
    latency: u64,
    credit: f64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate` and `rate` is finite.
    pub fn new(edge: EdgeId, kind: EdgeKind, length_mm: f64, rate: f64, latency: u64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "link rate must be positive");
        Link { edge, kind, length_mm, rate, latency, credit: 0.0 }
    }

    /// The paper's per-kind rate (flits per 2.5 GHz cycle of a 32-bit
    /// flit) and propagation latency in cycles.
    ///
    /// Mesh and interposer wires move one flit per cycle ("all intra-chip
    /// wired links are considered to be single-cycle links", §IV);
    /// interposer hops pay one extra cycle for the µbump crossing; serial
    /// and wide I/O rates follow the cited bandwidths with short
    /// propagation pipelines.
    pub fn paper_rate_latency(kind: EdgeKind) -> (f64, u64) {
        match kind {
            EdgeKind::Mesh => (1.0, 1),
            // Interposer traces are several millimetres of fine-pitch
            // RC-limited wire: half the on-die flit rate plus a µbump
            // crossing cycle (cf. the paper's ref [2] discussion of
            // interposer wire speed).
            EdgeKind::Interposer => (0.5, 2),
            EdgeKind::SerialIo => (15.0 / 80.0, 2),
            EdgeKind::WideIo => (128.0 / 80.0, 1),
            // The wireless channel is not a wired link; its 16 Gbps rate
            // is enforced by the MAC in `wimnet-wireless`.
            EdgeKind::Wireless => (16.0 / 80.0, 1),
        }
    }

    /// The topology edge this link realises.
    pub fn edge(&self) -> EdgeId {
        self.edge
    }

    /// The physical kind of the link.
    pub fn kind(&self) -> EdgeKind {
        self.kind
    }

    /// Short kind name for telemetry/report tables.
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            EdgeKind::Mesh => "mesh",
            EdgeKind::SerialIo => "serial",
            EdgeKind::WideIo => "wide-io",
            EdgeKind::Wireless => "wireless",
            EdgeKind::Interposer => "interposer",
        }
    }

    /// Physical length in millimetres.
    pub fn length_mm(&self) -> f64 {
        self.length_mm
    }

    /// Bandwidth in flits per cycle.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Propagation latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Steady-state bound on flits simultaneously on the wire — the ring
    /// lane capacity the owning network sizes for this link.  A flit
    /// stays in flight at most `latency + 1` cycles and at most
    /// `ceil(rate)` are admitted per cycle; the slack covers the
    /// admission-before-drain cycle.  Lanes grow if ever exceeded, so
    /// this is a sizing hint, not a correctness bound.
    pub fn flight_capacity(&self) -> usize {
        ((self.latency as usize + 2) * (self.rate.ceil() as usize).max(1)).max(4)
    }

    /// Called once per cycle *before* any admission: accrues bandwidth
    /// credit.  Credit is capped at one cycle's worth above a whole flit
    /// so idle links cannot bank unbounded bursts.
    #[inline]
    pub fn begin_cycle(&mut self) {
        self.credit = (self.credit + self.rate).min(self.credit_cap());
    }

    #[inline]
    fn credit_cap(&self) -> f64 {
        self.rate.max(1.0) + self.rate
    }

    /// `true` when per-cycle processing is a no-op: nothing in flight
    /// (`in_flight_empty`, from the owning slab's lane) and the bandwidth
    /// credit has saturated at its cap.  The active-set engine skips
    /// quiescent links entirely; because `begin_cycle` clamps credit at
    /// exactly the cap, skipping it on a saturated link leaves
    /// bit-identical state.
    #[inline]
    pub fn is_quiescent(&self, in_flight_empty: bool) -> bool {
        in_flight_empty && self.credit >= self.credit_cap()
    }

    /// The accrued bandwidth credit — the link's only dynamic state
    /// (in-flight flits live in the network-owned slab).  Checkpoint
    /// accessor; pairs with [`Link::set_credit`].
    pub fn credit(&self) -> f64 {
        self.credit
    }

    /// Restores the bandwidth credit from a [`Link::credit`] snapshot.
    pub fn set_credit(&mut self, credit: f64) {
        self.credit = credit;
    }

    /// `true` if the link can accept one more flit this cycle.
    #[inline]
    pub fn can_accept(&self) -> bool {
        self.credit >= 1.0
    }

    /// Whole flits the link can still accept this cycle.
    #[inline]
    pub fn available(&self) -> u32 {
        self.credit.max(0.0) as u32
    }

    /// Admits a flit onto the wire: consumes one bandwidth credit and
    /// appends the delivery to this link's lane of the in-flight slab.
    ///
    /// # Panics
    ///
    /// Panics if called while [`Link::can_accept`] is false.
    #[inline]
    pub fn send(
        &mut self,
        flight: &mut RingSlab<LinkDelivery>,
        lane: usize,
        flit: Flit,
        vc: usize,
        now: u64,
    ) {
        assert!(self.can_accept(), "link admission without bandwidth credit");
        self.credit -= 1.0;
        flight.push_back_growing(
            lane,
            LinkDelivery { flit, vc, arrives_at: now + self.latency },
        );
    }

    /// Removes all flits of `lane` that have arrived by `now`, appending
    /// them to `out` in admission order (which preserves per-packet flit
    /// order — same path, same link).  The caller owns `out` so the
    /// per-cycle hot path never allocates.
    #[inline]
    pub fn take_arrivals_into(
        flight: &mut RingSlab<LinkDelivery>,
        lane: usize,
        now: u64,
        out: &mut Vec<LinkDelivery>,
    ) {
        while let Some(d) = flight.front(lane) {
            if d.arrives_at <= now {
                out.push(flight.pop_front(lane).expect("front exists"));
            } else {
                break;
            }
        }
    }

    /// Removes and returns all flits of `lane` that have arrived by
    /// `now`.  Allocating convenience wrapper over
    /// [`Link::take_arrivals_into`].
    pub fn take_arrivals(
        flight: &mut RingSlab<LinkDelivery>,
        lane: usize,
        now: u64,
    ) -> Vec<LinkDelivery> {
        let mut out = Vec::new();
        Self::take_arrivals_into(flight, lane, now, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, PacketId};
    use wimnet_topology::NodeId;

    fn flit(seq: u32) -> Flit {
        Flit {
            packet: PacketId(1),
            kind: FlitKind::Body,
            seq,
            src: NodeId(0),
            dest: NodeId(1),
            created_at: 0,
        }
    }

    const FILL: LinkDelivery = LinkDelivery {
        flit: Flit {
            packet: PacketId(0),
            kind: FlitKind::Body,
            seq: 0,
            src: NodeId(0),
            dest: NodeId(0),
            created_at: 0,
        },
        vc: 0,
        arrives_at: 0,
    };

    fn mesh_link() -> (Link, RingSlab<LinkDelivery>) {
        let l = Link::new(EdgeId(0), EdgeKind::Mesh, 2.5, 1.0, 1);
        let ring = RingSlab::uniform(1, l.flight_capacity(), FILL);
        (l, ring)
    }

    #[test]
    fn unit_rate_link_moves_one_flit_per_cycle() {
        let (mut l, mut ring) = mesh_link();
        for now in 0..5u64 {
            l.begin_cycle();
            assert!(l.can_accept());
            l.send(&mut ring, 0, flit(now as u32), 0, now);
            assert!(!l.can_accept(), "only one flit per cycle at rate 1");
            let arrivals = Link::take_arrivals(&mut ring, 0, now + 1);
            assert_eq!(arrivals.len(), 1);
            assert_eq!(arrivals[0].arrives_at, now + 1);
        }
    }

    #[test]
    fn serial_rate_paces_roughly_five_cycles_per_flit() {
        // 15/80 flits per cycle = one flit every 5.33 cycles.
        let mut l = Link::new(EdgeId(0), EdgeKind::SerialIo, 12.0, 15.0 / 80.0, 2);
        let mut ring = RingSlab::uniform(1, l.flight_capacity(), FILL);
        let mut sent = 0u32;
        for now in 0..80u64 {
            l.begin_cycle();
            Link::take_arrivals(&mut ring, 0, now); // drain so the lane stays small
            if l.can_accept() {
                l.send(&mut ring, 0, flit(sent), 0, now);
                sent += 1;
            }
        }
        // 80 cycles * 0.1875 = 15 flits.
        assert_eq!(sent, 15);
    }

    #[test]
    fn wide_io_exceeds_one_flit_per_cycle() {
        let mut l = Link::new(EdgeId(0), EdgeKind::WideIo, 5.0, 1.6, 1);
        let mut ring = RingSlab::uniform(1, l.flight_capacity(), FILL);
        let mut sent = 0u32;
        for now in 0..10u64 {
            l.begin_cycle();
            Link::take_arrivals(&mut ring, 0, now);
            while l.can_accept() {
                l.send(&mut ring, 0, flit(sent), 0, now);
                sent += 1;
            }
        }
        // 10 cycles * 1.6 = 16 flits.
        assert_eq!(sent, 16);
    }

    #[test]
    fn latency_delays_delivery_in_order() {
        let mut l = Link::new(EdgeId(0), EdgeKind::Interposer, 4.0, 1.0, 3);
        let mut ring = RingSlab::uniform(1, l.flight_capacity(), FILL);
        l.begin_cycle();
        l.send(&mut ring, 0, flit(0), 2, 10);
        assert!(Link::take_arrivals(&mut ring, 0, 12).is_empty());
        let a = Link::take_arrivals(&mut ring, 0, 13);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].vc, 2);
        assert!(ring.is_empty(0));
    }

    #[test]
    fn idle_links_do_not_bank_unbounded_credit() {
        let (mut l, mut ring) = mesh_link();
        for _ in 0..100 {
            l.begin_cycle();
        }
        assert!(l.is_quiescent(ring.is_empty(0)), "saturated idle link is quiescent");
        let mut burst = 0;
        while l.can_accept() {
            l.send(&mut ring, 0, flit(burst), 0, 100);
            burst += 1;
        }
        assert!(burst <= 2, "burst of {burst} after long idle");
        assert!(!l.is_quiescent(ring.is_empty(0)));
    }

    #[test]
    fn paper_rates_match_cited_bandwidths() {
        let (r, _) = Link::paper_rate_latency(EdgeKind::SerialIo);
        assert!((r * 80.0 - 15.0).abs() < 1e-9);
        let (r, _) = Link::paper_rate_latency(EdgeKind::WideIo);
        assert!((r * 80.0 - 128.0).abs() < 1e-9);
        let (r, _) = Link::paper_rate_latency(EdgeKind::Wireless);
        assert!((r * 80.0 - 16.0).abs() < 1e-9);
        let (r, lat) = Link::paper_rate_latency(EdgeKind::Mesh);
        assert_eq!((r, lat), (1.0, 1));
    }

    #[test]
    #[should_panic]
    fn sending_without_credit_panics() {
        let (mut l, mut ring) = mesh_link();
        l.begin_cycle();
        l.send(&mut ring, 0, flit(0), 0, 0);
        l.send(&mut ring, 0, flit(1), 0, 0);
    }
}
