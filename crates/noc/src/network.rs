//! The network: switches + links + radios stepped one cycle at a time.

use std::collections::VecDeque;

use wimnet_energy::{EnergyCategory, EnergyMeter, EnergyModel, Power};
use wimnet_routing::Routes;
use wimnet_topology::{EdgeKind, MultichipLayout};

use crate::arbiter::RoundRobin;
use crate::error::NocError;
use crate::flit::{Flit, PacketId};
use crate::link::Link;
use crate::packet::{ArrivedPacket, PacketDesc, Reassembler};
use crate::radio::{
    MediumAction, MediumActions, MediumView, RadioId, RadioTx, RadioView, RxVcView,
    SharedMedium, TxVcView,
};
use crate::stats::NetworkStats;
use crate::switch::{OutPortSpec, RouteEntry, Switch};

/// How wireless edges of the topology are realised by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WirelessMode {
    /// Radio ports drained by an attached [`SharedMedium`] (the §III.D
    /// MAC models — serialized channel or per-WI concurrent links).
    Medium,
    /// Each wireless edge becomes an ordinary point-to-point link of the
    /// given rate/latency, with per-flit energy charged at the
    /// transceiver's pJ/bit.  This is the model the paper's *evaluation*
    /// magnitudes imply (see `wimnet-wireless` and DESIGN.md §3); MAC
    /// overhead is not modelled here.
    PointToPoint {
        /// Link bandwidth in flits per cycle.
        rate: f64,
        /// Link latency in cycles.
        latency: u64,
        /// Total flits per cycle the whole wireless band can carry
        /// concurrently (channelisation of the 16 GHz band).  This is
        /// what keeps "the physical bandwidth of the wireless
        /// interconnections … constant regardless of the number of
        /// chips" (§IV.C).
        max_concurrent: u32,
    },
}

/// Engine configuration: the paper's §IV simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NocConfig {
    /// Virtual channels per port (paper: 8).
    pub vcs: usize,
    /// Buffer depth per VC in flits (paper: 16).
    pub buf_depth: usize,
    /// Flit width in bits (paper: 32).
    pub flit_bits: u32,
    /// Depth of the wireless-interface transmit buffers per VC.  The
    /// control-packet MAC works with the standard depth; the token MAC
    /// baseline needs whole packets buffered (§III.D), so its experiments
    /// raise this.
    pub radio_tx_depth: usize,
    /// How wireless edges are realised.
    pub wireless_mode: WirelessMode,
    /// Technology energy constants.
    pub energy: EnergyModel,
}

impl NocConfig {
    /// The paper's configuration: 8 VCs × 16-flit buffers, 32-bit flits,
    /// 65 nm energy model at 2.5 GHz.
    pub fn paper() -> Self {
        NocConfig {
            vcs: 8,
            buf_depth: 16,
            flit_bits: 32,
            radio_tx_depth: 16,
            wireless_mode: WirelessMode::Medium,
            energy: EnergyModel::paper_65nm(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`NocError::InvalidConfig`] when a field is zero.
    pub fn validate(&self) -> Result<(), NocError> {
        if self.vcs == 0 {
            return Err(NocError::InvalidConfig { what: "vcs must be positive" });
        }
        if self.buf_depth == 0 {
            return Err(NocError::InvalidConfig { what: "buf_depth must be positive" });
        }
        if self.flit_bits == 0 {
            return Err(NocError::InvalidConfig { what: "flit_bits must be positive" });
        }
        if self.radio_tx_depth == 0 {
            return Err(NocError::InvalidConfig {
                what: "radio_tx_depth must be positive",
            });
        }
        Ok(())
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig::paper()
    }
}

/// Where credits for a freed input-VC slot must be returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Upstream {
    /// Local injection port: the injector checks space directly.
    Local,
    /// A wired link from another switch's output port.
    Wired { switch: usize, port: usize },
    /// The wireless medium: the MAC reads occupancy from the view.
    Radio,
}

/// The assembled multichip network.
///
/// See the crate-level example for typical use: build from a layout and
/// routes, optionally [`Network::attach_medium`] for wireless
/// architectures, then [`Network::inject`] and [`Network::step`].
pub struct Network {
    cfg: NocConfig,
    now: u64,
    switches: Vec<Switch>,
    lut: Vec<Vec<RouteEntry>>,
    links: Vec<Link>,
    link_dst: Vec<(usize, usize)>,
    out_link: Vec<Vec<Option<usize>>>,
    /// Per switch, per port: does this port transmit on the shared
    /// wireless band (point-to-point mode only)?
    band_port: Vec<Vec<bool>>,
    upstream: Vec<Vec<Upstream>>,
    radios: Vec<RadioTx>,
    radio_of_switch: Vec<Option<(RadioId, usize)>>,
    radio_by_node: Vec<Option<RadioId>>,
    media: Vec<Box<dyn SharedMedium>>,
    inj_pending: Vec<VecDeque<Flit>>,
    inj_active_vc: Vec<Option<usize>>,
    inj_rr: Vec<RoundRobin>,
    next_packet: u64,
    reassembler: Reassembler,
    arrivals: Vec<ArrivedPacket>,
    stats: NetworkStats,
    meter: EnergyMeter,
    switch_static: Power,
    serial_static: Power,
    wireless_idle_static: Power,
    flits_in_network: u64,
    last_progress: u64,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("now", &self.now)
            .field("switches", &self.switches.len())
            .field("links", &self.links.len())
            .field("radios", &self.radios.len())
            .field("media", &self.media.len())
            .field("flits_in_network", &self.flits_in_network)
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Builds the cycle-accurate network for `layout` with forwarding
    /// tables `routes`.
    ///
    /// # Errors
    ///
    /// [`NocError::InvalidConfig`] for bad configs or when `routes` does
    /// not cover the layout's graph.
    pub fn new(
        layout: &MultichipLayout,
        routes: Routes,
        cfg: NocConfig,
    ) -> Result<Self, NocError> {
        cfg.validate()?;
        let graph = layout.graph();
        if routes.node_count() != graph.node_count() {
            return Err(NocError::InvalidConfig {
                what: "routes were built for a different graph",
            });
        }
        let n = graph.node_count();

        let p2p = matches!(cfg.wireless_mode, WirelessMode::PointToPoint { .. });

        // Radios, in WiId order (RadioId == WiId index by construction).
        // Point-to-point mode needs no radios: wireless edges become
        // ordinary links below.
        let mut radio_of_switch: Vec<Option<(RadioId, usize)>> = vec![None; n];
        let mut radio_by_node: Vec<Option<RadioId>> = vec![None; n];
        let mut radios = Vec::new();
        if !p2p {
            for wi in layout.wireless_interfaces() {
                let rid = RadioId(wi.id.index());
                radio_by_node[wi.node.index()] = Some(rid);
                radios.push(RadioTx::new(wi.node, cfg.vcs, cfg.radio_tx_depth));
            }
        }

        // Ports: 0 = local, then wired edges in adjacency order, then the
        // radio port for WI switches.
        let mut switches = Vec::with_capacity(n);
        let mut out_link: Vec<Vec<Option<usize>>> = Vec::with_capacity(n);
        let mut band_port: Vec<Vec<bool>> = Vec::with_capacity(n);
        let mut upstream: Vec<Vec<Upstream>> = Vec::with_capacity(n);
        let mut links: Vec<Link> = Vec::new();
        let mut link_dst: Vec<(usize, usize)> = Vec::new();
        // edge -> (port at a, port at b) for wired edges.
        let mut port_of_edge: Vec<Option<(usize, usize)>> = vec![None; graph.edge_count()];

        // First pass: decide port numbering.
        let mut wired_ports: Vec<Vec<usize>> = vec![Vec::new(); n]; // edge ids in port order
        for node in graph.node_ids() {
            for &(_, eid) in graph.neighbors(node) {
                let e = graph.edge(eid).expect("edge exists");
                if e.kind != EdgeKind::Wireless || p2p {
                    wired_ports[node.index()].push(eid.index());
                }
            }
        }
        for node in graph.node_ids() {
            let ni = node.index();
            for (k, &eid) in wired_ports[ni].iter().enumerate() {
                let port = 1 + k;
                let e = graph.edge(wimnet_topology::EdgeId(eid)).expect("edge exists");
                let slot = &mut port_of_edge[eid];
                if node == e.a {
                    match slot {
                        Some((pa, _)) => *pa = port,
                        None => *slot = Some((port, usize::MAX)),
                    }
                } else {
                    match slot {
                        Some((_, pb)) => *pb = port,
                        None => *slot = Some((usize::MAX, port)),
                    }
                }
            }
        }

        // Second pass: build switches and links.
        for node in graph.node_ids() {
            let ni = node.index();
            let wired = &wired_ports[ni];
            let has_radio = radio_by_node[ni].is_some();
            let port_count = 1 + wired.len() + usize::from(has_radio);

            let mut specs = Vec::with_capacity(port_count);
            // Core ejection drains one flit per cycle; a memory logic
            // die sinks two — it must at least absorb its own 1.6
            // flit/cycle wide I/O (the four DRAM channels behind it
            // take 128 Gbps in aggregate, §IV.A).
            let sink_grants = match graph.node(node).expect("node exists").kind {
                wimnet_topology::NodeKind::MemoryLogicDie { .. } => 2,
                wimnet_topology::NodeKind::Core { .. } => 1,
            };
            specs.push(OutPortSpec {
                credit: cfg.buf_depth as u32,
                is_sink: true,
                max_grants: sink_grants,
            });
            let mut node_out_link = vec![None; port_count];
            let mut node_upstream = vec![Upstream::Local; port_count];

            for (k, &eid) in wired.iter().enumerate() {
                let port = 1 + k;
                let e = graph.edge(wimnet_topology::EdgeId(eid)).expect("edge exists");
                let (rate, latency) = match (e.kind, cfg.wireless_mode) {
                    (
                        EdgeKind::Wireless,
                        WirelessMode::PointToPoint { rate, latency, .. },
                    ) => (rate, latency),
                    _ => Link::paper_rate_latency(e.kind),
                };
                specs.push(OutPortSpec {
                    credit: cfg.buf_depth as u32,
                    is_sink: false,
                    max_grants: rate.ceil().max(1.0) as u32,
                });
                // Outgoing link from this node over edge eid.
                let (pa, pb) = port_of_edge[eid].expect("both endpoints numbered");
                let (dst_sw, dst_port) = if node == e.a {
                    (e.b.index(), pb)
                } else {
                    (e.a.index(), pa)
                };
                let li = links.len();
                links.push(Link::new(
                    wimnet_topology::EdgeId(eid),
                    e.kind,
                    e.length_mm,
                    rate,
                    latency,
                ));
                link_dst.push((dst_sw, dst_port));
                node_out_link[port] = Some(li);
                // The reverse link fills the upstream entry of this port.
                node_upstream[port] = Upstream::Wired {
                    switch: dst_sw,
                    port: dst_port,
                };
            }
            if has_radio {
                let port = port_count - 1;
                let rid = radio_by_node[ni].expect("has radio");
                specs.push(OutPortSpec {
                    credit: cfg.radio_tx_depth as u32,
                    is_sink: false,
                    max_grants: 1,
                });
                node_upstream[port] = Upstream::Radio;
                radio_of_switch[ni] = Some((rid, port));
            }
            let node_band: Vec<bool> = (0..port_count)
                .map(|p| {
                    node_out_link[p]
                        .map(|li| links[li].kind() == EdgeKind::Wireless)
                        .unwrap_or(false)
                })
                .collect();
            switches.push(Switch::new(node, cfg.vcs, cfg.buf_depth, &specs));
            out_link.push(node_out_link);
            band_port.push(node_band);
            upstream.push(node_upstream);
        }

        // Upstream entries above point at the *destination* of our
        // outgoing link; what we need is the *source* of the incoming
        // link per port.  For wired edges both directions exist and the
        // port numbering is symmetric per endpoint, so incoming on port p
        // of node x comes from the peer's port that carries the same
        // edge.  Recompute cleanly:
        for node in graph.node_ids() {
            let ni = node.index();
            for (k, &eid) in wired_ports[ni].iter().enumerate() {
                let port = 1 + k;
                let e = graph.edge(wimnet_topology::EdgeId(eid)).expect("edge exists");
                let (pa, pb) = port_of_edge[eid].expect("numbered");
                let (src_sw, src_port) = if node == e.a {
                    (e.b.index(), pb)
                } else {
                    (e.a.index(), pa)
                };
                upstream[ni][port] = Upstream::Wired { switch: src_sw, port: src_port };
            }
        }

        // Forwarding LUTs.
        let mut lut = Vec::with_capacity(n);
        for node in graph.node_ids() {
            let ni = node.index();
            let mut rows = Vec::with_capacity(n);
            for dest in graph.node_ids() {
                if dest == node {
                    rows.push(RouteEntry { port: 0, next: node });
                    continue;
                }
                let (next, eid) = routes
                    .next_hop(node, dest)
                    .expect("complete forwarding tables");
                let e = graph.edge(eid).expect("edge exists");
                let port = if e.kind == EdgeKind::Wireless && !p2p {
                    radio_of_switch[ni]
                        .expect("wireless next hop implies a radio port")
                        .1
                } else {
                    let (pa, pb) = port_of_edge[eid.index()].expect("wired edge numbered");
                    if node == e.a {
                        pa
                    } else {
                        pb
                    }
                };
                rows.push(RouteEntry { port, next });
            }
            lut.push(rows);
        }

        // Static power: switches (radio TX buffers scale the per-port
        // share by their depth) and serial I/O endpoints.
        let mut switch_static = Power::ZERO;
        for sw in &switches {
            switch_static += cfg.energy.switch_static(sw.port_count());
        }
        let depth_ratio = cfg.radio_tx_depth as f64 / cfg.buf_depth as f64;
        for _ in &radios {
            switch_static += cfg.energy.switch_static_per_port * depth_ratio;
        }
        let mut serial_static = Power::ZERO;
        for _ in graph.edges_of_kind(EdgeKind::SerialIo) {
            serial_static += cfg.energy.serial_io_static;
        }
        // In point-to-point mode the WI transceivers' always-on front
        // ends are charged here (no medium exists to account for them).
        let wireless_idle_static = if p2p {
            cfg.energy.wireless_idle * layout.wireless_interfaces().len() as f64
        } else {
            Power::ZERO
        };

        Ok(Network {
            inj_pending: vec![VecDeque::new(); n],
            inj_active_vc: vec![None; n],
            inj_rr: (0..n).map(|_| RoundRobin::new(cfg.vcs)).collect(),
            cfg,
            now: 0,
            switches,
            lut,
            links,
            link_dst,
            out_link,
            band_port,
            upstream,
            radios,
            radio_of_switch,
            radio_by_node,
            media: Vec::new(),
            next_packet: 0,
            reassembler: Reassembler::new(),
            arrivals: Vec::new(),
            stats: NetworkStats::new(),
            meter: EnergyMeter::new(),
            switch_static,
            serial_static,
            wireless_idle_static,
            flits_in_network: 0,
            last_progress: 0,
        })
    }

    /// Attaches a shared medium (the wireless channel + MAC).
    pub fn attach_medium(&mut self, medium: Box<dyn SharedMedium>) {
        self.media.push(medium);
    }

    /// The engine configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// The current cycle (number of completed [`Network::step`] calls).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of radios.
    pub fn radio_count(&self) -> usize {
        self.radios.len()
    }

    /// Statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Energy meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Charges energy from a component outside the engine (memory stack
    /// service, for example) so the meter stays the single total.
    pub fn charge(&mut self, category: EnergyCategory, energy: wimnet_energy::Energy) {
        self.meter.add(category, energy);
    }

    /// Opens the measurement window now: resets window statistics and the
    /// energy meter (warmup energy is discarded, as in the paper).
    pub fn begin_measurement(&mut self) {
        self.stats.begin_measurement(self.now);
        self.meter.clear();
    }

    /// Flits accepted into the network and not yet delivered (excludes
    /// source-queue backlog).
    pub fn flits_in_flight(&self) -> u64 {
        self.flits_in_network
    }

    /// Flits generated but still waiting in source queues.
    pub fn source_backlog(&self) -> u64 {
        self.inj_pending.iter().map(|q| q.len() as u64).sum()
    }

    /// Flits waiting in one endpoint's source queue.
    pub fn source_backlog_at(&self, node: wimnet_topology::NodeId) -> u64 {
        self.inj_pending[node.index()].len() as u64
    }

    /// `true` if flits are in flight but nothing has moved for
    /// `threshold` cycles — the deadlock watchdog.
    pub fn is_stalled(&self, threshold: u64) -> bool {
        self.flits_in_network > 0 && self.now.saturating_sub(self.last_progress) > threshold
    }

    /// Queues a packet for injection at its source.  Returns the packet
    /// id.
    ///
    /// # Panics
    ///
    /// Panics if the source or destination is out of range.
    pub fn inject(&mut self, desc: PacketDesc) -> PacketId {
        assert!(desc.src.index() < self.switches.len(), "bad source");
        assert!(desc.dest.index() < self.switches.len(), "bad destination");
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        let q = &mut self.inj_pending[desc.src.index()];
        q.extend(desc.flits_for(id));
        self.stats.on_inject(desc.flits);
        id
    }

    /// Packets delivered since the last drain.
    pub fn drain_arrivals(&mut self) -> Vec<ArrivedPacket> {
        std::mem::take(&mut self.arrivals)
    }

    /// Advances the network by `cycles` clock cycles.
    pub fn run_for(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Steps until every injected flit has been delivered (sources empty
    /// and nothing in flight) or `max_cycles` elapse.  Returns `true`
    /// when fully drained.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.flits_in_network == 0 && self.source_backlog() == 0 {
                return true;
            }
            self.step();
        }
        self.flits_in_network == 0 && self.source_backlog() == 0
    }

    /// Advances the network by one clock cycle.
    pub fn step(&mut self) {
        let now = self.now;

        // Phase 0: links accrue bandwidth and deliver due flits.
        for li in 0..self.links.len() {
            self.links[li].begin_cycle();
            let arrivals = self.links[li].take_arrivals(now);
            if !arrivals.is_empty() {
                let (sw, port) = self.link_dst[li];
                for d in arrivals {
                    self.switches[sw].deliver(port, d.vc, d.flit);
                }
            }
        }

        // Phase 1: injection (one flit per endpoint per cycle).
        self.pump_injection();

        // Phase 2/3: RC + VA on every switch; resolve radio targets.
        for si in 0..self.switches.len() {
            let lut_row = std::mem::take(&mut self.lut[si]);
            let grants = self.switches[si]
                .alloc_phase(now, &|dest| lut_row[dest.index()]);
            for g in &grants {
                if let Some((rid, radio_port)) = self.radio_of_switch[si] {
                    if g.out_port == radio_port {
                        let next = lut_row[g.dest.index()].next;
                        let target = self.radio_by_node[next.index()]
                            .expect("wireless next hop hosts a radio");
                        self.radios[rid.index()].target_by_vc[g.out_vc] = Some(target);
                    }
                }
            }
            self.lut[si] = lut_row;
        }

        // Phase 4: SA/ST per switch; route the winning flits.  The
        // shared wireless band has a global per-cycle flit budget in
        // point-to-point mode; rotating the switch processing order
        // keeps band allocation fair (processing order has no other
        // observable effect — all per-switch work is local and credits
        // land at the end of the cycle).
        let mut band_budget = match self.cfg.wireless_mode {
            WirelessMode::PointToPoint { max_concurrent, .. } => max_concurrent,
            WirelessMode::Medium => u32::MAX,
        };
        let mut credit_queue: Vec<(usize, usize, usize)> = Vec::new();
        let n_switches = self.switches.len();
        let offset = (now % n_switches as u64) as usize;
        for idx in 0..n_switches {
            let si = (idx + offset) % n_switches;
            let ports = self.switches[si].port_count();
            let mut avail = Vec::with_capacity(ports);
            for p in 0..ports {
                let a = match self.out_link[si].get(p).copied().flatten() {
                    Some(li) => self.links[li].available(),
                    None => u32::MAX, // local sink / radio: credits gate
                };
                avail.push(a);
            }
            let moves = self.switches[si].st_phase(
                now,
                &avail,
                &self.band_port[si],
                &mut band_budget,
            );
            for m in moves {
                self.last_progress = now;
                self.meter.add(
                    EnergyCategory::SwitchDynamic,
                    self.cfg.energy.switch_traversal(self.cfg.flit_bits.into()),
                );
                // Credit back upstream for the freed input slot.
                if let Upstream::Wired { switch, port } = self.upstream[si][m.in_port] {
                    credit_queue.push((switch, port, m.in_vc));
                }
                if m.out_port == 0 {
                    // Ejection: the flit reaches the attached endpoint
                    // after the one-cycle switch traversal.
                    if let Some(p) = self.reassembler.push(m.flit, now + 1) {
                        self.stats.on_deliver(&p);
                        self.arrivals.push(p);
                    }
                    self.flits_in_network -= 1;
                } else if Some(m.out_port)
                    == self.radio_of_switch[si].map(|(_, port)| port)
                {
                    let (rid, _) = self.radio_of_switch[si].expect("radio port");
                    let radio = &mut self.radios[rid.index()];
                    let target = radio.target_by_vc[m.out_vc]
                        .expect("VA set a target before ST");
                    assert!(
                        radio.vcs[m.out_vc].free_space() > 0,
                        "radio TX overflow: credit protocol violated"
                    );
                    radio.vcs[m.out_vc].fifo.push_back((m.flit, target));
                } else {
                    let li = self.out_link[si][m.out_port].expect("wired port has a link");
                    let link = &mut self.links[li];
                    let bits = u64::from(self.cfg.flit_bits);
                    let (cat, energy) = match link.kind() {
                        EdgeKind::Mesh => (
                            EnergyCategory::Wire,
                            self.cfg.energy.wire(bits, link.length_mm()),
                        ),
                        EdgeKind::Interposer => (
                            EnergyCategory::InterposerWire,
                            self.cfg.energy.interposer_wire(bits, link.length_mm()),
                        ),
                        EdgeKind::SerialIo => {
                            (EnergyCategory::SerialIo, self.cfg.energy.serial_io(bits))
                        }
                        EdgeKind::WideIo => {
                            (EnergyCategory::WideIo, self.cfg.energy.wide_io(bits))
                        }
                        EdgeKind::Wireless => {
                            // Point-to-point wireless link: the receiver
                            // decode energy is charged alongside.
                            self.meter.add(
                                EnergyCategory::WirelessRx,
                                self.cfg.energy.wireless_rx(bits),
                            );
                            (
                                EnergyCategory::WirelessTx,
                                self.cfg.energy.wireless_tx(bits),
                            )
                        }
                    };
                    self.meter.add(cat, energy);
                    link.send(m.flit, m.out_vc, now);
                }
            }
        }

        // Phase 5: shared media (wireless channel + MAC).
        if !self.media.is_empty() {
            let view = self.build_view();
            let mut media = std::mem::take(&mut self.media);
            for medium in &mut media {
                let mut actions = MediumActions::new();
                medium.step(now, &view, &mut actions);
                self.apply_medium_actions(&actions, &mut credit_queue);
            }
            self.media = media;
        }

        // Phase 6: credits land (one-cycle credit loop).
        for (sw, port, vc) in credit_queue {
            self.switches[sw].return_credit(port, vc);
        }

        // Phase 7: leakage + bookkeeping.
        self.meter.add(
            EnergyCategory::SwitchStatic,
            self.switch_static.energy_over_cycles(1, self.cfg.energy.clock),
        );
        if self.serial_static > Power::ZERO {
            self.meter.add(
                EnergyCategory::SerialIoStatic,
                self.serial_static.energy_over_cycles(1, self.cfg.energy.clock),
            );
        }
        if self.wireless_idle_static > Power::ZERO {
            self.meter.add(
                EnergyCategory::WirelessIdle,
                self.wireless_idle_static
                    .energy_over_cycles(1, self.cfg.energy.clock),
            );
        }
        self.stats.on_cycle();
        self.now = now + 1;
    }

    fn pump_injection(&mut self) {
        for ni in 0..self.switches.len() {
            let Some(front) = self.inj_pending[ni].front().copied() else {
                continue;
            };
            let is_head = front.kind.is_head();
            let vc = if is_head {
                let sw = &self.switches[ni];
                self.inj_rr[ni].grant(|v| {
                    let ivc = sw.input_vc(0, v);
                    ivc.may_accept(front.packet, true) && ivc.free_space() > 0
                })
            } else {
                let v = self.inj_active_vc[ni].expect("body flit has an active VC");
                (self.switches[ni].input_space(0, v) > 0).then_some(v)
            };
            let Some(vc) = vc else { continue };
            let flit = self.inj_pending[ni].pop_front().expect("front exists");
            self.switches[ni].deliver(0, vc, flit);
            self.flits_in_network += 1;
            self.last_progress = self.now;
            self.inj_active_vc[ni] = if flit.kind.is_tail() { None } else { Some(vc) };
        }
    }

    fn build_view(&self) -> MediumView {
        let mut views = Vec::with_capacity(self.radios.len());
        for (i, radio) in self.radios.iter().enumerate() {
            let tx = radio
                .vcs
                .iter()
                .map(|vc| {
                    let front = vc.fifo.front().copied();
                    let (run, has_tail) = match front {
                        Some((f, _)) => {
                            let mut run = 0usize;
                            let mut has_tail = false;
                            for (g, _) in vc.fifo.iter() {
                                if g.packet != f.packet {
                                    break;
                                }
                                run += 1;
                                if g.kind.is_tail() {
                                    has_tail = true;
                                    break;
                                }
                            }
                            (run, has_tail)
                        }
                        None => (0, false),
                    };
                    TxVcView {
                        front,
                        len: vc.fifo.len(),
                        front_run_len: run,
                        front_run_has_tail: has_tail,
                    }
                })
                .collect();
            let si = radio.node.index();
            let (_, radio_port) = self.radio_of_switch[si].expect("radio switch");
            let sw = &self.switches[si];
            let rx = (0..self.cfg.vcs)
                .map(|v| {
                    let ivc = sw.input_vc(radio_port, v);
                    RxVcView {
                        owner: ivc.owner(),
                        len: ivc.len(),
                        capacity: ivc.capacity(),
                    }
                })
                .collect();
            views.push(RadioView {
                id: RadioId(i),
                node: radio.node,
                tx,
                rx,
            });
        }
        MediumView::new(views)
    }

    fn apply_medium_actions(
        &mut self,
        actions: &MediumActions,
        credit_queue: &mut Vec<(usize, usize, usize)>,
    ) {
        for action in actions.actions() {
            match *action {
                MediumAction::Energy { category, energy } => {
                    self.meter.add(category, energy);
                }
                MediumAction::Transmit { from, tx_vc, rx_vc } => {
                    let radio = &mut self.radios[from.index()];
                    let (flit, target) = radio.vcs[tx_vc]
                        .fifo
                        .pop_front()
                        .expect("MAC transmitted from an empty TX VC");
                    // Free TX slot: credit back to the hosting switch's
                    // radio output port.
                    let host = radio.node.index();
                    let (_, host_port) = self.radio_of_switch[host].expect("host radio");
                    credit_queue.push((host, host_port, tx_vc));
                    // Deliver into the receive VC the MAC reserved.
                    let ti = self.radios[target.index()].node.index();
                    let (_, t_port) = self.radio_of_switch[ti].expect("target radio");
                    {
                        let ivc = self.switches[ti].input_vc(t_port, rx_vc);
                        assert!(
                            ivc.may_accept(flit.packet, flit.kind.is_head())
                                && ivc.free_space() > 0,
                            "MAC reservation violated at {target} vc {rx_vc} \
                             for {} ({:?})",
                            flit.packet,
                            flit.kind,
                        );
                    }
                    self.switches[ti].deliver(t_port, rx_vc, flit);
                    self.last_progress = self.now;
                }
            }
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use wimnet_routing::RoutingPolicy;
    use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout};

    fn build(arch: Architecture) -> (MultichipLayout, Network) {
        build_with(arch, RoutingPolicy::default())
    }

    fn build_with(arch: Architecture, policy: RoutingPolicy) -> (MultichipLayout, Network) {
        let layout =
            MultichipLayout::build(&MultichipConfig::xcym(4, 4, arch)).unwrap();
        let routes = Routes::build(layout.graph(), policy).unwrap();
        let net = Network::new(&layout, routes, NocConfig::paper()).unwrap();
        (layout, net)
    }

    #[test]
    fn config_validation() {
        assert!(NocConfig::paper().validate().is_ok());
        let mut c = NocConfig::paper();
        c.vcs = 0;
        assert!(c.validate().is_err());
        let mut c = NocConfig::paper();
        c.buf_depth = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn single_packet_crosses_one_chip() {
        let (layout, mut net) = build(Architecture::Substrate);
        // Two cores on the same chip, a few mesh hops apart.
        let src = layout.core_nodes()[0];
        let dst = layout.core_nodes()[15];
        net.inject(PacketDesc::new(src, dst, 64, 0));
        for _ in 0..1000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 1);
        assert_eq!(net.stats().flits_delivered(), 64);
        assert_eq!(net.flits_in_flight(), 0);
        let arr = net.drain_arrivals();
        assert_eq!(arr.len(), 1);
        // 6 mesh hops for 64 flits: latency must exceed serialization.
        assert!(arr[0].latency() >= 64);
        assert!(arr[0].latency() < 200, "got {}", arr[0].latency());
    }

    #[test]
    fn zero_load_latency_matches_pipeline_model() {
        let (layout, mut net) = build(Architecture::Substrate);
        // Single-flit packet, one mesh hop: RC+VA+SA (3 cycles) + link
        // (1) + ejection (1), plus one cycle of injection.
        let src = layout.core_nodes()[0];
        let dst = layout.core_nodes()[1];
        net.inject(PacketDesc::new(src, dst, 1, 0));
        for _ in 0..50 {
            net.step();
        }
        let arr = net.drain_arrivals();
        assert_eq!(arr.len(), 1);
        assert!(
            (5..=8).contains(&arr[0].latency()),
            "one-hop single-flit latency {} outside pipeline model",
            arr[0].latency()
        );
    }

    #[test]
    fn serial_link_is_much_slower_than_mesh() {
        let (layout, mut net) = build(Architecture::Substrate);
        // Core on chip 0 to the same mesh position on chip 1: crosses the
        // single 15 Gbps serial I/O.
        let src = layout.core_nodes()[0];
        let dst = layout.core_nodes()[16];
        net.inject(PacketDesc::new(src, dst, 64, 0));
        for _ in 0..3000 {
            net.step();
        }
        let arr = net.drain_arrivals();
        assert_eq!(arr.len(), 1);
        // 64 flits at 0.1875 flits/cycle is ≥ 341 cycles of serialization.
        assert!(arr[0].latency() > 300, "got {}", arr[0].latency());
    }

    #[test]
    fn packets_are_delivered_across_memory_wide_io() {
        let (layout, mut net) = build(Architecture::Substrate);
        let src = layout.core_nodes()[0];
        let dst = layout.memory_nodes()[0];
        net.inject(PacketDesc::new(src, dst, 64, 0));
        for _ in 0..2000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 1);
        // Wide I/O energy must have been charged.
        assert!(net.meter().category(EnergyCategory::WideIo).joules() > 0.0);
    }

    #[test]
    fn many_packets_all_arrive_interposer() {
        let (layout, mut net) = build(Architecture::Interposer);
        let cores = layout.core_nodes().to_vec();
        let mut expected = 0;
        for (i, &src) in cores.iter().enumerate() {
            let dst = cores[(i + 17) % cores.len()];
            net.inject(PacketDesc::new(src, dst, 16, 0));
            expected += 1;
        }
        for _ in 0..5000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), expected);
        assert_eq!(net.flits_in_flight(), 0);
        assert!(!net.is_stalled(1000));
    }

    #[test]
    fn energy_meter_conserves_and_separates_categories() {
        let (layout, mut net) = build(Architecture::Interposer);
        net.inject(PacketDesc::new(
            layout.core_nodes()[0],
            layout.core_nodes()[63],
            64,
            0,
        ));
        for _ in 0..3000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 1);
        let meter = net.meter();
        assert!(meter.verify_conservation(1e-9));
        assert!(meter.category(EnergyCategory::SwitchDynamic).joules() > 0.0);
        assert!(meter.category(EnergyCategory::SwitchStatic).joules() > 0.0);
        assert!(meter.category(EnergyCategory::InterposerWire).joules() > 0.0);
        // No serial I/O in the interposer architecture.
        assert_eq!(meter.category(EnergyCategory::SerialIo).joules(), 0.0);
    }

    #[test]
    fn begin_measurement_discards_warmup_energy_and_stats() {
        let (layout, mut net) = build(Architecture::Substrate);
        net.inject(PacketDesc::new(
            layout.core_nodes()[0],
            layout.core_nodes()[5],
            8,
            0,
        ));
        for _ in 0..500 {
            net.step();
        }
        assert!(net.meter().total().joules() > 0.0);
        net.begin_measurement();
        assert_eq!(net.meter().total().joules(), 0.0);
        assert_eq!(net.stats().window_packets_delivered(), 0);
        assert_eq!(net.stats().packets_delivered(), 1, "lifetime stats survive");
    }

    #[test]
    fn deterministic_simulation() {
        let run = || {
            let (layout, mut net) = build(Architecture::Substrate);
            for i in 0..32usize {
                net.inject(PacketDesc::new(
                    layout.core_nodes()[i],
                    layout.core_nodes()[63 - i],
                    16,
                    0,
                ));
            }
            for _ in 0..4000 {
                net.step();
            }
            (
                net.stats().packets_delivered(),
                net.stats().flits_delivered(),
                net.meter().total().picojoules(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert!((a.2 - b.2).abs() < 1e-6);
    }

    #[test]
    fn run_for_and_drain_helpers() {
        let (layout, mut net) = build(Architecture::Substrate);
        net.inject(PacketDesc::new(
            layout.core_nodes()[0],
            layout.core_nodes()[9],
            16,
            0,
        ));
        net.run_for(3);
        assert_eq!(net.now(), 3);
        assert!(net.drain(5_000), "short packet must drain");
        assert_eq!(net.stats().packets_delivered(), 1);
        assert_eq!(net.flits_in_flight(), 0);
        // Draining an empty network is a no-op that reports success.
        let before = net.now();
        assert!(net.drain(100));
        assert_eq!(net.now(), before);
    }

    #[test]
    fn injection_respects_endpoint_rate() {
        let (layout, mut net) = build(Architecture::Substrate);
        // Queue several packets at one source; backlog drains one flit
        // per cycle at most.
        let src = layout.core_nodes()[0];
        let dst = layout.core_nodes()[3];
        for _ in 0..4 {
            net.inject(PacketDesc::new(src, dst, 8, 0));
        }
        assert_eq!(net.source_backlog(), 32);
        net.step();
        assert_eq!(net.source_backlog(), 31);
        net.step();
        assert_eq!(net.source_backlog(), 30);
    }

    #[test]
    fn wireless_layout_without_medium_stalls_interchip_traffic() {
        // Without an attached medium, radio TX buffers fill and nothing
        // crosses chips: the watchdog must detect the stall.
        let (layout, mut net) =
            build_with(Architecture::Wireless, RoutingPolicy::shortest_path());
        net.inject(PacketDesc::new(
            layout.core_nodes()[0],
            layout.core_nodes()[63],
            64,
            0,
        ));
        for _ in 0..3000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 0);
        assert!(net.is_stalled(1000));
    }

    #[test]
    fn wide_io_sustains_more_than_one_flit_per_cycle() {
        // The 128 Gbps wide I/O runs at 1.6 flits/cycle: keep a stack's
        // link saturated from nearby cores and check the delivered rate
        // exceeds what any 1.0-rate link could carry.
        let (layout, mut net) = build(Architecture::Substrate);
        let stack = layout.memory_nodes()[0];
        let chip = layout.adjacent_chip_of_stack(0).unwrap();
        // Several cores of the adjacent chip hammer the stack.
        let base = chip * 16;
        let mut offered = 0u64;
        for k in 0..40u64 {
            for c in 0..8usize {
                net.inject(PacketDesc::new(
                    layout.core_nodes()[base + c],
                    stack,
                    64,
                    k * 50,
                ));
                offered += 1;
            }
        }
        let warm = 200u64;
        for _ in 0..warm {
            net.step();
        }
        net.begin_measurement();
        let cycles = 2_000u64;
        for _ in 0..cycles {
            net.step();
        }
        let flits = net.stats().window_flits_delivered();
        let rate = flits as f64 / cycles as f64;
        assert!(
            rate > 1.05,
            "wide I/O should exceed one flit per cycle, got {rate} \
             ({offered} packets offered)"
        );
        assert!(rate <= 1.6 + 1e-9, "cannot beat the physical rate: {rate}");
    }

    #[test]
    fn intra_chip_traffic_flows_on_wireless_architecture_without_medium() {
        // Shortest-path routing keeps same-chip traffic on the mesh (a
        // radio detour is never shorter than the direct mesh path).
        let (layout, mut net) =
            build_with(Architecture::Wireless, RoutingPolicy::shortest_path());
        net.inject(PacketDesc::new(
            layout.core_nodes()[0],
            layout.core_nodes()[5],
            16,
            0,
        ));
        for _ in 0..1000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 1);
    }
}
