//! The network: switches + links + radios stepped one cycle at a time.
//!
//! Two stepping paths advance the same state machine:
//!
//! * [`Network::step`] — the reference engine: active-set sweeps + sorts
//!   per cycle, the switches' three-pass phases.
//! * [`Network::step_fast`] — the batch engine's inner step: word-bitset
//!   active sets (ascending bit iteration is sorted for free), fused
//!   mask-driven switch phases, lazy link-bandwidth queries.  Decision-
//!   identical to `step` — same grants, same moves, same meter order,
//!   bit for bit (pinned by `tests/fast_step.rs`).

use serde::{Deserialize, Serialize, Value};
use wimnet_energy::{ChargeBatch, Energy, EnergyCategory, EnergyMeter, EnergyModel, Power};
use wimnet_routing::Routes;
use wimnet_telemetry::{MacCounters, NetworkTelemetry};
use wimnet_topology::{EdgeKind, MultichipLayout};

use crate::active::ActiveSet;
use crate::arbiter::RoundRobin;
use crate::error::NocError;
use crate::flit::{Flit, FlitKind, PacketId};
use crate::link::{Link, LinkDelivery};
use crate::packet::{ArrivedPacket, PacketDesc, Reassembler};
use crate::radio::{
    MediumAction, MediumActions, MediumView, RadioId, RadioTx, RadioView, RxVcView,
    SharedMedium, TxVcView,
};
use crate::ring::RingSlab;
use crate::stats::NetworkStats;
use crate::switch::{OutPortSpec, RouteEntry, StMove, Switch, SwitchState, VaGrant};

/// Sets bit `i` of a word bitset.
#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1u64 << (i & 63);
}

/// Clears bit `i` of a word bitset.
#[inline]
fn clear_bit(words: &mut [u64], i: usize) {
    words[i >> 6] &= !(1u64 << (i & 63));
}

/// Words needed for an `n`-bit bitset.
fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

/// How wireless edges of the topology are realised by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WirelessMode {
    /// Radio ports drained by an attached [`SharedMedium`] (the §III.D
    /// MAC models — serialized channel or per-WI concurrent links).
    Medium,
    /// Each wireless edge becomes an ordinary point-to-point link of the
    /// given rate/latency, with per-flit energy charged at the
    /// transceiver's pJ/bit.  This is the model the paper's *evaluation*
    /// magnitudes imply (see `wimnet-wireless` and DESIGN.md §3); MAC
    /// overhead is not modelled here.
    PointToPoint {
        /// Link bandwidth in flits per cycle.
        rate: f64,
        /// Link latency in cycles.
        latency: u64,
        /// Total flits per cycle the whole wireless band can carry
        /// concurrently (channelisation of the 16 GHz band).  This is
        /// what keeps "the physical bandwidth of the wireless
        /// interconnections … constant regardless of the number of
        /// chips" (§IV.C).
        max_concurrent: u32,
    },
}

/// Engine configuration: the paper's §IV simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct NocConfig {
    /// Virtual channels per port (paper: 8).
    pub vcs: usize,
    /// Buffer depth per VC in flits (paper: 16).
    pub buf_depth: usize,
    /// Flit width in bits (paper: 32).
    pub flit_bits: u32,
    /// Depth of the wireless-interface transmit buffers per VC.  The
    /// control-packet MAC works with the standard depth; the token MAC
    /// baseline needs whole packets buffered (§III.D), so its experiments
    /// raise this.
    pub radio_tx_depth: usize,
    /// How wireless edges are realised.
    pub wireless_mode: WirelessMode,
    /// Technology energy constants.
    pub energy: EnergyModel,
}

impl NocConfig {
    /// The paper's configuration: 8 VCs × 16-flit buffers, 32-bit flits,
    /// 65 nm energy model at 2.5 GHz.
    pub fn paper() -> Self {
        NocConfig {
            vcs: 8,
            buf_depth: 16,
            flit_bits: 32,
            radio_tx_depth: 16,
            wireless_mode: WirelessMode::Medium,
            energy: EnergyModel::paper_65nm(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`NocError::InvalidConfig`] when a field is zero.
    pub fn validate(&self) -> Result<(), NocError> {
        if self.vcs == 0 {
            return Err(NocError::InvalidConfig { what: "vcs must be positive" });
        }
        if self.buf_depth == 0 {
            return Err(NocError::InvalidConfig { what: "buf_depth must be positive" });
        }
        if self.flit_bits == 0 {
            return Err(NocError::InvalidConfig { what: "flit_bits must be positive" });
        }
        if self.radio_tx_depth == 0 {
            return Err(NocError::InvalidConfig {
                what: "radio_tx_depth must be positive",
            });
        }
        Ok(())
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig::paper()
    }
}

/// Where credits for a freed input-VC slot must be returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Upstream {
    /// Local injection port: the injector checks space directly.
    Local,
    /// A wired link from another switch's output port.
    Wired { switch: usize, port: usize },
    /// The wireless medium: the MAC reads occupancy from the view.
    Radio,
}

/// Checkpointed dynamic state of one wireless interface's transmit side
/// (see [`NetworkState`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RadioTxState {
    /// Per-VC FIFO contents, front to back.
    pub lanes: Vec<Vec<(Flit, RadioId)>>,
    /// Per-VC FIFO capacities (fixed at construction, stored for the
    /// restore-time shape check).
    pub capacities: Vec<usize>,
    /// Sticky per-VC wormhole target (head locks it, tail clears it).
    pub target_by_vc: Vec<Option<RadioId>>,
}

/// Complete dynamic state of a [`Network`], detached from the static
/// tables (`Network::new` rebuilds those from the layout + routes; a
/// snapshot only carries what a run mutates).
///
/// Captured between cycles — per-cycle scratch and the charge batch are
/// empty at that point and deliberately excluded.  Restoring into a
/// freshly built network for the same layout/routes/config resumes the
/// run bit-for-bit (see `wimnet_core::checkpoint`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkState {
    /// Completed cycles.
    pub now: u64,
    /// Per-switch buffers, credits, allocation cursors and busy sets.
    pub switches: Vec<SwitchState>,
    /// Per-link fractional credit accumulators.
    pub link_credits: Vec<f64>,
    /// In-flight wire pipelines, one lane per link.
    pub flight_lanes: Vec<Vec<LinkDelivery>>,
    /// In-flight lane capacities.
    pub flight_caps: Vec<usize>,
    /// Radio TX FIFOs and wormhole targets, in [`RadioId`] order.
    pub radios: Vec<RadioTxState>,
    /// Per-medium MAC state as a schema-free serde value (each MAC
    /// encodes and decodes its own representation via
    /// [`SharedMedium::state_value`]).
    pub media: Vec<Value>,
    /// Source queues, one lane per endpoint.
    pub inj_lanes: Vec<Vec<Flit>>,
    /// Source-queue lane capacities (these grow on demand).
    pub inj_caps: Vec<usize>,
    /// Per-endpoint in-progress injection VC (wormhole stickiness).
    pub inj_active_vc: Vec<Option<usize>>,
    /// Per-endpoint injection round-robin cursors.
    pub inj_cursors: Vec<usize>,
    /// Next packet id to assign.
    pub next_packet: u64,
    /// Partially delivered packets.
    pub reassembler: Reassembler,
    /// Delivered packets not yet drained by the caller.
    pub arrivals: Vec<ArrivedPacket>,
    /// Statistics (lifetime + measurement window).
    pub stats: NetworkStats,
    /// Energy meter (exact integer limbs — restores bit-for-bit).
    pub meter: EnergyMeter,
    /// Flits accepted and not yet delivered.
    pub flits_in_network: u64,
    /// Flits queued at sources.
    pub backlog_flits: u64,
    /// Flits buffered in radio TX FIFOs.
    pub radio_backlog_flits: u64,
    /// Cycles skipped by fast-forward.
    pub ff_cycles: u64,
    /// Last cycle any flit moved.
    pub last_progress: u64,
    /// Active-set membership, in insertion order (restoring by replayed
    /// insertion reproduces the dense lists exactly).
    pub active_links: Vec<usize>,
    /// Active switches, in insertion order.
    pub active_switches: Vec<usize>,
    /// Active injectors, in insertion order.
    pub active_injectors: Vec<usize>,
    /// Word-bitset mirror of the link active set (conservative superset
    /// under legacy stepping — captured verbatim).
    pub links_mask: Vec<u64>,
    /// Word-bitset mirror of the switch active set.
    pub switch_mask: Vec<u64>,
    /// Word-bitset mirror of the injector active set.
    pub inj_mask: Vec<u64>,
}

/// The assembled multichip network.
///
/// See the crate-level example for typical use: build from a layout and
/// routes, optionally [`Network::attach_medium`] for wireless
/// architectures, then [`Network::inject`] and [`Network::step`].
pub struct Network {
    cfg: NocConfig,
    now: u64,
    switches: Vec<Switch>,
    /// Flattened forwarding LUT: entry for (switch `si`, destination
    /// `d`) lives at `si * n + d`.  One contiguous allocation replaces
    /// the former per-switch row vectors (and the take/put-back dance
    /// their borrows forced), keeping RC lookups on hot cache lines.
    lut: Box<[RouteEntry]>,
    links: Vec<Link>,
    link_dst: Vec<(usize, usize)>,
    /// Per-switch global-port offsets: switch `si`'s ports occupy global
    /// ids `port_base[si] .. port_base[si + 1]`.  The flat port tables
    /// below are all indexed by global port id, so the run-time layout
    /// matches the switches' own flat `port * vcs + vc` slabs (one
    /// contiguous array per concern instead of `Vec<Vec<…>>`).
    port_base: Vec<usize>,
    /// Outgoing link per global port (`None` for the local sink and the
    /// radio port).
    out_link: Vec<Option<usize>>,
    /// Per global port: does this port transmit on the shared wireless
    /// band (point-to-point mode only)?
    band_port: Vec<bool>,
    /// Where credits for a freed input-VC slot must be returned, per
    /// global port.
    upstream: Vec<Upstream>,
    /// Per-flit-hop meter charges, precomputed per global port at
    /// construction (switch traversal first, then the port's link
    /// crossing, in exactly the order the unbatched meter calls used).
    /// Global port `gp` owns `flit_charges[start .. start + len]` with
    /// `(start, len) = charge_span[gp]`.
    flit_charges: Vec<(EnergyCategory, Energy)>,
    charge_span: Vec<(u32, u32)>,
    radios: Vec<RadioTx>,
    radio_of_switch: Vec<Option<(RadioId, usize)>>,
    radio_by_node: Vec<Option<RadioId>>,
    media: Vec<Box<dyn SharedMedium>>,
    /// Flits on the wire, slabbed: lane `li` is link `li`'s in-flight
    /// pipeline (the links themselves keep only credit state).
    flight: RingSlab<LinkDelivery>,
    /// Source queues, slabbed: lane `ni` holds endpoint `ni`'s generated
    /// flits awaiting injection (grows on demand — source queues are
    /// workload-bounded, not credit-bounded).
    inj_pending: RingSlab<Flit>,
    inj_active_vc: Vec<Option<usize>>,
    inj_rr: Vec<RoundRobin>,
    next_packet: u64,
    reassembler: Reassembler,
    arrivals: Vec<ArrivedPacket>,
    stats: NetworkStats,
    meter: EnergyMeter,
    switch_static: Power,
    serial_static: Power,
    wireless_idle_static: Power,
    flits_in_network: u64,
    /// Flits generated but still queued at their sources (the O(1)
    /// mirror of summing `inj_pending` lengths).
    backlog_flits: u64,
    /// Flits buffered in radio TX FIFOs (the O(1) mirror of summing
    /// the per-VC FIFO lengths; a subset of `flits_in_network`).
    /// Maintained so the [`SharedMedium::is_quiescent`] precondition —
    /// every WI transmit buffer empty — is *checked* state, not an
    /// inference.
    radio_backlog_flits: u64,
    /// Cycles skipped by [`Network::fast_forward`] since construction.
    ff_cycles: u64,
    last_progress: u64,
    // --- Active-set tracking: only components that can make progress
    // are visited each cycle (see `active` module and docs/engine.md).
    active_links: ActiveSet,
    active_switches: ActiveSet,
    active_injectors: ActiveSet,
    // --- Word-bitset mirrors of the active sets, used by `step_fast`:
    // ascending bit iteration replaces the per-cycle sweep + sort.
    // Every insert site sets both representations; only the fast path
    // clears bits (exact sweep at visit time), so under legacy stepping
    // the bitsets remain conservative supersets — the invariant the
    // fast sweep needs — and the paths can be mixed freely.
    links_mask: Vec<u64>,
    switch_mask: Vec<u64>,
    inj_mask: Vec<u64>,
    // --- Preallocated per-cycle scratch: the steady-state step() makes
    // no heap allocations.
    scratch_order: Vec<usize>,
    scratch_arrivals: Vec<LinkDelivery>,
    scratch_grants: Vec<VaGrant>,
    scratch_moves: Vec<StMove>,
    scratch_avail: Vec<u32>,
    scratch_credits: Vec<(usize, usize, usize)>,
    /// Reusable medium snapshot: refreshed in place each cycle a shared
    /// medium is attached, so MAC runs allocate nothing on the view
    /// path after the first cycle.
    scratch_view: MediumView,
    /// Reusable MAC action list (cleared per medium per cycle).
    scratch_actions: MediumActions,
    /// Per-cycle batched meter charges: phase 4 logs per-flit-hop
    /// energies here (run-length encoded) and drains them into the
    /// meter once per cycle, replaying the exact unbatched add order so
    /// totals stay bit-identical (see [`ChargeBatch`]).
    charge_log: ChargeBatch,
    /// Optional observability sink (`docs/observability.md`).  The
    /// disabled path is a branch on `None` at every hook; the enabled
    /// path only reads decision state the engine computed anyway and
    /// increments sink-local counters — no RNG, meter, stats or
    /// allocator touch on the hot path — so outcomes are bit-identical
    /// either way (the zero-observer-effect contract, proven in
    /// `tests/determinism.rs`).  Deliberately absent from
    /// [`NetworkState`]: telemetry is observational, not engine state.
    telemetry: Option<Box<NetworkTelemetry>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("now", &self.now)
            .field("switches", &self.switches.len())
            .field("links", &self.links.len())
            .field("radios", &self.radios.len())
            .field("media", &self.media.len())
            .field("flits_in_network", &self.flits_in_network)
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Builds the cycle-accurate network for `layout` with forwarding
    /// tables `routes`.
    ///
    /// # Errors
    ///
    /// [`NocError::InvalidConfig`] for bad configs or when `routes` does
    /// not cover the layout's graph.
    pub fn new(
        layout: &MultichipLayout,
        routes: Routes,
        cfg: NocConfig,
    ) -> Result<Self, NocError> {
        cfg.validate()?;
        let graph = layout.graph();
        if routes.node_count() != graph.node_count() {
            return Err(NocError::InvalidConfig {
                what: "routes were built for a different graph",
            });
        }
        let n = graph.node_count();

        let p2p = matches!(cfg.wireless_mode, WirelessMode::PointToPoint { .. });

        // Radios, in WiId order (RadioId == WiId index by construction).
        // Point-to-point mode needs no radios: wireless edges become
        // ordinary links below.
        let mut radio_of_switch: Vec<Option<(RadioId, usize)>> = vec![None; n];
        let mut radio_by_node: Vec<Option<RadioId>> = vec![None; n];
        let mut radios = Vec::new();
        if !p2p {
            for wi in layout.wireless_interfaces() {
                let rid = RadioId(wi.id.index());
                radio_by_node[wi.node.index()] = Some(rid);
                radios.push(RadioTx::new(wi.node, cfg.vcs, cfg.radio_tx_depth));
            }
        }

        // Ports: 0 = local, then wired edges in adjacency order, then the
        // radio port for WI switches.
        let mut switches = Vec::with_capacity(n);
        let mut links: Vec<Link> = Vec::new();
        let mut link_dst: Vec<(usize, usize)> = Vec::new();
        // edge -> (port at a, port at b) for wired edges.
        let mut port_of_edge: Vec<Option<(usize, usize)>> = vec![None; graph.edge_count()];

        // First pass: decide port numbering.  The per-node wired-edge
        // lists are a CSR table (offsets + one flat edge-id array), so
        // build-time layout matches the flat run-time port tables.
        let mut wired_off = vec![0usize; n + 1];
        for node in graph.node_ids() {
            for &(_, eid) in graph.neighbors(node) {
                let e = graph.edge(eid).expect("edge exists");
                if e.kind != EdgeKind::Wireless || p2p {
                    wired_off[node.index() + 1] += 1;
                }
            }
        }
        for i in 0..n {
            wired_off[i + 1] += wired_off[i];
        }
        let mut wired_edges = vec![0usize; wired_off[n]];
        {
            let mut fill = wired_off.clone();
            for node in graph.node_ids() {
                for &(_, eid) in graph.neighbors(node) {
                    let e = graph.edge(eid).expect("edge exists");
                    if e.kind != EdgeKind::Wireless || p2p {
                        wired_edges[fill[node.index()]] = eid.index();
                        fill[node.index()] += 1;
                    }
                }
            }
        }
        let wired_of = |ni: usize| &wired_edges[wired_off[ni]..wired_off[ni + 1]];
        for node in graph.node_ids() {
            let ni = node.index();
            for (k, &eid) in wired_of(ni).iter().enumerate() {
                let port = 1 + k;
                let e = graph.edge(wimnet_topology::EdgeId(eid)).expect("edge exists");
                let slot = &mut port_of_edge[eid];
                if node == e.a {
                    match slot {
                        Some((pa, _)) => *pa = port,
                        None => *slot = Some((port, usize::MAX)),
                    }
                } else {
                    match slot {
                        Some((_, pb)) => *pb = port,
                        None => *slot = Some((usize::MAX, port)),
                    }
                }
            }
        }

        // Second pass: build switches, links and the flat global-port
        // tables (out-link, band flag, upstream, per-flit meter charges).
        let bits = u64::from(cfg.flit_bits);
        let traversal = cfg.energy.switch_traversal(bits);
        let mut port_base = Vec::with_capacity(n + 1);
        port_base.push(0usize);
        let mut out_link: Vec<Option<usize>> = Vec::new();
        let mut band_port: Vec<bool> = Vec::new();
        let mut upstream: Vec<Upstream> = Vec::new();
        let mut flit_charges: Vec<(EnergyCategory, Energy)> = Vec::new();
        let mut charge_span: Vec<(u32, u32)> = Vec::new();
        let push_charges = |flit_charges: &mut Vec<(EnergyCategory, Energy)>,
                                charge_span: &mut Vec<(u32, u32)>,
                                link_charge: &[(EnergyCategory, Energy)]| {
            let start = u32::try_from(flit_charges.len()).expect("charge table fits u32");
            flit_charges.push((EnergyCategory::SwitchDynamic, traversal));
            flit_charges.extend_from_slice(link_charge);
            charge_span.push((start, 1 + link_charge.len() as u32));
        };
        for node in graph.node_ids() {
            let ni = node.index();
            let wired = wired_of(ni);
            let has_radio = radio_by_node[ni].is_some();
            let port_count = 1 + wired.len() + usize::from(has_radio);

            let mut specs = Vec::with_capacity(port_count);
            // Core ejection drains one flit per cycle; a memory logic
            // die sinks two — it must at least absorb its own 1.6
            // flit/cycle wide I/O (the four DRAM channels behind it
            // take 128 Gbps in aggregate, §IV.A).
            let sink_grants = match graph.node(node).expect("node exists").kind {
                wimnet_topology::NodeKind::MemoryLogicDie { .. } => 2,
                wimnet_topology::NodeKind::Core { .. } => 1,
            };
            specs.push(OutPortSpec {
                credit: cfg.buf_depth as u32,
                is_sink: true,
                max_grants: sink_grants,
            });
            // Port 0: local ejection — no link, no band, local credits,
            // and a flit hop charges only the switch traversal.
            out_link.push(None);
            band_port.push(false);
            upstream.push(Upstream::Local);
            push_charges(&mut flit_charges, &mut charge_span, &[]);

            for &eid in wired {
                let e = graph.edge(wimnet_topology::EdgeId(eid)).expect("edge exists");
                let (rate, latency) = match (e.kind, cfg.wireless_mode) {
                    (
                        EdgeKind::Wireless,
                        WirelessMode::PointToPoint { rate, latency, .. },
                    ) => (rate, latency),
                    _ => Link::paper_rate_latency(e.kind),
                };
                specs.push(OutPortSpec {
                    credit: cfg.buf_depth as u32,
                    is_sink: false,
                    max_grants: rate.ceil().max(1.0) as u32,
                });
                // Outgoing link from this node over edge eid.
                let (pa, pb) = port_of_edge[eid].expect("both endpoints numbered");
                let (dst_sw, dst_port) = if node == e.a {
                    (e.b.index(), pb)
                } else {
                    (e.a.index(), pa)
                };
                let li = links.len();
                links.push(Link::new(
                    wimnet_topology::EdgeId(eid),
                    e.kind,
                    e.length_mm,
                    rate,
                    latency,
                ));
                link_dst.push((dst_sw, dst_port));
                out_link.push(Some(li));
                band_port.push(e.kind == EdgeKind::Wireless);
                // The reverse link fills the upstream entry of this
                // port (fixed up to the true source below).
                upstream.push(Upstream::Wired { switch: dst_sw, port: dst_port });
                // Per-flit meter charges of this port, in the order the
                // unbatched hot path issued them: traversal, then the
                // link-kind crossing (receiver decode before transmit
                // for point-to-point wireless).
                let link_charge: &[(EnergyCategory, Energy)] = match e.kind {
                    EdgeKind::Mesh => {
                        &[(EnergyCategory::Wire, cfg.energy.wire(bits, e.length_mm))]
                    }
                    EdgeKind::Interposer => &[(
                        EnergyCategory::InterposerWire,
                        cfg.energy.interposer_wire(bits, e.length_mm),
                    )],
                    EdgeKind::SerialIo => {
                        &[(EnergyCategory::SerialIo, cfg.energy.serial_io(bits))]
                    }
                    EdgeKind::WideIo => {
                        &[(EnergyCategory::WideIo, cfg.energy.wide_io(bits))]
                    }
                    EdgeKind::Wireless => &[
                        (EnergyCategory::WirelessRx, cfg.energy.wireless_rx(bits)),
                        (EnergyCategory::WirelessTx, cfg.energy.wireless_tx(bits)),
                    ],
                };
                push_charges(&mut flit_charges, &mut charge_span, link_charge);
            }
            if has_radio {
                let port = port_count - 1;
                let rid = radio_by_node[ni].expect("has radio");
                specs.push(OutPortSpec {
                    credit: cfg.radio_tx_depth as u32,
                    is_sink: false,
                    max_grants: 1,
                });
                out_link.push(None);
                band_port.push(false);
                upstream.push(Upstream::Radio);
                // Radio-port hops charge traversal only; the medium
                // meters its own TX/RX energy.
                push_charges(&mut flit_charges, &mut charge_span, &[]);
                radio_of_switch[ni] = Some((rid, port));
            }
            switches.push(Switch::new(node, cfg.vcs, cfg.buf_depth, &specs));
            port_base.push(out_link.len());
        }
        debug_assert_eq!(charge_span.len(), out_link.len());

        // Upstream entries above point at the *destination* of our
        // outgoing link; what we need is the *source* of the incoming
        // link per port.  For wired edges both directions exist and the
        // port numbering is symmetric per endpoint, so incoming on port p
        // of node x comes from the peer's port that carries the same
        // edge.  Recompute cleanly:
        for node in graph.node_ids() {
            let ni = node.index();
            for (k, &eid) in wired_of(ni).iter().enumerate() {
                let port = 1 + k;
                let e = graph.edge(wimnet_topology::EdgeId(eid)).expect("edge exists");
                let (pa, pb) = port_of_edge[eid].expect("numbered");
                let (src_sw, src_port) = if node == e.a {
                    (e.b.index(), pb)
                } else {
                    (e.a.index(), pa)
                };
                upstream[port_base[ni] + port] =
                    Upstream::Wired { switch: src_sw, port: src_port };
            }
        }

        // Forwarding LUT, flattened: entry (switch, dest) at
        // `switch * n + dest`, translated row-by-row from the routing
        // crate's equally flat tables.
        let mut lut = Vec::with_capacity(n * n);
        for node in graph.node_ids() {
            let ni = node.index();
            for (di, hop) in routes.row(node).iter().enumerate() {
                let Some((next, eid)) = *hop else {
                    debug_assert_eq!(di, ni, "only the diagonal lacks a next hop");
                    lut.push(RouteEntry { port: 0, next: node });
                    continue;
                };
                let e = graph.edge(eid).expect("edge exists");
                let port = if e.kind == EdgeKind::Wireless && !p2p {
                    radio_of_switch[ni]
                        .expect("wireless next hop implies a radio port")
                        .1
                } else {
                    let (pa, pb) = port_of_edge[eid.index()].expect("wired edge numbered");
                    if node == e.a {
                        pa
                    } else {
                        pb
                    }
                };
                lut.push(RouteEntry { port, next });
            }
        }

        // Static power: switches (radio TX buffers scale the per-port
        // share by their depth) and serial I/O endpoints.
        let mut switch_static = Power::ZERO;
        for sw in &switches {
            switch_static += cfg.energy.switch_static(sw.port_count());
        }
        let depth_ratio = cfg.radio_tx_depth as f64 / cfg.buf_depth as f64;
        for _ in &radios {
            switch_static += cfg.energy.switch_static_per_port * depth_ratio;
        }
        let mut serial_static = Power::ZERO;
        for _ in graph.edges_of_kind(EdgeKind::SerialIo) {
            serial_static += cfg.energy.serial_io_static;
        }
        // In point-to-point mode the WI transceivers' always-on front
        // ends are charged here (no medium exists to account for them).
        let wireless_idle_static = if p2p {
            cfg.energy.wireless_idle * layout.wireless_interfaces().len() as f64
        } else {
            Power::ZERO
        };

        let max_ports = switches.iter().map(Switch::port_count).max().unwrap_or(0);
        // Ring-slab fill values: the payload types have no meaningful
        // default, so unoccupied slots hold an explicit zeroed flit.
        let fill_flit = Flit {
            packet: PacketId(0),
            kind: FlitKind::Body,
            seq: 0,
            src: wimnet_topology::NodeId(0),
            dest: wimnet_topology::NodeId(0),
            created_at: 0,
        };
        let fill_delivery = LinkDelivery { flit: fill_flit, vc: 0, arrives_at: 0 };
        let flight_caps: Vec<usize> = links.iter().map(Link::flight_capacity).collect();
        // Links start active (bitset full) so their bandwidth credit
        // warms up exactly as the full-scan engine did.
        let mut links_mask = vec![0u64; words_for(links.len())];
        for li in 0..links.len() {
            set_bit(&mut links_mask, li);
        }
        Ok(Network {
            inj_pending: RingSlab::uniform(n, 16, fill_flit),
            flight: RingSlab::with_capacities(&flight_caps, fill_delivery),
            inj_active_vc: vec![None; n],
            inj_rr: (0..n).map(|_| RoundRobin::new(cfg.vcs)).collect(),
            cfg,
            now: 0,
            // Links start active so their bandwidth credit warms up
            // exactly as the full-scan engine did; they drop out of the
            // set once saturated.  Switches and injectors start empty.
            active_links: ActiveSet::full(links.len()),
            active_switches: ActiveSet::new(n),
            active_injectors: ActiveSet::new(n),
            links_mask,
            switch_mask: vec![0u64; words_for(n)],
            inj_mask: vec![0u64; words_for(n)],
            scratch_order: Vec::with_capacity(n.max(links.len())),
            scratch_arrivals: Vec::new(),
            scratch_grants: Vec::new(),
            scratch_moves: Vec::new(),
            scratch_avail: Vec::with_capacity(max_ports),
            scratch_credits: Vec::new(),
            scratch_view: MediumView::default(),
            scratch_actions: MediumActions::new(),
            switches,
            lut: lut.into_boxed_slice(),
            links,
            link_dst,
            port_base,
            out_link,
            band_port,
            upstream,
            flit_charges,
            charge_span,
            charge_log: ChargeBatch::new(),
            radios,
            radio_of_switch,
            radio_by_node,
            media: Vec::new(),
            next_packet: 0,
            reassembler: Reassembler::new(),
            arrivals: Vec::new(),
            stats: NetworkStats::new(),
            meter: EnergyMeter::new(),
            switch_static,
            serial_static,
            wireless_idle_static,
            flits_in_network: 0,
            backlog_flits: 0,
            radio_backlog_flits: 0,
            ff_cycles: 0,
            last_progress: 0,
            telemetry: None,
        })
    }

    /// Attaches a shared medium (the wireless channel + MAC).
    pub fn attach_medium(&mut self, medium: Box<dyn SharedMedium>) {
        self.media.push(medium);
    }

    /// Attaches the observability sink: per-link/per-switch counters
    /// and a time series bucketed every `sample_interval` cycles;
    /// `trace` additionally records packet-hop waypoints and asks the
    /// attached media to record MAC turn intervals.  Counters are
    /// pre-sized here so the hooks never allocate.  Telemetry is
    /// observational only — it is excluded from [`Network::state`]
    /// snapshots and never influences a decision (see
    /// `docs/observability.md`).
    pub fn enable_telemetry(&mut self, sample_interval: u64, trace: bool) {
        self.telemetry = Some(Box::new(NetworkTelemetry::new(
            self.links.len(),
            self.switches.len(),
            sample_interval,
            trace,
        )));
        if trace {
            for m in &mut self.media {
                m.set_trace_enabled(true);
            }
        }
    }

    /// The live telemetry sink, when enabled.
    pub fn telemetry(&self) -> Option<&NetworkTelemetry> {
        self.telemetry.as_deref()
    }

    /// Flushes the open time-series bucket and drains MAC turn spans
    /// into the trace buffer, then hands out the sink for export.
    /// `None` when telemetry was never enabled.
    pub fn finish_telemetry(&mut self) -> Option<&NetworkTelemetry> {
        let t = self.telemetry.as_deref_mut()?;
        t.series.finish();
        if let Some(tb) = &mut t.trace {
            for m in &mut self.media {
                m.drain_turn_records(&mut tb.turns);
            }
        }
        Some(t)
    }

    /// Per-medium MAC counters (one entry per attached medium), from
    /// the statistics each MAC already keeps.
    pub fn medium_counters(&self) -> Vec<MacCounters> {
        self.media.iter().map(|m| m.mac_counters()).collect()
    }

    /// Kind names of all links, dense link order (report surface for
    /// the per-link telemetry tables).
    pub fn link_kinds(&self) -> Vec<&'static str> {
        self.links.iter().map(|l| l.kind_name()).collect()
    }

    /// The engine configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// The current cycle (number of completed [`Network::step`] calls).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of radios.
    pub fn radio_count(&self) -> usize {
        self.radios.len()
    }

    /// Statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Energy meter.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Charges energy from a component outside the engine (memory stack
    /// service, for example) so the meter stays the single total.
    pub fn charge(&mut self, category: EnergyCategory, energy: wimnet_energy::Energy) {
        self.meter.add(category, energy);
    }

    /// Charges `count` identical quanta in one exact multiply-add — the
    /// O(1) entry point external closed forms (memory background power,
    /// driver-side batches) use during fast-forwarded stretches.
    pub fn charge_repeated(
        &mut self,
        category: EnergyCategory,
        energy: wimnet_energy::Energy,
        count: u64,
    ) {
        self.meter.add_repeated(category, energy, count);
    }

    /// Drains an externally assembled [`ChargeBatch`] into the meter —
    /// one exact multiply-add per run (the memory controllers'
    /// fast-forward closed form lands its background energy here).
    pub fn apply_charges(&mut self, batch: &ChargeBatch) {
        self.meter.apply_batch(batch);
    }

    /// Opens the measurement window now: resets window statistics and the
    /// energy meter (warmup energy is discarded, as in the paper).
    pub fn begin_measurement(&mut self) {
        self.stats.begin_measurement(self.now);
        self.meter.clear();
    }

    /// Flits accepted into the network and not yet delivered (excludes
    /// source-queue backlog).
    pub fn flits_in_flight(&self) -> u64 {
        self.flits_in_network
    }

    /// Exhaustively checks every switch's slab bookkeeping invariants
    /// (see [`Switch::assert_invariants`]); test support, O(switches ×
    /// ports × vcs).
    ///
    /// # Panics
    ///
    /// Panics when any switch's `buffered` counter or busy set disagrees
    /// with its flit-slab occupancy.
    pub fn assert_switch_invariants(&self) {
        for sw in &self.switches {
            sw.assert_invariants();
        }
        // The fast-forward precondition counter must track the radio
        // FIFOs exactly: a drifted counter would either pin `is_idle`
        // false forever (silently killing fast-forward) or skip cycles
        // with flits still buffered.
        assert_eq!(
            self.radio_backlog_flits,
            self.radios.iter().map(RadioTx::backlog).sum::<u64>(),
            "radio backlog counter out of sync"
        );
    }

    /// Flits generated but still waiting in source queues (O(1): the
    /// count is maintained on inject and drain).
    pub fn source_backlog(&self) -> u64 {
        debug_assert_eq!(
            self.backlog_flits,
            (0..self.inj_pending.lanes())
                .map(|ni| self.inj_pending.len(ni) as u64)
                .sum::<u64>(),
            "source backlog counter out of sync"
        );
        self.backlog_flits
    }

    /// Flits waiting in one endpoint's source queue.
    pub fn source_backlog_at(&self, node: wimnet_topology::NodeId) -> u64 {
        self.inj_pending.len(node.index()) as u64
    }

    /// `true` if flits are in flight but nothing has moved for
    /// `threshold` cycles — the deadlock watchdog.
    pub fn is_stalled(&self, threshold: u64) -> bool {
        self.flits_in_network > 0 && self.now.saturating_sub(self.last_progress) > threshold
    }

    /// Queues a packet for injection at its source.  Returns the packet
    /// id.
    ///
    /// # Panics
    ///
    /// Panics if the source or destination is out of range.
    pub fn inject(&mut self, desc: PacketDesc) -> PacketId {
        assert!(desc.src.index() < self.switches.len(), "bad source");
        assert!(desc.dest.index() < self.switches.len(), "bad destination");
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        let src = desc.src.index();
        for flit in desc.flits_for(id) {
            self.inj_pending.push_back_growing(src, flit);
        }
        self.backlog_flits += u64::from(desc.flits);
        self.active_injectors.insert(src);
        set_bit(&mut self.inj_mask, src);
        self.stats.on_inject(desc.flits);
        id
    }

    /// Packets delivered since the last drain.
    pub fn drain_arrivals(&mut self) -> Vec<ArrivedPacket> {
        std::mem::take(&mut self.arrivals)
    }

    /// Advances the network by `cycles` clock cycles, fast-forwarding
    /// through provably idle stretches (see [`Network::fast_forward`]).
    pub fn run_for(&mut self, cycles: u64) {
        let mut left = cycles;
        while left > 0 {
            left -= self.fast_forward(left);
            if left == 0 {
                return;
            }
            self.step();
            left -= 1;
        }
    }

    /// Steps until every injected flit has been delivered (sources empty
    /// and nothing in flight) or `max_cycles` elapse.  Returns `true`
    /// when fully drained.  The completion check is O(1), so a drained
    /// network exits without spinning empty cycles.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.flits_in_network == 0 && self.backlog_flits == 0 {
                return true;
            }
            self.step();
        }
        self.flits_in_network == 0 && self.backlog_flits == 0
    }

    /// `true` when stepping the network can change nothing except the
    /// per-cycle leakage/bookkeeping: no flits in flight or queued
    /// (including the radio TX FIFOs — the [`SharedMedium`] quiescence
    /// precondition, tracked explicitly), all link bandwidth credits
    /// saturated, and every attached medium quiescent.  This is the
    /// idle fast-forward precondition; the full contract lives in
    /// `docs/fast_forward.md`.
    pub fn is_idle(&self) -> bool {
        debug_assert!(
            self.flits_in_network > 0 || self.radio_backlog_flits == 0,
            "radio FIFOs hold flits the in-flight counter lost"
        );
        self.flits_in_network == 0
            && self.backlog_flits == 0
            && self.radio_backlog_flits == 0
            && self
                .active_links
                .members()
                .iter()
                .all(|&li| self.links[li].is_quiescent(self.flight.is_empty(li)))
            && self.media.iter().all(|m| m.is_quiescent())
    }

    /// Flits currently buffered in radio TX FIFOs (O(1): maintained on
    /// push and MAC transmit).  Always a subset of
    /// [`Network::flits_in_flight`]; zero is part of the medium
    /// quiescence precondition.
    pub fn radio_backlog(&self) -> u64 {
        debug_assert_eq!(
            self.radio_backlog_flits,
            self.radios.iter().map(RadioTx::backlog).sum::<u64>(),
            "radio backlog counter out of sync"
        );
        self.radio_backlog_flits
    }

    /// Cycles skipped by [`Network::fast_forward`] since construction —
    /// the per-run fast-forward statistic reports and examples surface.
    pub fn fast_forwarded_cycles(&self) -> u64 {
        self.ff_cycles
    }

    /// Fast-forwards up to `cycles` idle cycles, applying exactly the
    /// per-cycle bookkeeping a full [`Network::step`] would have: medium
    /// idle charges, leakage energy and window-cycle statistics.  The
    /// meter's exact accumulator makes per-category sums order- and
    /// batching-independent, so each medium collapses the span into O(1)
    /// repeated charges via [`SharedMedium::idle_advance`] and the
    /// leakage loop becomes one [`EnergyMeter::add_repeated`] per
    /// category — energy totals stay bit-identical to stepping while
    /// meter work stays O(1) in the skipped-cycle count.  Returns the
    /// number of cycles actually skipped — zero when the network is not
    /// [`Network::is_idle`].
    pub fn fast_forward(&mut self, cycles: u64) -> u64 {
        if cycles == 0 || !self.is_idle() {
            return 0;
        }
        let mut media = std::mem::take(&mut self.media);
        let mut actions = std::mem::take(&mut self.scratch_actions);
        // Phase 5 position: media idle accounting first…
        for medium in &mut media {
            actions.list.clear();
            medium.idle_advance(self.now, cycles, &mut actions);
            for action in actions.actions() {
                match *action {
                    MediumAction::Energy { category, energy } => {
                        self.meter.add(category, energy);
                    }
                    MediumAction::EnergyRepeated { category, energy, count } => {
                        self.meter.add_repeated(category, energy, count);
                    }
                    MediumAction::Transmit { .. } => {
                        unreachable!("quiescent medium must not transmit")
                    }
                }
            }
        }
        // …then the phase 7 leakage, one exact multiply-add per
        // category instead of `cycles` float adds.
        self.meter.add_repeated(
            EnergyCategory::SwitchStatic,
            self.switch_static.energy_over_cycles(1, self.cfg.energy.clock),
            cycles,
        );
        if self.serial_static > Power::ZERO {
            self.meter.add_repeated(
                EnergyCategory::SerialIoStatic,
                self.serial_static.energy_over_cycles(1, self.cfg.energy.clock),
                cycles,
            );
        }
        if self.wireless_idle_static > Power::ZERO {
            self.meter.add_repeated(
                EnergyCategory::WirelessIdle,
                self.wireless_idle_static
                    .energy_over_cycles(1, self.cfg.energy.clock),
                cycles,
            );
        }
        self.media = media;
        self.scratch_actions = actions;
        self.stats.on_cycles(cycles);
        // Telemetry's closed form for the jumped span: the quiescence
        // precondition above makes every per-cycle delta zero, so the
        // sampler fills the skipped buckets by cursor arithmetic —
        // sampling never forces full stepping.
        if let Some(t) = &mut self.telemetry {
            t.series.fast_forward(self.now, cycles);
        }
        self.now += cycles;
        self.ff_cycles += cycles;
        cycles
    }

    /// Advances the network by one clock cycle.
    ///
    /// The steady-state hot path is allocation-free and visits only
    /// *active* components: links carrying flits or unsaturated credit,
    /// switches with buffered flits, endpoints with source backlog.
    /// Quiescent components are skipped entirely — provably a no-op for
    /// each (see the `active` module and docs/engine.md).
    pub fn step(&mut self) {
        let now = self.now;
        let mut order = std::mem::take(&mut self.scratch_order);

        // Phase 0: active links accrue bandwidth and deliver due flits.
        // Sorted index order keeps the walk deterministic (per-link work
        // is independent, but determinism costs one small sort).
        {
            let links = &self.links;
            let flight = &self.flight;
            self.active_links
                .sweep(|li| !links[li].is_quiescent(flight.is_empty(li)));
        }
        order.clear();
        order.extend_from_slice(self.active_links.members());
        order.sort_unstable();
        let mut arrivals = std::mem::take(&mut self.scratch_arrivals);
        for &li in &order {
            self.links[li].begin_cycle();
            arrivals.clear();
            Link::take_arrivals_into(&mut self.flight, li, now, &mut arrivals);
            if !arrivals.is_empty() {
                let (sw, port) = self.link_dst[li];
                for d in &arrivals {
                    self.switches[sw].deliver(port, d.vc, d.flit);
                }
                self.active_switches.insert(sw);
                set_bit(&mut self.switch_mask, sw);
            }
            // Observability: the link was active this cycle; a busy
            // cycle that delivered nothing with the credit window
            // exhausted is downstream backpressure.  Reads already-
            // computed facts only (zero observer effect).
            if let Some(t) = &mut self.telemetry {
                let lc = &mut t.links[li];
                lc.busy_cycles += 1;
                if arrivals.is_empty() && self.links[li].available() == 0 {
                    lc.credit_stalls += 1;
                }
            }
        }
        self.scratch_arrivals = arrivals;

        // Phase 1: injection (one flit per endpoint per cycle).
        self.pump_injection(&mut order);

        // Phase 2/3: RC + VA on switches with buffered flits; resolve
        // radio targets.  Ascending order mirrors the former full scan.
        {
            let switches = &self.switches;
            self.active_switches.sweep(|si| !switches[si].is_quiescent());
        }
        order.clear();
        order.extend_from_slice(self.active_switches.members());
        order.sort_unstable();
        let n_switches = self.switches.len();
        let mut grants = std::mem::take(&mut self.scratch_grants);
        for &si in &order {
            let lut_row = &self.lut[si * n_switches..(si + 1) * n_switches];
            self.switches[si].alloc_phase(now, lut_row, &mut grants);
            self.resolve_radio_targets(si, &grants);
            if let Some(t) = &mut self.telemetry {
                let sc = &mut t.switches[si];
                sc.active_cycles += 1;
                sc.occupancy_integral += self.switches[si].buffered_flits() as u64;
            }
        }
        self.scratch_grants = grants;

        // Phase 4: SA/ST on active switches; route the winning flits.
        // The shared wireless band has a global per-cycle flit budget in
        // point-to-point mode; the rotated processing order keeps band
        // allocation fair, and the active set is iterated in exactly
        // that rotated order so band draws, meter adds and arrival
        // ordering match the full-scan engine bit for bit.
        let mut band_budget = match self.cfg.wireless_mode {
            WirelessMode::PointToPoint { max_concurrent, .. } => max_concurrent,
            WirelessMode::Medium => u32::MAX,
        };
        let offset = (now % n_switches as u64) as usize;
        order.clear();
        order.extend_from_slice(self.active_switches.members());
        order.sort_unstable_by_key(|&si| (si + n_switches - offset) % n_switches);
        let mut moves = std::mem::take(&mut self.scratch_moves);
        for &si in &order {
            let pb = self.port_base[si];
            let ports = self.port_base[si + 1] - pb;
            self.scratch_avail.clear();
            for gp in pb..pb + ports {
                let a = match self.out_link[gp] {
                    Some(li) => self.links[li].available(),
                    None => u32::MAX, // local sink / radio: credits gate
                };
                self.scratch_avail.push(a);
            }
            self.switches[si].st_phase(
                now,
                &self.scratch_avail,
                &self.band_port[pb..pb + ports],
                &mut band_budget,
                &mut moves,
            );
            for m in &moves {
                self.apply_move(si, pb, m, now);
            }
        }
        self.scratch_moves = moves;
        self.scratch_order = order;

        self.drain_charges();
        self.run_media_phase(now);
        self.land_credits();
        self.finish_cycle(now);
    }

    /// Routes one winning ST movement: meter charges, upstream credit,
    /// ejection/radio/link delivery.  Shared verbatim by [`Network::step`]
    /// and [`Network::step_fast`] (`pb` = `port_base[si]`).
    fn apply_move(&mut self, si: usize, pb: usize, m: &StMove, now: u64) {
        self.last_progress = now;
        // Per-flit-hop energy: log the port's precomputed charge
        // sequence (traversal + link crossing); the batch drains
        // into the meter once per cycle, in this exact order.
        let (start, len) = self.charge_span[pb + m.out_port];
        for &(cat, energy) in &self.flit_charges[start as usize..(start + len) as usize] {
            self.charge_log.push(cat, energy);
        }
        // Credit back upstream for the freed input slot.
        if let Upstream::Wired { switch, port } = self.upstream[pb + m.in_port] {
            self.scratch_credits.push((switch, port, m.in_vc));
        }
        if m.out_port == 0 {
            // Ejection: the flit reaches the attached endpoint
            // after the one-cycle switch traversal.
            if let Some(p) = self.reassembler.push(m.flit, now + 1) {
                self.stats.on_deliver(&p);
                if let Some(t) = &mut self.telemetry {
                    t.series.on_deliver(now, p.flits);
                    t.record_packet(
                        p.id.0,
                        p.src.index() as u64,
                        p.dest.index() as u64,
                        p.created_at,
                        p.arrived_at,
                    );
                }
                self.arrivals.push(p);
            }
            self.flits_in_network -= 1;
        } else if Some(m.out_port) == self.radio_of_switch[si].map(|(_, port)| port) {
            let (rid, _) = self.radio_of_switch[si].expect("radio port");
            let radio = &mut self.radios[rid.index()];
            let target = radio.target_by_vc[m.out_vc].expect("VA set a target before ST");
            assert!(
                radio.free_space(m.out_vc) > 0,
                "radio TX overflow: credit protocol violated"
            );
            radio.fifo.push_back(m.out_vc, (m.flit, target));
            self.radio_backlog_flits += 1;
        } else {
            let li = self.out_link[pb + m.out_port].expect("wired port has a link");
            self.links[li].send(&mut self.flight, li, m.flit, m.out_vc, now);
            self.active_links.insert(li);
            set_bit(&mut self.links_mask, li);
            if let Some(t) = &mut self.telemetry {
                t.links[li].flits += 1;
            }
        }
        // Observability: one ST grant consumed; head flits leave a
        // per-hop waypoint for the Chrome-trace exporter.  Counter
        // writes only — the move above was already decided.
        if let Some(t) = &mut self.telemetry {
            t.switches[si].grants += 1;
            if m.flit.kind.is_head() {
                t.record_hop(m.flit.packet.0, si as u64, now);
            }
        }
    }

    /// Resolves radio targets for this cycle's VA grants on switch `si`'s
    /// radio port (the destination WI the next wireless hop reaches).
    /// Shared by both stepping paths.
    fn resolve_radio_targets(&mut self, si: usize, grants: &[VaGrant]) {
        let Some((rid, radio_port)) = self.radio_of_switch[si] else { return };
        let n = self.switches.len();
        for g in grants {
            if g.out_port == radio_port {
                let next = self.lut[si * n + g.dest.index()].next;
                let target = self.radio_by_node[next.index()]
                    .expect("wireless next hop hosts a radio");
                self.radios[rid.index()].target_by_vc[g.out_vc] = Some(target);
            }
        }
    }

    /// Drains the batched per-flit charges before phase 5 so the meter's
    /// accumulation order matches the former per-move adds exactly (media
    /// charges always followed phase 4's).
    fn drain_charges(&mut self) {
        if !self.charge_log.is_empty() {
            self.meter.apply_batch(&self.charge_log);
            self.charge_log.clear();
        }
    }

    /// Phase 5: shared media (wireless channel + MAC).  View and action
    /// list are per-run scratch, refreshed/cleared in place.
    fn run_media_phase(&mut self, now: u64) {
        if self.media.is_empty() {
            return;
        }
        let mut view = std::mem::take(&mut self.scratch_view);
        self.refresh_view(&mut view);
        let mut media = std::mem::take(&mut self.media);
        let mut actions = std::mem::take(&mut self.scratch_actions);
        for medium in &mut media {
            actions.list.clear();
            medium.step(now, &view, &mut actions);
            self.apply_medium_actions(&actions);
        }
        self.media = media;
        self.scratch_actions = actions;
        self.scratch_view = view;
    }

    /// Phase 6: credits land (one-cycle credit loop).
    fn land_credits(&mut self) {
        for i in 0..self.scratch_credits.len() {
            let (sw, port, vc) = self.scratch_credits[i];
            self.switches[sw].return_credit(port, vc);
        }
        self.scratch_credits.clear();
    }

    /// Phase 7: leakage + end-of-cycle bookkeeping.
    fn finish_cycle(&mut self, now: u64) {
        self.meter.add(
            EnergyCategory::SwitchStatic,
            self.switch_static.energy_over_cycles(1, self.cfg.energy.clock),
        );
        if self.serial_static > Power::ZERO {
            self.meter.add(
                EnergyCategory::SerialIoStatic,
                self.serial_static.energy_over_cycles(1, self.cfg.energy.clock),
            );
        }
        if self.wireless_idle_static > Power::ZERO {
            self.meter.add(
                EnergyCategory::WirelessIdle,
                self.wireless_idle_static
                    .energy_over_cycles(1, self.cfg.energy.clock),
            );
        }
        self.stats.on_cycle();
        if let Some(t) = &mut self.telemetry {
            t.series.on_cycle(now, self.flits_in_network);
        }
        self.now = now + 1;
    }

    /// `true` when every switch fits the fast path's 128-bit VC masks
    /// (ports × vcs ≤ 128) — the [`Network::step_fast`] precondition.
    /// The paper configurations (8 VCs, ≤ 8 ports) all qualify; callers
    /// fall back to [`Network::step`] otherwise.
    pub fn supports_fast_step(&self) -> bool {
        self.switches.iter().all(Switch::supports_mask)
    }

    /// Advances the network by one clock cycle on the fast path.
    ///
    /// Decision-identical to [`Network::step`] — same grants, moves,
    /// arrival order, statistics, and bit-identical energy — but driven
    /// by word bitsets instead of swept-and-sorted active lists, with the
    /// switches' fused mask phases ([`Switch::alloc_phase_fast`],
    /// [`Switch::st_phase_fast`]) and lazy link-bandwidth queries.  The
    /// replica-batch engine steps every lane through this path; the
    /// differential suite in `tests/fast_step.rs` pins the equivalence
    /// cycle by cycle.
    ///
    /// Requires [`Network::supports_fast_step`] (debug-asserted).  The
    /// two paths may be freely mixed on one network: shared insert sites
    /// maintain the bitsets as conservative supersets, and only this
    /// path clears them (exact sweep at visit time).
    pub fn step_fast(&mut self) {
        debug_assert!(self.supports_fast_step());
        let now = self.now;

        // Phase 0: links, ascending bit order (= the legacy sorted walk).
        // Quiescent links drop out of the bitset exactly where the legacy
        // sweep removed them from the active set.
        let mut arrivals = std::mem::take(&mut self.scratch_arrivals);
        for w in 0..self.links_mask.len() {
            let mut bits = self.links_mask[w];
            while bits != 0 {
                let li = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.links[li].is_quiescent(self.flight.is_empty(li)) {
                    self.links_mask[w] &= !(1u64 << (li & 63));
                    continue;
                }
                self.links[li].begin_cycle();
                arrivals.clear();
                Link::take_arrivals_into(&mut self.flight, li, now, &mut arrivals);
                if !arrivals.is_empty() {
                    let (sw, port) = self.link_dst[li];
                    for d in &arrivals {
                        self.switches[sw].deliver(port, d.vc, d.flit);
                    }
                    self.active_switches.insert(sw);
                    set_bit(&mut self.switch_mask, sw);
                }
                // Observability hook, mirroring the legacy phase 0.
                if let Some(t) = &mut self.telemetry {
                    let lc = &mut t.links[li];
                    lc.busy_cycles += 1;
                    if arrivals.is_empty() && self.links[li].available() == 0 {
                        lc.credit_stalls += 1;
                    }
                }
            }
        }
        self.scratch_arrivals = arrivals;

        // Phase 1: injection.
        self.pump_injection_fast();

        // Phase 2/3: RC + VA on switches with buffered flits, ascending
        // bit order; empty switches drop out (the legacy sweep).
        let mut order = std::mem::take(&mut self.scratch_order);
        order.clear();
        for w in 0..self.switch_mask.len() {
            let mut bits = self.switch_mask[w];
            while bits != 0 {
                let si = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                order.push(si);
            }
        }
        let n_switches = self.switches.len();
        let mut grants = std::mem::take(&mut self.scratch_grants);
        for slot in &mut order {
            let si = *slot;
            if self.switches[si].is_quiescent() {
                clear_bit(&mut self.switch_mask, si);
                // Mark for exclusion from the phase 4 walk below.
                *slot = usize::MAX;
                continue;
            }
            let lut_row = &self.lut[si * n_switches..(si + 1) * n_switches];
            self.switches[si].alloc_phase_fast(now, lut_row, &mut grants);
            self.resolve_radio_targets(si, &grants);
            if let Some(t) = &mut self.telemetry {
                let sc = &mut t.switches[si];
                sc.active_cycles += 1;
                sc.occupancy_integral += self.switches[si].buffered_flits() as u64;
            }
        }
        self.scratch_grants = grants;
        order.retain(|&si| si != usize::MAX);

        // Phase 4: SA/ST in the same rotated order as the legacy sort —
        // the ascending survivor list rotated at the first index ≥
        // offset.  Link bandwidth is queried lazily inside the switch
        // phase, only for ports with an actual candidate.
        let mut band_budget = match self.cfg.wireless_mode {
            WirelessMode::PointToPoint { max_concurrent, .. } => max_concurrent,
            WirelessMode::Medium => u32::MAX,
        };
        let offset = (now % n_switches as u64) as usize;
        let split = order.partition_point(|&si| si < offset);
        order.rotate_left(split);
        let mut moves = std::mem::take(&mut self.scratch_moves);
        for &si in &order {
            let pb = self.port_base[si];
            let ports = self.port_base[si + 1] - pb;
            {
                let links = &self.links;
                let out_link = &self.out_link;
                self.switches[si].st_phase_fast(
                    now,
                    |p| match out_link[pb + p] {
                        Some(li) => links[li].available(),
                        None => u32::MAX, // local sink / radio: credits gate
                    },
                    &self.band_port[pb..pb + ports],
                    &mut band_budget,
                    &mut moves,
                );
            }
            for m in &moves {
                self.apply_move(si, pb, m, now);
            }
        }
        self.scratch_moves = moves;
        self.scratch_order = order;

        self.drain_charges();
        self.run_media_phase(now);
        self.land_credits();
        self.finish_cycle(now);
    }

    /// Phase 1 of [`Network::step_fast`]: injection over the endpoint
    /// bitset, ascending (= the legacy sorted walk); drained sources
    /// drop out at visit time.
    fn pump_injection_fast(&mut self) {
        for w in 0..self.inj_mask.len() {
            let mut bits = self.inj_mask[w];
            while bits != 0 {
                let ni = (w << 6) + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if self.inj_pending.is_empty(ni) {
                    self.inj_mask[w] &= !(1u64 << (ni & 63));
                    continue;
                }
                let front = self.inj_pending.front(ni).expect("checked non-empty");
                let is_head = front.kind.is_head();
                let vc = if is_head {
                    let sw = &self.switches[ni];
                    self.inj_rr[ni].grant(|v| {
                        sw.may_accept(0, v, front.packet, true) && sw.input_space(0, v) > 0
                    })
                } else {
                    let v = self.inj_active_vc[ni].expect("body flit has an active VC");
                    (self.switches[ni].input_space(0, v) > 0).then_some(v)
                };
                let Some(vc) = vc else { continue };
                let flit = self.inj_pending.pop_front(ni).expect("front exists");
                self.switches[ni].deliver(0, vc, flit);
                self.active_switches.insert(ni);
                set_bit(&mut self.switch_mask, ni);
                self.backlog_flits -= 1;
                self.flits_in_network += 1;
                self.last_progress = self.now;
                self.inj_active_vc[ni] = if flit.kind.is_tail() { None } else { Some(vc) };
            }
        }
    }

    fn pump_injection(&mut self, order: &mut Vec<usize>) {
        {
            let pending = &self.inj_pending;
            self.active_injectors.sweep(|ni| !pending.is_empty(ni));
        }
        order.clear();
        order.extend_from_slice(self.active_injectors.members());
        order.sort_unstable();
        for &ni in order.iter() {
            let front = self.inj_pending.front(ni).expect("swept non-empty");
            let is_head = front.kind.is_head();
            let vc = if is_head {
                let sw = &self.switches[ni];
                self.inj_rr[ni].grant(|v| {
                    sw.may_accept(0, v, front.packet, true) && sw.input_space(0, v) > 0
                })
            } else {
                let v = self.inj_active_vc[ni].expect("body flit has an active VC");
                (self.switches[ni].input_space(0, v) > 0).then_some(v)
            };
            let Some(vc) = vc else { continue };
            let flit = self.inj_pending.pop_front(ni).expect("front exists");
            self.switches[ni].deliver(0, vc, flit);
            self.active_switches.insert(ni);
            set_bit(&mut self.switch_mask, ni);
            self.backlog_flits -= 1;
            self.flits_in_network += 1;
            self.last_progress = self.now;
            self.inj_active_vc[ni] = if flit.kind.is_tail() { None } else { Some(vc) };
        }
    }

    /// Refreshes `view` in place to the current radio TX/RX state.  The
    /// per-radio snapshot vectors are cleared and refilled with `Copy`
    /// entries, so after the first cycle this allocates nothing.
    fn refresh_view(&self, view: &mut MediumView) {
        let radios_out = view.radios_mut();
        if radios_out.len() != self.radios.len() {
            radios_out.clear();
            radios_out.extend(self.radios.iter().enumerate().map(|(i, radio)| {
                RadioView {
                    id: RadioId(i),
                    node: radio.node,
                    tx: Vec::with_capacity(radio.fifo.lanes()),
                    rx: Vec::with_capacity(self.cfg.vcs),
                }
            }));
        }
        for (radio, out) in self.radios.iter().zip(radios_out.iter_mut()) {
            out.node = radio.node;
            out.tx.clear();
            for v in 0..radio.fifo.lanes() {
                let front = radio.fifo.front(v);
                let (run, has_tail) = match front {
                    Some((f, _)) => {
                        let mut run = 0usize;
                        let mut has_tail = false;
                        for (g, _) in radio.fifo.iter(v) {
                            if g.packet != f.packet {
                                break;
                            }
                            run += 1;
                            if g.kind.is_tail() {
                                has_tail = true;
                                break;
                            }
                        }
                        (run, has_tail)
                    }
                    None => (0, false),
                };
                out.tx.push(TxVcView {
                    front,
                    len: radio.fifo.len(v),
                    front_run_len: run,
                    front_run_has_tail: has_tail,
                });
            }
            let si = radio.node.index();
            let (_, radio_port) = self.radio_of_switch[si].expect("radio switch");
            let sw = &self.switches[si];
            out.rx.clear();
            for v in 0..self.cfg.vcs {
                out.rx.push(RxVcView {
                    owner: sw.vc_owner(radio_port, v),
                    len: sw.vc_len(radio_port, v),
                    capacity: sw.vc_capacity(),
                });
            }
        }
    }

    fn apply_medium_actions(&mut self, actions: &MediumActions) {
        for action in actions.actions() {
            match *action {
                MediumAction::Energy { category, energy } => {
                    self.meter.add(category, energy);
                }
                MediumAction::EnergyRepeated { category, energy, count } => {
                    self.meter.add_repeated(category, energy, count);
                }
                MediumAction::Transmit { from, tx_vc, rx_vc } => {
                    let radio = &mut self.radios[from.index()];
                    let (flit, target) = radio
                        .fifo
                        .pop_front(tx_vc)
                        .expect("MAC transmitted from an empty TX VC");
                    self.radio_backlog_flits -= 1;
                    // Free TX slot: credit back to the hosting switch's
                    // radio output port.
                    let host = radio.node.index();
                    let (_, host_port) = self.radio_of_switch[host].expect("host radio");
                    self.scratch_credits.push((host, host_port, tx_vc));
                    // Deliver into the receive VC the MAC reserved.
                    let ti = self.radios[target.index()].node.index();
                    let (_, t_port) = self.radio_of_switch[ti].expect("target radio");
                    {
                        let sw = &self.switches[ti];
                        assert!(
                            sw.may_accept(t_port, rx_vc, flit.packet, flit.kind.is_head())
                                && sw.input_space(t_port, rx_vc) > 0,
                            "MAC reservation violated at {target} vc {rx_vc} \
                             for {} ({:?})",
                            flit.packet,
                            flit.kind,
                        );
                    }
                    self.switches[ti].deliver(t_port, rx_vc, flit);
                    self.active_switches.insert(ti);
                    set_bit(&mut self.switch_mask, ti);
                    self.last_progress = self.now;
                }
            }
        }
    }

    /// Captures the network's complete dynamic state for checkpointing.
    ///
    /// Must be called between cycles (never from inside a step), where
    /// the per-cycle scratch buffers and the charge batch are empty —
    /// the snapshot deliberately omits them.
    ///
    /// # Panics
    ///
    /// Panics if the per-cycle charge batch is non-empty (a snapshot
    /// taken mid-step would silently drop pending meter charges).
    pub fn state(&self) -> NetworkState {
        assert!(
            self.charge_log.is_empty(),
            "network snapshot taken mid-cycle (pending meter charges)"
        );
        let (flight_lanes, flight_caps) = self.flight.state();
        let (inj_lanes, inj_caps) = self.inj_pending.state();
        NetworkState {
            now: self.now,
            switches: self.switches.iter().map(Switch::state).collect(),
            link_credits: self.links.iter().map(Link::credit).collect(),
            flight_lanes,
            flight_caps,
            radios: self
                .radios
                .iter()
                .map(|r| {
                    let (lanes, capacities) = r.fifo.state();
                    RadioTxState {
                        lanes,
                        capacities,
                        target_by_vc: r.target_by_vc.clone(),
                    }
                })
                .collect(),
            media: self.media.iter().map(|m| m.state_value()).collect(),
            inj_lanes,
            inj_caps,
            inj_active_vc: self.inj_active_vc.clone(),
            inj_cursors: self.inj_rr.iter().map(RoundRobin::cursor).collect(),
            next_packet: self.next_packet,
            reassembler: self.reassembler.clone(),
            arrivals: self.arrivals.clone(),
            stats: self.stats.clone(),
            meter: self.meter.clone(),
            flits_in_network: self.flits_in_network,
            backlog_flits: self.backlog_flits,
            radio_backlog_flits: self.radio_backlog_flits,
            ff_cycles: self.ff_cycles,
            last_progress: self.last_progress,
            active_links: self.active_links.members().to_vec(),
            active_switches: self.active_switches.members().to_vec(),
            active_injectors: self.active_injectors.members().to_vec(),
            links_mask: self.links_mask.clone(),
            switch_mask: self.switch_mask.clone(),
            inj_mask: self.inj_mask.clone(),
        }
    }

    /// Restores a [`NetworkState`] into this network.  The network must
    /// have been built for the same layout, routes and configuration the
    /// snapshot was taken from; the subsequent run is then bit-identical
    /// to the uninterrupted one.
    ///
    /// # Errors
    ///
    /// [`serde::Error`] when the snapshot's shape disagrees with this
    /// network's topology (counts of switches, links, radios, media or
    /// endpoints — e.g. a snapshot from a different scale or wireless
    /// model), or when an attached medium rejects its state value (MAC
    /// model mismatch).  Shape rejection happens before any mutation,
    /// so a failed restore leaves the network untouched.
    pub fn restore_state(&mut self, s: &NetworkState) -> Result<(), serde::Error> {
        let shape = |ours: usize, theirs: usize, what: &str| {
            if ours == theirs {
                Ok(())
            } else {
                Err(serde::Error::msg(format!(
                    "snapshot shape mismatch: {what} ({theirs} in snapshot, {ours} here)"
                )))
            }
        };
        shape(self.switches.len(), s.switches.len(), "switch count")?;
        shape(self.links.len(), s.link_credits.len(), "link count")?;
        shape(self.radios.len(), s.radios.len(), "radio count")?;
        shape(self.media.len(), s.media.len(), "medium count")?;
        shape(self.inj_active_vc.len(), s.inj_active_vc.len(), "endpoint count")?;
        shape(self.inj_rr.len(), s.inj_cursors.len(), "endpoint cursor count")?;
        shape(self.links_mask.len(), s.links_mask.len(), "link bitset width")?;
        shape(self.switch_mask.len(), s.switch_mask.len(), "switch bitset width")?;
        shape(self.inj_mask.len(), s.inj_mask.len(), "injector bitset width")?;
        // Media first: a MAC-model mismatch must fail before any part of
        // the network is mutated, so a failed restore leaves the freshly
        // built network untouched.
        for (m, v) in self.media.iter_mut().zip(&s.media) {
            m.restore_state_value(v)?;
        }
        self.now = s.now;
        for (sw, st) in self.switches.iter_mut().zip(&s.switches) {
            sw.restore_state(st);
        }
        for (link, &c) in self.links.iter_mut().zip(&s.link_credits) {
            link.set_credit(c);
        }
        self.flight.restore(&s.flight_lanes, &s.flight_caps);
        for (r, rs) in self.radios.iter_mut().zip(&s.radios) {
            r.fifo.restore(&rs.lanes, &rs.capacities);
            r.target_by_vc.clone_from(&rs.target_by_vc);
        }
        self.inj_pending.restore(&s.inj_lanes, &s.inj_caps);
        self.inj_active_vc.clone_from(&s.inj_active_vc);
        for (rr, &c) in self.inj_rr.iter_mut().zip(&s.inj_cursors) {
            rr.set_cursor(c);
        }
        self.next_packet = s.next_packet;
        self.reassembler = s.reassembler.clone();
        self.arrivals = s.arrivals.clone();
        self.stats = s.stats.clone();
        self.meter = s.meter.clone();
        self.flits_in_network = s.flits_in_network;
        self.backlog_flits = s.backlog_flits;
        self.radio_backlog_flits = s.radio_backlog_flits;
        self.ff_cycles = s.ff_cycles;
        self.last_progress = s.last_progress;
        self.active_links = ActiveSet::restore(self.links.len(), &s.active_links);
        self.active_switches = ActiveSet::restore(self.switches.len(), &s.active_switches);
        self.active_injectors = ActiveSet::restore(self.inj_rr.len(), &s.active_injectors);
        self.links_mask.copy_from_slice(&s.links_mask);
        self.switch_mask.copy_from_slice(&s.switch_mask);
        self.inj_mask.copy_from_slice(&s.inj_mask);
        self.charge_log.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimnet_routing::RoutingPolicy;
    use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout};

    fn build(arch: Architecture) -> (MultichipLayout, Network) {
        build_with(arch, RoutingPolicy::default())
    }

    fn build_with(arch: Architecture, policy: RoutingPolicy) -> (MultichipLayout, Network) {
        let layout =
            MultichipLayout::build(&MultichipConfig::xcym(4, 4, arch)).unwrap();
        let routes = Routes::build(layout.graph(), policy).unwrap();
        let net = Network::new(&layout, routes, NocConfig::paper()).unwrap();
        (layout, net)
    }

    #[test]
    fn config_validation() {
        assert!(NocConfig::paper().validate().is_ok());
        let mut c = NocConfig::paper();
        c.vcs = 0;
        assert!(c.validate().is_err());
        let mut c = NocConfig::paper();
        c.buf_depth = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn single_packet_crosses_one_chip() {
        let (layout, mut net) = build(Architecture::Substrate);
        // Two cores on the same chip, a few mesh hops apart.
        let src = layout.core_nodes()[0];
        let dst = layout.core_nodes()[15];
        net.inject(PacketDesc::new(src, dst, 64, 0));
        for _ in 0..1000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 1);
        assert_eq!(net.stats().flits_delivered(), 64);
        assert_eq!(net.flits_in_flight(), 0);
        let arr = net.drain_arrivals();
        assert_eq!(arr.len(), 1);
        // 6 mesh hops for 64 flits: latency must exceed serialization.
        assert!(arr[0].latency() >= 64);
        assert!(arr[0].latency() < 200, "got {}", arr[0].latency());
    }

    #[test]
    fn zero_load_latency_matches_pipeline_model() {
        let (layout, mut net) = build(Architecture::Substrate);
        // Single-flit packet, one mesh hop: RC+VA+SA (3 cycles) + link
        // (1) + ejection (1), plus one cycle of injection.
        let src = layout.core_nodes()[0];
        let dst = layout.core_nodes()[1];
        net.inject(PacketDesc::new(src, dst, 1, 0));
        for _ in 0..50 {
            net.step();
        }
        let arr = net.drain_arrivals();
        assert_eq!(arr.len(), 1);
        assert!(
            (5..=8).contains(&arr[0].latency()),
            "one-hop single-flit latency {} outside pipeline model",
            arr[0].latency()
        );
    }

    #[test]
    fn serial_link_is_much_slower_than_mesh() {
        let (layout, mut net) = build(Architecture::Substrate);
        // Core on chip 0 to the same mesh position on chip 1: crosses the
        // single 15 Gbps serial I/O.
        let src = layout.core_nodes()[0];
        let dst = layout.core_nodes()[16];
        net.inject(PacketDesc::new(src, dst, 64, 0));
        for _ in 0..3000 {
            net.step();
        }
        let arr = net.drain_arrivals();
        assert_eq!(arr.len(), 1);
        // 64 flits at 0.1875 flits/cycle is ≥ 341 cycles of serialization.
        assert!(arr[0].latency() > 300, "got {}", arr[0].latency());
    }

    #[test]
    fn packets_are_delivered_across_memory_wide_io() {
        let (layout, mut net) = build(Architecture::Substrate);
        let src = layout.core_nodes()[0];
        let dst = layout.memory_nodes()[0];
        net.inject(PacketDesc::new(src, dst, 64, 0));
        for _ in 0..2000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 1);
        // Wide I/O energy must have been charged.
        assert!(net.meter().category(EnergyCategory::WideIo).joules() > 0.0);
    }

    #[test]
    fn many_packets_all_arrive_interposer() {
        let (layout, mut net) = build(Architecture::Interposer);
        let cores = layout.core_nodes().to_vec();
        let mut expected = 0;
        for (i, &src) in cores.iter().enumerate() {
            let dst = cores[(i + 17) % cores.len()];
            net.inject(PacketDesc::new(src, dst, 16, 0));
            expected += 1;
        }
        for _ in 0..5000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), expected);
        assert_eq!(net.flits_in_flight(), 0);
        assert!(!net.is_stalled(1000));
    }

    #[test]
    fn energy_meter_conserves_and_separates_categories() {
        let (layout, mut net) = build(Architecture::Interposer);
        net.inject(PacketDesc::new(
            layout.core_nodes()[0],
            layout.core_nodes()[63],
            64,
            0,
        ));
        for _ in 0..3000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 1);
        let meter = net.meter();
        assert!(meter.verify_conservation(1e-9));
        assert!(meter.category(EnergyCategory::SwitchDynamic).joules() > 0.0);
        assert!(meter.category(EnergyCategory::SwitchStatic).joules() > 0.0);
        assert!(meter.category(EnergyCategory::InterposerWire).joules() > 0.0);
        // No serial I/O in the interposer architecture.
        assert_eq!(meter.category(EnergyCategory::SerialIo).joules(), 0.0);
    }

    #[test]
    fn begin_measurement_discards_warmup_energy_and_stats() {
        let (layout, mut net) = build(Architecture::Substrate);
        net.inject(PacketDesc::new(
            layout.core_nodes()[0],
            layout.core_nodes()[5],
            8,
            0,
        ));
        for _ in 0..500 {
            net.step();
        }
        assert!(net.meter().total().joules() > 0.0);
        net.begin_measurement();
        assert_eq!(net.meter().total().joules(), 0.0);
        assert_eq!(net.stats().window_packets_delivered(), 0);
        assert_eq!(net.stats().packets_delivered(), 1, "lifetime stats survive");
    }

    #[test]
    fn deterministic_simulation() {
        let run = || {
            let (layout, mut net) = build(Architecture::Substrate);
            for i in 0..32usize {
                net.inject(PacketDesc::new(
                    layout.core_nodes()[i],
                    layout.core_nodes()[63 - i],
                    16,
                    0,
                ));
            }
            for _ in 0..4000 {
                net.step();
            }
            (
                net.stats().packets_delivered(),
                net.stats().flits_delivered(),
                net.meter().total().picojoules(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert!((a.2 - b.2).abs() < 1e-6);
    }

    #[test]
    fn run_for_and_drain_helpers() {
        let (layout, mut net) = build(Architecture::Substrate);
        net.inject(PacketDesc::new(
            layout.core_nodes()[0],
            layout.core_nodes()[9],
            16,
            0,
        ));
        net.run_for(3);
        assert_eq!(net.now(), 3);
        assert!(net.drain(5_000), "short packet must drain");
        assert_eq!(net.stats().packets_delivered(), 1);
        assert_eq!(net.flits_in_flight(), 0);
        // Draining an empty network is a no-op that reports success.
        let before = net.now();
        assert!(net.drain(100));
        assert_eq!(net.now(), before);
    }

    #[test]
    fn injection_respects_endpoint_rate() {
        let (layout, mut net) = build(Architecture::Substrate);
        // Queue several packets at one source; backlog drains one flit
        // per cycle at most.
        let src = layout.core_nodes()[0];
        let dst = layout.core_nodes()[3];
        for _ in 0..4 {
            net.inject(PacketDesc::new(src, dst, 8, 0));
        }
        assert_eq!(net.source_backlog(), 32);
        net.step();
        assert_eq!(net.source_backlog(), 31);
        net.step();
        assert_eq!(net.source_backlog(), 30);
    }

    #[test]
    fn wireless_layout_without_medium_stalls_interchip_traffic() {
        // Without an attached medium, radio TX buffers fill and nothing
        // crosses chips: the watchdog must detect the stall.
        let (layout, mut net) =
            build_with(Architecture::Wireless, RoutingPolicy::shortest_path());
        net.inject(PacketDesc::new(
            layout.core_nodes()[0],
            layout.core_nodes()[63],
            64,
            0,
        ));
        for _ in 0..3000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 0);
        assert!(net.is_stalled(1000));
    }

    #[test]
    fn wide_io_sustains_more_than_one_flit_per_cycle() {
        // The 128 Gbps wide I/O runs at 1.6 flits/cycle: keep a stack's
        // link saturated from nearby cores and check the delivered rate
        // exceeds what any 1.0-rate link could carry.
        let (layout, mut net) = build(Architecture::Substrate);
        let stack = layout.memory_nodes()[0];
        let chip = layout.adjacent_chip_of_stack(0).unwrap();
        // Several cores of the adjacent chip hammer the stack.
        let base = chip * 16;
        let mut offered = 0u64;
        for k in 0..40u64 {
            for c in 0..8usize {
                net.inject(PacketDesc::new(
                    layout.core_nodes()[base + c],
                    stack,
                    64,
                    k * 50,
                ));
                offered += 1;
            }
        }
        let warm = 200u64;
        for _ in 0..warm {
            net.step();
        }
        net.begin_measurement();
        let cycles = 2_000u64;
        for _ in 0..cycles {
            net.step();
        }
        let flits = net.stats().window_flits_delivered();
        let rate = flits as f64 / cycles as f64;
        assert!(
            rate > 1.05,
            "wide I/O should exceed one flit per cycle, got {rate} \
             ({offered} packets offered)"
        );
        assert!(rate <= 1.6 + 1e-9, "cannot beat the physical rate: {rate}");
    }

    #[test]
    fn intra_chip_traffic_flows_on_wireless_architecture_without_medium() {
        // Shortest-path routing keeps same-chip traffic on the mesh (a
        // radio detour is never shorter than the direct mesh path).
        let (layout, mut net) =
            build_with(Architecture::Wireless, RoutingPolicy::shortest_path());
        net.inject(PacketDesc::new(
            layout.core_nodes()[0],
            layout.core_nodes()[5],
            16,
            0,
        ));
        for _ in 0..1000 {
            net.step();
        }
        assert_eq!(net.stats().packets_delivered(), 1);
    }
}
