//! Packet descriptors (injection side) and reassembly (ejection side).

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use wimnet_topology::NodeId;

use crate::flit::{Flit, PacketId};

/// A packet to inject, as produced by the traffic generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketDesc {
    /// Source endpoint switch.
    pub src: NodeId,
    /// Destination endpoint switch.
    pub dest: NodeId,
    /// Packet length in flits (paper: 64).
    pub flits: u32,
    /// Cycle at which the source created the packet (latency is measured
    /// from here, so source-queue time counts).
    pub created_at: u64,
}

impl PacketDesc {
    /// Creates a descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    pub fn new(src: NodeId, dest: NodeId, flits: u32, created_at: u64) -> Self {
        assert!(flits > 0, "a packet needs at least one flit");
        PacketDesc { src, dest, flits, created_at }
    }

    /// Materialises the flit sequence for this packet.
    pub fn flits_for(&self, id: PacketId) -> impl Iterator<Item = Flit> + '_ {
        let len = self.flits;
        let desc = *self;
        (0..len).map(move |seq| Flit {
            packet: id,
            kind: Flit::kind_for(seq, len),
            seq,
            src: desc.src,
            dest: desc.dest,
            created_at: desc.created_at,
        })
    }
}

/// A fully delivered packet, as reported by the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrivedPacket {
    /// Packet identifier.
    pub id: PacketId,
    /// Source endpoint switch.
    pub src: NodeId,
    /// Destination endpoint switch.
    pub dest: NodeId,
    /// Number of flits delivered.
    pub flits: u32,
    /// Cycle the source created the packet.
    pub created_at: u64,
    /// Cycle the tail flit was ejected at the destination.
    pub arrived_at: u64,
}

impl ArrivedPacket {
    /// End-to-end packet latency in cycles (creation to tail ejection).
    pub fn latency(&self) -> u64 {
        self.arrived_at - self.created_at
    }
}

/// Reassembles ejected flits into [`ArrivedPacket`]s and checks wormhole
/// delivery invariants (in-order, no duplicates, no gaps).
///
/// Serializes (for checkpoints) as the pending map in sorted key order
/// — iteration order is never behaviorally observed, so a rebuilt map
/// is equivalent.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Reassembler {
    /// Keyed by packet id; iteration order is never observed (only
    /// entry/remove), so the Fx hash map's O(1) lookups are safe on
    /// this per-ejected-flit hot path.
    pending: FxHashMap<PacketId, (u32, Flit)>, // (flits seen, head flit copy)
}

impl Reassembler {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Reassembler::default()
    }

    /// Accepts one ejected flit; returns the completed packet when `flit`
    /// was its tail.
    ///
    /// # Panics
    ///
    /// Panics if flits of a packet arrive out of order or duplicated —
    /// that would be a wormhole-integrity bug in the engine, not a
    /// recoverable condition.
    pub fn push(&mut self, flit: Flit, now: u64) -> Option<ArrivedPacket> {
        let entry = self
            .pending
            .entry(flit.packet)
            .or_insert_with(|| (0, flit));
        assert_eq!(
            entry.0, flit.seq,
            "{} flit {} arrived out of order (expected seq {})",
            flit.packet, flit.seq, entry.0
        );
        entry.0 += 1;
        if flit.kind.is_tail() {
            let (count, head) = self.pending.remove(&flit.packet).expect("entry exists");
            Some(ArrivedPacket {
                id: flit.packet,
                src: head.src,
                dest: head.dest,
                flits: count,
                created_at: head.created_at,
                arrived_at: now,
            })
        } else {
            None
        }
    }

    /// Number of packets with some but not all flits delivered.
    pub fn incomplete(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;

    fn desc() -> PacketDesc {
        PacketDesc::new(NodeId(1), NodeId(5), 4, 100)
    }

    #[test]
    fn descriptor_produces_well_formed_flits() {
        let d = desc();
        let flits: Vec<_> = d.flits_for(PacketId(9)).collect();
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert!(flits.iter().all(|f| f.packet == PacketId(9)));
        assert!(flits.iter().all(|f| f.src == NodeId(1) && f.dest == NodeId(5)));
        assert!(flits.iter().enumerate().all(|(i, f)| f.seq == i as u32));
    }

    #[test]
    fn single_flit_packet_is_head_tail() {
        let d = PacketDesc::new(NodeId(0), NodeId(1), 1, 0);
        let flits: Vec<_> = d.flits_for(PacketId(1)).collect();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
    }

    #[test]
    #[should_panic]
    fn zero_flit_packet_panics() {
        PacketDesc::new(NodeId(0), NodeId(1), 0, 0);
    }

    #[test]
    fn reassembly_completes_on_tail_and_reports_latency() {
        let d = desc();
        let mut r = Reassembler::new();
        let mut done = None;
        for f in d.flits_for(PacketId(3)) {
            assert!(done.is_none());
            done = r.push(f, 250);
        }
        let p = done.expect("tail completes packet");
        assert_eq!(p.flits, 4);
        assert_eq!(p.latency(), 150);
        assert_eq!(r.incomplete(), 0);
    }

    #[test]
    fn interleaved_packets_reassemble_independently() {
        let a = PacketDesc::new(NodeId(0), NodeId(9), 2, 0);
        let b = PacketDesc::new(NodeId(1), NodeId(9), 2, 5);
        let fa: Vec<_> = a.flits_for(PacketId(1)).collect();
        let fb: Vec<_> = b.flits_for(PacketId(2)).collect();
        let mut r = Reassembler::new();
        assert!(r.push(fa[0], 10).is_none());
        assert!(r.push(fb[0], 11).is_none());
        assert_eq!(r.incomplete(), 2);
        assert!(r.push(fb[1], 12).is_some());
        assert!(r.push(fa[1], 13).is_some());
        assert_eq!(r.incomplete(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_order_flit_panics() {
        let d = desc();
        let flits: Vec<_> = d.flits_for(PacketId(3)).collect();
        let mut r = Reassembler::new();
        r.push(flits[0], 0);
        r.push(flits[2], 1); // skipped seq 1
    }
}
