//! Radio ports and the shared-medium extension point.
//!
//! A switch that carries a wireless interface (WI) gets two extra
//! structures:
//!
//! * a **transmit buffer** (`RadioTx`) — per-VC FIFOs the switch's
//!   radio output port drains into (these are the "output VCs of the
//!   transmitting WI" whose count bounds the control packet's 3-tuples,
//!   §III.D), each buffered flit tagged with its target WI;
//! * a **receive port** — an ordinary input port on the switch, with
//!   packet-to-VC mapping maintained by the network so that partial
//!   packets from different sources keep wormhole integrity (the paper's
//!   `PktID` mechanism).
//!
//! The medium itself (channel + MAC) lives in `wimnet-wireless` and talks
//! to the engine through [`SharedMedium`]: each cycle it receives an
//! immutable [`MediumView`] of every radio's TX/RX state and returns
//! [`MediumActions`] (flit transmissions and energy charges) that the
//! network validates and applies.  This command pattern keeps the MAC
//! logic free of engine internals and makes it unit-testable in
//! isolation.

use serde::{Deserialize, Serialize, Value};
use wimnet_energy::{Energy, EnergyCategory};
use wimnet_topology::NodeId;

use crate::flit::{Flit, FlitKind, PacketId};
use crate::ring::RingSlab;

/// Identifier of a radio (= wireless interface); doubles as the MAC
/// sequence position, mirroring `wimnet_topology::WiId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RadioId(pub usize);

impl RadioId {
    /// Dense index of this radio.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for RadioId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "radio{}", self.0)
    }
}

/// Transmit-side state of one radio.
///
/// The per-VC transmit FIFOs are one [`RingSlab`] (lane = TX VC): all of
/// a radio's buffered flits sit in a single contiguous allocation
/// instead of a `VecDeque` per VC, so the per-cycle view refresh and the
/// MAC transmit pops walk dense memory.
#[derive(Debug, Clone)]
pub(crate) struct RadioTx {
    /// The switch hosting this radio.
    pub(crate) node: NodeId,
    /// Per-VC transmit FIFOs, slabbed: lane `v` holds VC `v`'s
    /// `(flit, target)` entries in FIFO order.
    pub(crate) fifo: RingSlab<(Flit, RadioId)>,
    /// Target radio chosen at VA time for the packet currently allocated
    /// to each VC; flits are tagged on push.
    pub(crate) target_by_vc: Vec<Option<RadioId>>,
}

impl RadioTx {
    pub(crate) fn new(node: NodeId, vcs: usize, depth: usize) -> Self {
        let fill = (
            Flit {
                packet: PacketId(0),
                kind: FlitKind::Body,
                seq: 0,
                src: node,
                dest: node,
                created_at: 0,
            },
            RadioId(0),
        );
        RadioTx {
            node,
            fifo: RingSlab::uniform(vcs, depth, fill),
            target_by_vc: vec![None; vcs],
        }
    }

    /// Free slots in one TX VC's FIFO.
    pub(crate) fn free_space(&self, vc: usize) -> usize {
        self.fifo.free_space(vc)
    }

    /// Total buffered flits across all TX VCs.
    pub(crate) fn backlog(&self) -> u64 {
        (0..self.fifo.lanes()).map(|v| self.fifo.len(v) as u64).sum()
    }
}

/// Read-only snapshot of one TX VC, offered to the medium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxVcView {
    /// The flit at the FIFO front with its target, if any.
    pub front: Option<(Flit, RadioId)>,
    /// Buffered flits.
    pub len: usize,
    /// Leading flits that belong to the front packet (the contiguous run
    /// a control-packet 3-tuple may announce, §III.D).
    pub front_run_len: usize,
    /// `true` when the front packet's tail is inside that run — i.e. the
    /// rest of the packet is fully buffered (what the whole-packet token
    /// MAC requires, and what completes a partial transfer).
    pub front_run_has_tail: bool,
}

impl TxVcView {
    /// `true` when an *entire* packet sits at the front (head through
    /// tail) — the token MAC's transmission eligibility.
    pub fn whole_packet_at_front(&self) -> bool {
        match self.front {
            Some((f, _)) => f.kind.is_head() && self.front_run_has_tail,
            None => false,
        }
    }
}

/// Read-only snapshot of one RX VC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RxVcView {
    /// Packet currently owning the VC (until its tail is delivered).
    pub owner: Option<PacketId>,
    /// Buffered flits.
    pub len: usize,
    /// Buffer capacity.
    pub capacity: usize,
}

/// Read-only snapshot of one radio.
#[derive(Debug, Clone, PartialEq)]
pub struct RadioView {
    /// The radio's id (MAC sequence position).
    pub id: RadioId,
    /// The hosting switch.
    pub node: NodeId,
    /// Transmit VCs.
    pub tx: Vec<TxVcView>,
    /// Receive VCs (the hosting switch's radio input port).
    pub rx: Vec<RxVcView>,
}

/// Per-cycle snapshot of every radio, offered to the [`SharedMedium`].
///
/// The engine keeps **one** `MediumView` alive for the whole run and
/// refreshes it in place each cycle (`Network` owns it as scratch):
/// the per-radio `tx`/`rx` vectors are cleared and refilled with
/// `Copy` snapshots, so after the first cycle a shared-channel MAC run
/// allocates nothing on the view path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MediumView {
    radios: Vec<RadioView>,
}

impl MediumView {
    /// Assembles a view from per-radio snapshots.  MAC unit tests
    /// construct views directly; the engine reuses one, refreshing the
    /// per-radio snapshots in place.
    pub fn new(radios: Vec<RadioView>) -> Self {
        MediumView { radios }
    }

    /// Mutable access for in-place refresh (engine internal).
    pub(crate) fn radios_mut(&mut self) -> &mut Vec<RadioView> {
        &mut self.radios
    }

    /// All radios in MAC sequence order.
    pub fn radios(&self) -> &[RadioView] {
        &self.radios
    }

    /// One radio's view.
    pub fn radio(&self, id: RadioId) -> &RadioView {
        &self.radios[id.index()]
    }

    /// Number of radios on the medium.
    pub fn len(&self) -> usize {
        self.radios.len()
    }

    /// `true` when no radios exist.
    pub fn is_empty(&self) -> bool {
        self.radios.is_empty()
    }

    /// Which RX VC at `radio` can accept a flit of `packet` right now:
    /// the VC already owned by the packet, or (for a head flit) the
    /// lowest free VC — the paper's "the WI reserves an unoccupied VC".
    /// `None` when the receiver has no room, which the MAC must treat as
    /// backpressure.
    pub fn rx_admission(&self, radio: RadioId, packet: PacketId, is_head: bool) -> Option<usize> {
        let rx = &self.radios[radio.index()].rx;
        if is_head {
            rx.iter()
                .position(|vc| vc.owner.is_none() && vc.len < vc.capacity)
        } else {
            rx.iter()
                .position(|vc| vc.owner == Some(packet) && vc.len < vc.capacity)
        }
    }
}

/// One command from the medium to the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MediumAction {
    /// Pop the front flit of `from`'s `tx_vc` and deliver it into VC
    /// `rx_vc` of its tagged target radio's receive port.
    ///
    /// The receive VC is chosen by the MAC (the paper's destination-side
    /// "reserves an unoccupied VC" keyed by `PktID`): reservations made
    /// at control-packet time must be honoured verbatim, because a
    /// first-fit re-assignment at delivery time could land a head flit
    /// in a VC with less space than the reservation guaranteed.
    Transmit {
        /// Transmitting radio.
        from: RadioId,
        /// Transmit VC to pop.
        tx_vc: usize,
        /// Receive VC at the target radio.
        rx_vc: usize,
    },
    /// Charge energy to the meter (TX/RX/control/idle/sleep categories).
    Energy {
        /// Meter category.
        category: EnergyCategory,
        /// Amount.
        energy: Energy,
    },
    /// Charge `energy` to the meter `count` times — one exact
    /// multiply-add on the meter's superaccumulator
    /// (`EnergyMeter::add_repeated`), bit-identical to `count`
    /// individual [`MediumAction::Energy`] actions.  Idle closed forms
    /// ([`SharedMedium::idle_advance`]) use this to account whole
    /// skipped stretches in O(1) actions.
    EnergyRepeated {
        /// Meter category.
        category: EnergyCategory,
        /// Amount of each charge.
        energy: Energy,
        /// Number of charges.
        count: u64,
    },
}

/// The medium's command list for one cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MediumActions {
    pub(crate) list: Vec<MediumAction>,
}

impl MediumActions {
    /// An empty action list.
    pub fn new() -> Self {
        MediumActions::default()
    }

    /// Queues a flit transmission into the reserved receive VC.
    pub fn transmit(&mut self, from: RadioId, tx_vc: usize, rx_vc: usize) {
        self.list.push(MediumAction::Transmit { from, tx_vc, rx_vc });
    }

    /// Queues an energy charge.
    pub fn energy(&mut self, category: EnergyCategory, energy: Energy) {
        self.list.push(MediumAction::Energy { category, energy });
    }

    /// Queues `count` identical energy charges as one action (a no-op
    /// when `count` is zero).
    pub fn energy_repeated(&mut self, category: EnergyCategory, energy: Energy, count: u64) {
        if count > 0 {
            self.list
                .push(MediumAction::EnergyRepeated { category, energy, count });
        }
    }

    /// Queued actions, in order.
    pub fn actions(&self) -> &[MediumAction] {
        &self.list
    }

    /// Number of queued actions.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

/// A shared communication medium attached to the network — the 60 GHz
/// wireless channel in this reproduction, but any broadcast bus fits.
///
/// Implementations decide *which* flits move each cycle (MAC policy) and
/// *what energy* that costs; the engine enforces buffer capacities and
/// wormhole integrity when applying the returned actions.
pub trait SharedMedium {
    /// Called once per cycle after the switches' SA/ST phase.
    fn step(&mut self, now: u64, view: &MediumView, actions: &mut MediumActions);

    /// Human-readable MAC/channel name for reports.
    fn name(&self) -> &str {
        "shared-medium"
    }

    /// Idle fast-forward contract (see `docs/fast_forward.md` for the
    /// full version).  The engine consults this only when every radio
    /// TX buffer is empty and nothing is in flight — a precondition it
    /// tracks explicitly (`Network::radio_backlog`).  Returning `true`
    /// promises that, under such a view, the medium's evolution is
    /// **view-independent**: [`SharedMedium::step`] would move no flits
    /// whatever the receive-side state shows, and
    /// [`SharedMedium::idle_step`] reproduces its state changes and
    /// energy charges *exactly* (bit-identical floats), composing over
    /// any cycle count — `k` idle steps must equal `k` full steps.
    ///
    /// A medium may decline (the conservative default) while any
    /// internal schedule still holds work — a transmission in flight, a
    /// pending delivery queue — or when its idle behavior genuinely
    /// reads the per-cycle view.  All three shipped MACs accept when
    /// drained: their idle phase/token machines are periodic and replay
    /// closed-form (`wimnet-wireless`'s `idle_advance` methods).
    fn is_quiescent(&self) -> bool {
        false
    }

    /// One idle cycle without a [`MediumView`]: replays exactly what
    /// [`SharedMedium::step`] would have done given an all-empty view.
    /// Emitted charges must *sum* to exactly what the stepped cycle
    /// would have charged per category — the meter's exact
    /// superaccumulator makes that sum independent of emission order
    /// and batching, so the obligation is on totals, not on the action
    /// sequence.  Only called when [`SharedMedium::is_quiescent`]
    /// returned `true`.  Implementations must only emit
    /// [`MediumAction::Energy`] / [`MediumAction::EnergyRepeated`]
    /// actions — a quiescent medium has nothing to transmit by
    /// definition, and the engine treats a `Transmit` here as a
    /// contract violation.
    fn idle_step(&mut self, now: u64, actions: &mut MediumActions) {
        let _ = (now, actions);
        unreachable!("idle_step requires an is_quiescent implementation");
    }

    /// `cycles` idle cycles in one call: must leave the medium in the
    /// same state as `cycles` consecutive [`SharedMedium::idle_step`]s
    /// starting at `now`, with charges summing per category to exactly
    /// the same energies.  The default replays per-cycle; closed-form
    /// media override it to emit O(1) [`MediumAction::EnergyRepeated`]
    /// runs for the whole stretch — that override is what makes a
    /// fast-forwarded cycle O(1) in meter work (`docs/fast_forward.md`).
    fn idle_advance(&mut self, now: u64, cycles: u64, actions: &mut MediumActions) {
        for c in now..now + cycles {
            self.idle_step(c, actions);
        }
    }

    /// The medium's complete dynamic state as a schema-free serde
    /// [`Value`] subtree, for checkpointing (`docs/checkpoint.md`).
    /// Must round-trip through
    /// [`SharedMedium::restore_state_value`] to a medium whose every
    /// subsequent step is bit-identical.  The default (for stateless or
    /// test media) records nothing.
    fn state_value(&self) -> Value {
        Value::Null
    }

    /// Restores the medium from a [`SharedMedium::state_value`]
    /// snapshot taken on a medium of the same configuration.
    fn restore_state_value(&mut self, v: &Value) -> Result<(), serde::Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(serde::Error::msg(format!(
                "medium `{}` does not accept checkpoint state",
                self.name()
            ))),
        }
    }

    // --- Observability hooks (`docs/observability.md`).  All three
    // are read-only with respect to MAC decisions: counters map the
    // statistics a MAC already keeps, and turn recording may only
    // *append to a side buffer* — never touch arbitration state or an
    // RNG — so enabling them cannot change an outcome.

    /// The medium's arbitration counters, mapped from the statistics
    /// it already keeps.  The default (for test media) reports zeros.
    fn mac_counters(&self) -> wimnet_telemetry::MacCounters {
        wimnet_telemetry::MacCounters::default()
    }

    /// Asks the medium to record transmission-turn intervals for trace
    /// export.  Recording must be purely additive (a side buffer);
    /// media without turn structure ignore this.
    fn set_trace_enabled(&mut self, on: bool) {
        let _ = on;
    }

    /// Drains recorded turn intervals into `out` (no-op unless
    /// [`SharedMedium::set_trace_enabled`] was called with `true`).
    fn drain_turn_records(&mut self, out: &mut Vec<wimnet_telemetry::TurnRecord>) {
        let _ = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::FlitKind;

    fn flit(packet: u64, kind: FlitKind) -> Flit {
        Flit {
            packet: PacketId(packet),
            kind,
            seq: 0,
            src: NodeId(0),
            dest: NodeId(1),
            created_at: 0,
        }
    }

    fn view_with_rx(rx: Vec<RxVcView>) -> MediumView {
        MediumView::new(vec![RadioView {
            id: RadioId(0),
            node: NodeId(0),
            tx: vec![],
            rx,
        }])
    }

    #[test]
    fn rx_admission_head_takes_lowest_free_vc() {
        let v = view_with_rx(vec![
            RxVcView { owner: Some(PacketId(7)), len: 1, capacity: 4 },
            RxVcView { owner: None, len: 0, capacity: 4 },
            RxVcView { owner: None, len: 0, capacity: 4 },
        ]);
        assert_eq!(v.rx_admission(RadioId(0), PacketId(9), true), Some(1));
    }

    #[test]
    fn rx_admission_body_follows_its_owner_vc() {
        let v = view_with_rx(vec![
            RxVcView { owner: None, len: 0, capacity: 4 },
            RxVcView { owner: Some(PacketId(9)), len: 2, capacity: 4 },
        ]);
        assert_eq!(v.rx_admission(RadioId(0), PacketId(9), false), Some(1));
        assert_eq!(v.rx_admission(RadioId(0), PacketId(8), false), None);
    }

    #[test]
    fn rx_admission_respects_capacity() {
        let v = view_with_rx(vec![RxVcView {
            owner: Some(PacketId(9)),
            len: 4,
            capacity: 4,
        }]);
        assert_eq!(v.rx_admission(RadioId(0), PacketId(9), false), None);
        let v = view_with_rx(vec![RxVcView { owner: None, len: 4, capacity: 4 }]);
        assert_eq!(v.rx_admission(RadioId(0), PacketId(1), true), None);
    }

    #[test]
    fn actions_collect_in_order() {
        let mut a = MediumActions::new();
        assert!(a.is_empty());
        a.transmit(RadioId(1), 3, 0);
        a.energy(EnergyCategory::WirelessTx, Energy::from_pj(2.3));
        assert_eq!(a.len(), 2);
        assert!(matches!(
            a.actions()[0],
            MediumAction::Transmit { from: RadioId(1), tx_vc: 3, rx_vc: 0 }
        ));
        assert!(matches!(a.actions()[1], MediumAction::Energy { .. }));
        let _ = flit(0, FlitKind::Head); // silence helper warning
    }
}
