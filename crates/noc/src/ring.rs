//! Multi-lane contiguous ring buffers (ring slabs).
//!
//! A [`RingSlab`] packs many fixed-capacity FIFO lanes into one
//! contiguous slot array with CSR-style lane bounds — the same
//! flatten-the-nested-containers idiom the switch fabric applies to its
//! input VCs ([`crate::vc::VcFabric`]) and `docs/engine.md` documents
//! under "Switch memory layout".  The engine uses it for the last three
//! per-component `VecDeque` nests on the hot path:
//!
//! * `Link` in-flight pipelines — one network-owned slab, lane per link;
//! * radio transmit FIFOs — one slab per radio, lane per TX VC;
//! * injection source queues — one network-owned slab, lane per endpoint.
//!
//! Semantics are exactly those of a `VecDeque<T>` per lane (same fronts,
//! same pops, same iteration order — pinned by the model proptest in
//! `tests/slab_model.rs`), with two differences: capacity is fixed per
//! lane unless the caller opts into [`RingSlab::push_back_growing`], and
//! storage never reallocates on the per-cycle path.

/// Many fixed-capacity FIFO lanes in one contiguous slot array.
///
/// Lane `l` owns `slots[base[l] .. base[l + 1]]` as a circular buffer
/// with its own head offset and length.  `T: Copy` keeps push/pop a
/// plain slot write/read; a caller-supplied fill value initialises
/// unoccupied slots (no `Default` bound on the payload).
#[derive(Debug, Clone, PartialEq)]
pub struct RingSlab<T> {
    slots: Vec<T>,
    /// CSR lane bounds into `slots` (`lanes + 1` entries).
    base: Vec<u32>,
    /// Front offset within each lane's span.
    head: Vec<u32>,
    /// Occupied slots per lane.
    len: Vec<u32>,
    /// Value for unoccupied slots (and for growth rebuilds).
    fill: T,
}

impl<T: Copy> RingSlab<T> {
    /// A slab of `lanes` lanes with `capacity` slots each.
    pub fn uniform(lanes: usize, capacity: usize, fill: T) -> Self {
        Self::with_capacities(&vec![capacity; lanes], fill)
    }

    /// A slab with per-lane capacities (zero-capacity lanes are allowed;
    /// they grow on first [`RingSlab::push_back_growing`]).
    ///
    /// # Panics
    ///
    /// Panics if total capacity exceeds `u32::MAX` slots.
    pub fn with_capacities(capacities: &[usize], fill: T) -> Self {
        let mut base = Vec::with_capacity(capacities.len() + 1);
        let mut total = 0u32;
        base.push(0);
        for &c in capacities {
            total = total
                .checked_add(u32::try_from(c).expect("lane capacity fits u32"))
                .expect("ring slab fits u32 slots");
            base.push(total);
        }
        RingSlab {
            slots: vec![fill; total as usize],
            base,
            head: vec![0; capacities.len()],
            len: vec![0; capacities.len()],
            fill,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.head.len()
    }

    /// Capacity of one lane.
    #[inline]
    pub fn capacity(&self, lane: usize) -> usize {
        (self.base[lane + 1] - self.base[lane]) as usize
    }

    /// Occupied slots in one lane.
    #[inline]
    pub fn len(&self, lane: usize) -> usize {
        self.len[lane] as usize
    }

    /// `true` when the lane holds nothing.
    #[inline]
    pub fn is_empty(&self, lane: usize) -> bool {
        self.len[lane] == 0
    }

    /// Remaining free slots in one lane.
    #[inline]
    pub fn free_space(&self, lane: usize) -> usize {
        self.capacity(lane) - self.len(lane)
    }

    /// Slot index of element `i` (0 = front) of `lane`.
    #[inline]
    fn slot(&self, lane: usize, i: usize) -> usize {
        let cap = (self.base[lane + 1] - self.base[lane]) as usize;
        self.base[lane] as usize + (self.head[lane] as usize + i) % cap
    }

    /// The front element of a lane, if any.
    #[inline]
    pub fn front(&self, lane: usize) -> Option<T> {
        (self.len[lane] > 0).then(|| self.slots[self.slot(lane, 0)])
    }

    /// Element `i` of a lane (0 = front), if occupied.
    #[inline]
    pub fn get(&self, lane: usize, i: usize) -> Option<T> {
        (i < self.len(lane)).then(|| self.slots[self.slot(lane, i)])
    }

    /// Appends to the back of a lane.
    ///
    /// # Panics
    ///
    /// Panics when the lane is full — fixed-capacity lanes model
    /// credit-bounded buffers, where overflow is a protocol violation.
    #[inline]
    pub fn push_back(&mut self, lane: usize, value: T) {
        assert!(self.free_space(lane) > 0, "ring lane {lane} overflow");
        let slot = self.slot(lane, self.len(lane));
        self.slots[slot] = value;
        self.len[lane] += 1;
    }

    /// Appends to the back of a lane, doubling the lane's capacity first
    /// when it is full (rebuilds the slab; amortised O(1), never on the
    /// steady-state path once lanes reach their working size).
    #[inline]
    pub fn push_back_growing(&mut self, lane: usize, value: T) {
        if self.free_space(lane) == 0 {
            self.grow_lane(lane);
        }
        self.push_back(lane, value);
    }

    /// Removes and returns the front of a lane.
    #[inline]
    pub fn pop_front(&mut self, lane: usize) -> Option<T> {
        if self.len[lane] == 0 {
            return None;
        }
        let slot = self.slot(lane, 0);
        let value = self.slots[slot];
        let cap = self.capacity(lane) as u32;
        self.head[lane] = (self.head[lane] + 1) % cap;
        self.len[lane] -= 1;
        Some(value)
    }

    /// Iterates one lane front-to-back by value.
    pub fn iter(&self, lane: usize) -> impl Iterator<Item = T> + '_ {
        (0..self.len(lane)).map(move |i| self.slots[self.slot(lane, i)])
    }

    /// The slab's complete dynamic state for checkpointing: per-lane
    /// contents (front to back) and per-lane capacities (capacities are
    /// state too — [`RingSlab::push_back_growing`] may have grown a
    /// lane beyond its constructed size).
    pub fn state(&self) -> (Vec<Vec<T>>, Vec<usize>) {
        let contents = (0..self.lanes()).map(|l| self.iter(l).collect()).collect();
        let caps = (0..self.lanes()).map(|l| self.capacity(l)).collect();
        (contents, caps)
    }

    /// Rebuilds the slab from a [`RingSlab::state`] snapshot — the same
    /// rebuild [`RingSlab::push_back_growing`] performs on growth, so
    /// heads normalise to zero, which is invisible through the FIFO
    /// interface.
    ///
    /// # Panics
    ///
    /// Panics when the lane count differs or a lane's contents exceed
    /// its capacity.
    pub fn restore(&mut self, contents: &[Vec<T>], capacities: &[usize]) {
        assert_eq!(contents.len(), self.lanes(), "ring slab lane count changed");
        assert_eq!(capacities.len(), self.lanes(), "ring slab lane count changed");
        let mut next = RingSlab::with_capacities(capacities, self.fill);
        for (l, lane) in contents.iter().enumerate() {
            for &v in lane {
                next.push_back(l, v);
            }
        }
        *self = next;
    }

    /// Doubles `lane`'s capacity by rebuilding the slab (contents and
    /// order of every lane are preserved).
    fn grow_lane(&mut self, lane: usize) {
        let mut caps: Vec<usize> = (0..self.lanes()).map(|l| self.capacity(l)).collect();
        caps[lane] = (caps[lane] * 2).max(4);
        let mut next = RingSlab::with_capacities(&caps, self.fill);
        for l in 0..self.lanes() {
            for i in 0..self.len(l) {
                next.push_back(l, self.slots[self.slot(l, i)]);
            }
        }
        *self = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_lane_fifo_order_with_wraparound() {
        let mut r = RingSlab::uniform(2, 3, 0u32);
        for round in 0..10u32 {
            r.push_back(0, round);
            r.push_back(1, 100 + round);
            assert_eq!(r.pop_front(0), Some(round));
            assert_eq!(r.pop_front(1), Some(100 + round));
        }
        assert!(r.is_empty(0) && r.is_empty(1));
    }

    #[test]
    fn lanes_do_not_interfere() {
        let mut r = RingSlab::with_capacities(&[2, 4], 0u8);
        r.push_back(0, 1);
        r.push_back(1, 2);
        r.push_back(1, 3);
        assert_eq!(r.len(0), 1);
        assert_eq!(r.len(1), 2);
        assert_eq!(r.front(0), Some(1));
        assert_eq!(r.pop_front(1), Some(2));
        assert_eq!(r.front(0), Some(1), "lane 0 untouched by lane 1 pops");
        assert_eq!(r.free_space(0), 1);
    }

    #[test]
    fn get_and_iter_walk_front_to_back() {
        let mut r = RingSlab::uniform(1, 4, 0i32);
        // Force a wrapped layout: fill, drain two, refill two.
        for v in [1, 2, 3, 4] {
            r.push_back(0, v);
        }
        r.pop_front(0);
        r.pop_front(0);
        r.push_back(0, 5);
        r.push_back(0, 6);
        assert_eq!(r.iter(0).collect::<Vec<_>>(), vec![3, 4, 5, 6]);
        assert_eq!(r.get(0, 0), Some(3));
        assert_eq!(r.get(0, 3), Some(6));
        assert_eq!(r.get(0, 4), None);
    }

    #[test]
    fn growth_preserves_every_lane_in_order() {
        let mut r = RingSlab::with_capacities(&[0, 2], 0u32);
        r.push_back(1, 7);
        r.push_back(1, 8);
        for v in 0..20 {
            r.push_back_growing(0, v);
        }
        assert_eq!(r.iter(0).collect::<Vec<_>>(), (0..20).collect::<Vec<_>>());
        assert_eq!(r.iter(1).collect::<Vec<_>>(), vec![7, 8]);
        assert!(r.capacity(0) >= 20);
        assert_eq!(r.capacity(1), 2, "only the full lane grew");
    }

    #[test]
    #[should_panic]
    fn fixed_lane_overflow_panics() {
        let mut r = RingSlab::uniform(1, 1, 0u32);
        r.push_back(0, 1);
        r.push_back(0, 2);
    }
}
