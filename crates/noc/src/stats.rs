//! Network statistics: throughput, latency and measurement windows.
//!
//! The paper measures at steady state: "ten thousand iterations were
//! performed eliminating transients in the first thousand iterations."
//! [`NetworkStats`] mirrors that: counters accumulate from simulation
//! start, and a *measurement window* opened after warmup feeds the
//! reported metrics.  Latency is only recorded for packets created inside
//! the window, so warmup transients never contaminate it.

use serde::{Deserialize, Serialize};
use wimnet_telemetry::LogHistogram;

use crate::packet::ArrivedPacket;

/// Throughput and latency accounting for one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    // Lifetime counters.
    injected_packets: u64,
    injected_flits: u64,
    delivered_packets: u64,
    delivered_flits: u64,
    // Measurement window.
    window_start: Option<u64>,
    window_cycles: u64,
    window_delivered_packets: u64,
    window_delivered_flits: u64,
    window_injected_packets: u64,
    window_injected_flits: u64,
    latency_sum: u64,
    latency_count: u64,
    latency_max: u64,
    latency_min: u64,
    latency_hist: LogHistogram,
}

impl Default for NetworkStats {
    fn default() -> Self {
        NetworkStats {
            injected_packets: 0,
            injected_flits: 0,
            delivered_packets: 0,
            delivered_flits: 0,
            window_start: None,
            window_cycles: 0,
            window_delivered_packets: 0,
            window_delivered_flits: 0,
            window_injected_packets: 0,
            window_injected_flits: 0,
            latency_sum: 0,
            latency_count: 0,
            latency_max: 0,
            latency_min: u64::MAX,
            latency_hist: LogHistogram::new(),
        }
    }
}

impl NetworkStats {
    /// Fresh, empty statistics.
    pub fn new() -> Self {
        NetworkStats::default()
    }

    /// Opens the measurement window at `cycle` (call after warmup).
    pub fn begin_measurement(&mut self, cycle: u64) {
        self.window_start = Some(cycle);
        self.window_cycles = 0;
        self.window_delivered_packets = 0;
        self.window_delivered_flits = 0;
        self.window_injected_packets = 0;
        self.window_injected_flits = 0;
        self.latency_sum = 0;
        self.latency_count = 0;
        self.latency_max = 0;
        self.latency_min = u64::MAX;
        self.latency_hist = LogHistogram::new();
    }

    /// The cycle the measurement window opened at, if it has.
    pub fn window_start(&self) -> Option<u64> {
        self.window_start
    }

    /// Called once per simulated cycle.
    pub fn on_cycle(&mut self) {
        if self.window_start.is_some() {
            self.window_cycles += 1;
        }
    }

    /// Batched form of [`NetworkStats::on_cycle`] for idle fast-forward:
    /// integer addition, so skipping `n` cycles at once is bit-identical
    /// to `n` single calls.
    pub fn on_cycles(&mut self, n: u64) {
        if self.window_start.is_some() {
            self.window_cycles += n;
        }
    }

    /// Records a packet injection of `flits` flits.
    pub fn on_inject(&mut self, flits: u32) {
        self.injected_packets += 1;
        self.injected_flits += u64::from(flits);
        if self.window_start.is_some() {
            self.window_injected_packets += 1;
            self.window_injected_flits += u64::from(flits);
        }
    }

    /// Records a delivered packet.
    pub fn on_deliver(&mut self, packet: &ArrivedPacket) {
        self.delivered_packets += 1;
        self.delivered_flits += u64::from(packet.flits);
        if let Some(start) = self.window_start {
            self.window_delivered_packets += 1;
            self.window_delivered_flits += u64::from(packet.flits);
            if packet.created_at >= start {
                let lat = packet.latency();
                self.latency_sum += lat;
                self.latency_count += 1;
                self.latency_max = self.latency_max.max(lat);
                self.latency_min = self.latency_min.min(lat);
                self.latency_hist.record(lat);
            }
        }
    }

    /// Packets injected since simulation start.
    pub fn packets_injected(&self) -> u64 {
        self.injected_packets
    }

    /// Packets delivered since simulation start.
    pub fn packets_delivered(&self) -> u64 {
        self.delivered_packets
    }

    /// Flits delivered since simulation start.
    pub fn flits_delivered(&self) -> u64 {
        self.delivered_flits
    }

    /// Packets delivered inside the measurement window.
    pub fn window_packets_delivered(&self) -> u64 {
        self.window_delivered_packets
    }

    /// Flits delivered inside the measurement window.
    pub fn window_flits_delivered(&self) -> u64 {
        self.window_delivered_flits
    }

    /// Packets injected inside the measurement window.
    pub fn window_packets_injected(&self) -> u64 {
        self.window_injected_packets
    }

    /// Cycles elapsed inside the measurement window.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// Mean end-to-end packet latency in cycles over the window
    /// (`None` until a packet created in the window is delivered).
    pub fn average_latency(&self) -> Option<f64> {
        (self.latency_count > 0).then(|| self.latency_sum as f64 / self.latency_count as f64)
    }

    /// Maximum packet latency observed in the window.
    pub fn max_latency(&self) -> Option<u64> {
        (self.latency_count > 0).then_some(self.latency_max)
    }

    /// Minimum packet latency observed in the window.
    pub fn min_latency(&self) -> Option<u64> {
        (self.latency_count > 0).then_some(self.latency_min)
    }

    /// Number of packets contributing to the latency statistics.
    pub fn latency_samples(&self) -> u64 {
        self.latency_count
    }

    /// Full log-linear latency histogram over window packets —
    /// mergeable across shards, rank-exact percentiles below 128
    /// cycles, ≤ 1/64 relative error above.
    pub fn latency_histogram(&self) -> &LogHistogram {
        &self.latency_hist
    }

    /// Latency percentile from the full log-linear histogram, e.g.
    /// `latency_percentile(0.99)` for the p99: rank-exact (values,
    /// not power-of-two bounds — the pre-telemetry approximation this
    /// replaced), clamped to the observed maximum.  `None` until at
    /// least one packet was measured.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < q <= 1.0`.
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        self.latency_hist.percentile(q)
    }

    /// Delivered flits per cycle per endpoint over the window — the
    /// throughput metric behind the paper's "bandwidth per core".
    pub fn accepted_flits_per_cycle_per_node(&self, nodes: usize) -> f64 {
        if self.window_cycles == 0 || nodes == 0 {
            return 0.0;
        }
        self.window_delivered_flits as f64 / self.window_cycles as f64 / nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::PacketId;
    use wimnet_topology::NodeId;

    fn arrived(created: u64, arrived: u64, flits: u32) -> ArrivedPacket {
        ArrivedPacket {
            id: PacketId(0),
            src: NodeId(0),
            dest: NodeId(1),
            flits,
            created_at: created,
            arrived_at: arrived,
        }
    }

    #[test]
    fn lifetime_counters_accumulate() {
        let mut s = NetworkStats::new();
        s.on_inject(64);
        s.on_inject(64);
        s.on_deliver(&arrived(0, 100, 64));
        assert_eq!(s.packets_injected(), 2);
        assert_eq!(s.packets_delivered(), 1);
        assert_eq!(s.flits_delivered(), 64);
    }

    #[test]
    fn warmup_packets_do_not_pollute_latency() {
        let mut s = NetworkStats::new();
        s.begin_measurement(1000);
        // Created during warmup: counted for throughput, not latency.
        s.on_deliver(&arrived(500, 1200, 64));
        assert_eq!(s.window_packets_delivered(), 1);
        assert_eq!(s.average_latency(), None);
        // Created in the window: counted for both.
        s.on_deliver(&arrived(1100, 1400, 64));
        assert_eq!(s.average_latency(), Some(300.0));
        assert_eq!(s.latency_samples(), 1);
    }

    #[test]
    fn latency_extremes_and_histogram() {
        let mut s = NetworkStats::new();
        s.begin_measurement(0);
        s.on_deliver(&arrived(0, 10, 1));
        s.on_deliver(&arrived(0, 1000, 1));
        assert_eq!(s.min_latency(), Some(10));
        assert_eq!(s.max_latency(), Some(1000));
        assert_eq!(s.average_latency(), Some(505.0));
        let hist = s.latency_histogram();
        assert_eq!(hist.count(), 2);
        assert_eq!(hist.min(), Some(10));
        assert_eq!(hist.max(), Some(1000));
        // 10 sits in an exact (width-1) bucket; 1000 in a width-16 one.
        let buckets: Vec<(u64, u64)> = hist.nonzero_buckets().collect();
        assert_eq!(buckets[0], (10, 1));
        assert!(buckets[1].0 >= 1000 && buckets[1].0 - 1000 <= 1000 / 64);
    }

    #[test]
    fn throughput_per_node() {
        let mut s = NetworkStats::new();
        s.begin_measurement(0);
        for _ in 0..100 {
            s.on_cycle();
        }
        s.on_deliver(&arrived(0, 50, 64));
        s.on_deliver(&arrived(0, 80, 64));
        // 128 flits / 100 cycles / 4 nodes.
        assert!((s.accepted_flits_per_cycle_per_node(4) - 0.32).abs() < 1e-12);
        assert_eq!(s.accepted_flits_per_cycle_per_node(0), 0.0);
    }

    #[test]
    fn percentiles_from_histogram() {
        let mut s = NetworkStats::new();
        s.begin_measurement(0);
        assert_eq!(s.latency_percentile(0.5), None);
        // 9 fast packets and one slow one.
        for _ in 0..9 {
            s.on_deliver(&arrived(0, 10, 1));
        }
        s.on_deliver(&arrived(0, 900, 1));
        // p50 is rank-exact (the old log₂ histogram could only say
        // "at most 15" here).
        assert_eq!(s.latency_percentile(0.5), Some(10));
        // p100 is clamped to the observed maximum.
        assert_eq!(s.latency_percentile(1.0), Some(900));
        assert!(s.latency_percentile(0.95).unwrap() >= 10);
    }

    #[test]
    #[should_panic]
    fn zero_quantile_panics() {
        NetworkStats::new().latency_percentile(0.0);
    }

    #[test]
    fn begin_measurement_resets_window_only() {
        let mut s = NetworkStats::new();
        s.on_inject(8);
        s.begin_measurement(10);
        assert_eq!(s.packets_injected(), 1, "lifetime counter survives");
        assert_eq!(s.window_packets_injected(), 0);
        s.on_inject(8);
        assert_eq!(s.window_packets_injected(), 1);
    }
}
