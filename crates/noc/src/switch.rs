//! The three-stage pipelined virtual-channel switch.
//!
//! Stage structure follows the paper's ref \[18\] (Pande et al.):
//!
//! 1. **RC** — route compute: the head flit at an idle VC's FIFO front
//!    looks up the output port in the forwarding table (one cycle).
//! 2. **VA** — virtual-channel allocation: a routed packet claims a free
//!    output VC via per-output round-robin arbitration (one cycle).
//! 3. **SA + ST** — switch allocation and traversal: per-output
//!    round-robin among active input VCs with buffered flits, downstream
//!    credit and link bandwidth; winners traverse the crossbar.
//!
//! The switch is input-buffered with credit-based flow control; body and
//! tail flits inherit the head's reservation and stream at one flit per
//! cycle.  The crossbar is output-arbitrated: each output port can issue
//! up to `max_grants` per cycle (1 for ordinary links, 2 for the
//! 1.6-flit/cycle wide memory I/O), a standard input-speedup
//! simplification applied uniformly to all architectures.
//!
//! Storage is slab-based ([`VcFabric`]): all input VCs live in one
//! contiguous struct-of-arrays flit slab, and the credit / output-owner
//! tables are flat `port * vcs + vc` arrays — the RC/VA/SA pre-passes
//! walk dense memory (see `docs/engine.md`, "Switch memory layout").

use serde::{Deserialize, Serialize};
use wimnet_topology::NodeId;

use crate::active::ActiveSet;
use crate::arbiter::RoundRobin;
use crate::flit::{Flit, PacketId};
use crate::vc::{VcFabric, VcStage};

/// Dynamic state of one input virtual channel (checkpoint form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcState {
    /// Buffered flits, front to back.
    pub flits: Vec<Flit>,
    /// Pipeline stage.
    pub stage: VcStage,
    /// Wormhole entry owner.
    pub owner: Option<PacketId>,
}

/// Complete dynamic state of one [`Switch`], for checkpointing
/// (`docs/checkpoint.md`).  Static configuration (port specs, VC
/// counts, buffer depths) is rebuilt from the scenario config; scratch
/// arrays are rebuilt every cycle and carry no state between cycles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchState {
    /// Per input VC in flat (`port * vcs + vc`) order.
    pub vcs: Vec<VcState>,
    /// Remaining downstream credit per output VC (flat order).
    pub credits: Vec<u32>,
    /// Packet owning each output VC (flat order).
    pub out_owner: Vec<Option<PacketId>>,
    /// VA arbiter rotation pointers, one per output port.
    pub va_cursors: Vec<usize>,
    /// SA arbiter rotation pointers, one per output port.
    pub sa_cursors: Vec<usize>,
    /// Busy-set member list in its exact (unsorted) stored order.
    pub busy: Vec<usize>,
    /// High half of the 128-bit busy mask (the serde shim carries
    /// 64-bit integers, so the mask ships as two words).
    pub busy_mask_hi: u64,
    /// Low half of the 128-bit busy mask.
    pub busy_mask_lo: u64,
}

/// One row of a switch's forwarding lookup table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Output port index at this switch.
    pub port: usize,
    /// The next-hop switch (self for local delivery).
    pub next: NodeId,
}

/// A virtual-channel allocation grant issued during the VA stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaGrant {
    /// Winning input port.
    pub in_port: usize,
    /// Winning input VC.
    pub in_vc: usize,
    /// Output port the packet is routed to.
    pub out_port: usize,
    /// Output VC allocated to the packet.
    pub out_vc: usize,
    /// The packet receiving the allocation.
    pub packet: PacketId,
    /// Final destination of the packet (for radio target resolution).
    pub dest: NodeId,
}

/// A switch-traversal movement produced by the SA/ST stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StMove {
    /// Source input port.
    pub in_port: usize,
    /// Source input VC.
    pub in_vc: usize,
    /// Output port traversed.
    pub out_port: usize,
    /// Output VC (= downstream input VC) used.
    pub out_vc: usize,
    /// The flit that moved.
    pub flit: Flit,
    /// `true` when the tail freed the input VC (upstream credit still
    /// returns for every flit).
    pub releases_input: bool,
}

/// Configuration for one output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutPortSpec {
    /// Downstream buffer depth per VC (initial credit).
    pub credit: u32,
    /// `true` for the local ejection port: credits never deplete because
    /// the sink drains continuously.
    pub is_sink: bool,
    /// Crossbar grants per cycle (≥ 1; 2 for wide I/O).
    pub max_grants: u32,
}

/// An input-buffered virtual-channel switch.
#[derive(Debug, Clone)]
pub struct Switch {
    node: NodeId,
    vcs: usize,
    /// All input VCs, flattened into one contiguous flit slab.
    inputs: VcFabric,
    /// Remaining downstream credit per output VC (`port * vcs + vc`).
    credits: Vec<u32>,
    /// Packet owning each output VC (`port * vcs + vc`).
    out_owner: Vec<Option<PacketId>>,
    out_spec: Vec<OutPortSpec>,
    va_arb: Vec<RoundRobin>,
    sa_arb: Vec<RoundRobin>,
    /// Total flits across all input VCs, maintained incrementally so the
    /// engine's active-set check is O(1).
    buffered: usize,
    /// Busy input VCs by flat index (`port * vcs + vc`): a VC is busy
    /// while it holds flits or its pipeline stage is non-idle.  The RC,
    /// VA and SA pre-passes iterate this set instead of scanning all
    /// `ports × vcs` channels — on a wormhole path a switch typically
    /// has one or two busy VCs out of ~50.  Entries are inserted on
    /// delivery and dropped by the sweep at the top of `alloc_phase`;
    /// iteration order is immaterial (pre-passes are commutative, and
    /// grant priority is imposed by the round-robin arbiters).
    busy: ActiveSet,
    /// Bitmask mirror of `busy` for the batch engine's fused phases
    /// (bit `flat` set ⇔ the VC *may* hold work): set on delivery, and
    /// swept/cleared only by `alloc_phase_fast`/`st_phase_fast`.  Under
    /// the legacy phases the mask is a conservative superset (never
    /// missing a busy VC — deliveries always set it), which is exactly
    /// the invariant the fast sweep needs, so the two stepping paths can
    /// be mixed freely.  Only maintained while `ports × vcs <= 128`
    /// ([`Switch::supports_mask`]).
    busy_mask: u128,
    // Preallocated per-cycle scratch (allocation-free hot path).
    /// VA pre-pass: pending requests per output port.
    scratch_requests: Vec<u32>,
    /// Per-output "anyone wants this port" flags for the SA pre-pass.
    scratch_port_flags: Vec<bool>,
    /// Per-input-VC "already granted/used this cycle" flags.
    scratch_input_flags: Vec<bool>,
    /// Fast-phase scratch: per-output candidate masks (VA requests /
    /// SA actives), rebuilt by each fused pre-pass.
    scratch_port_masks: Vec<u128>,
}

impl Switch {
    /// Builds a switch with `ports.len()` ports of `vcs` virtual channels
    /// with `buf_depth`-flit input buffers.
    ///
    /// # Panics
    ///
    /// Panics if `vcs`, `buf_depth` or the port list is empty.
    pub fn new(node: NodeId, vcs: usize, buf_depth: usize, ports: &[OutPortSpec]) -> Self {
        assert!(vcs > 0 && buf_depth > 0 && !ports.is_empty());
        let p = ports.len();
        let mut credits = Vec::with_capacity(p * vcs);
        for spec in ports {
            credits.extend(std::iter::repeat_n(spec.credit, vcs));
        }
        Switch {
            node,
            vcs,
            inputs: VcFabric::new(p, vcs, buf_depth),
            credits,
            out_owner: vec![None; p * vcs],
            out_spec: ports.to_vec(),
            va_arb: (0..p).map(|_| RoundRobin::new(p * vcs)).collect(),
            sa_arb: (0..p).map(|_| RoundRobin::new(p * vcs)).collect(),
            buffered: 0,
            busy: ActiveSet::new(p * vcs),
            busy_mask: 0,
            scratch_requests: vec![0; p],
            scratch_port_flags: vec![false; p],
            scratch_input_flags: vec![false; p * vcs],
            scratch_port_masks: vec![0; p],
        }
    }

    /// `true` when this switch's input VCs fit the 128-bit busy mask the
    /// fused fast phases need (`ports × vcs <= 128`; always true for the
    /// paper's configurations — at 8 VCs that allows 16 ports).
    pub fn supports_mask(&self) -> bool {
        self.out_spec.len() * self.vcs <= 128
    }

    /// The switch's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.out_spec.len()
    }

    /// Virtual channels per port.
    pub fn vc_count(&self) -> usize {
        self.vcs
    }

    /// The slab fabric holding every input VC (read-only inspection).
    pub fn fabric(&self) -> &VcFabric {
        &self.inputs
    }

    /// Buffered flits in one input VC.
    pub fn vc_len(&self, port: usize, vc: usize) -> usize {
        self.inputs.len(self.inputs.flat(port, vc))
    }

    /// Input VC buffer capacity (uniform across the switch).
    pub fn vc_capacity(&self) -> usize {
        self.inputs.capacity()
    }

    /// Packet owning one input VC's wormhole reservation, if any.
    pub fn vc_owner(&self, port: usize, vc: usize) -> Option<PacketId> {
        self.inputs.owner(self.inputs.flat(port, vc))
    }

    /// `true` if a flit of `packet` may enter the given input VC (see
    /// [`VcFabric::may_accept`]); space must be checked separately via
    /// [`Switch::input_space`].
    pub fn may_accept(&self, port: usize, vc: usize, packet: PacketId, is_head: bool) -> bool {
        self.inputs.may_accept(self.inputs.flat(port, vc), packet, is_head)
    }

    /// Delivers a flit into an input VC (link arrival, injection or radio
    /// reception).  Space and wormhole ownership are asserted by the
    /// fabric.
    pub fn deliver(&mut self, port: usize, vc: usize, flit: Flit) {
        let flat = self.inputs.flat(port, vc);
        self.inputs.push(flat, flit);
        self.buffered += 1;
        self.busy.insert(flat);
        if flat < 128 {
            self.busy_mask |= 1u128 << flat;
        }
    }

    /// Returns a credit to an output port VC (downstream freed a slot).
    pub fn return_credit(&mut self, port: usize, vc: usize) {
        if !self.out_spec[port].is_sink {
            self.credits[port * self.vcs + vc] += 1;
        }
    }

    /// Remaining credit of an output VC.
    pub fn credit(&self, port: usize, vc: usize) -> u32 {
        self.credits[port * self.vcs + vc]
    }

    /// Total buffered flits across all input VCs (O(1): maintained on
    /// every deliver/pop).
    pub fn buffered_flits(&self) -> usize {
        debug_assert_eq!(
            self.buffered,
            (0..self.inputs.vc_total())
                .map(|flat| self.inputs.len(flat))
                .sum::<usize>(),
            "buffered-flit counter out of sync"
        );
        self.buffered
    }

    /// `true` when the switch has nothing to do this cycle: no buffered
    /// flits means RC finds no fronts, VA sees no requests and SA moves
    /// nothing, so `alloc_phase`/`st_phase` are provable no-ops (arbiters
    /// included — failed arbitrations never advance their pointers).
    pub fn is_quiescent(&self) -> bool {
        self.buffered == 0
    }

    /// Free space of an input VC — used by injection and radio admission.
    pub fn input_space(&self, port: usize, vc: usize) -> usize {
        self.inputs.free_space(self.inputs.flat(port, vc))
    }

    /// Exhaustively checks the slab bookkeeping invariants; test support
    /// (O(ports × vcs), not for the per-cycle path).
    ///
    /// # Panics
    ///
    /// Panics when `buffered` disagrees with slab occupancy, or when a
    /// VC holding flits or a live pipeline stage is missing from the
    /// busy set (the busy set may hold *extra* members — they are swept
    /// lazily at the top of `alloc_phase`).
    pub fn assert_invariants(&self) {
        let occupancy: usize = (0..self.inputs.vc_total())
            .map(|flat| self.inputs.len(flat))
            .sum();
        assert_eq!(
            self.buffered, occupancy,
            "buffered counter {} != slab occupancy {occupancy}",
            self.buffered
        );
        for flat in 0..self.inputs.vc_total() {
            let needs_busy =
                !self.inputs.is_empty(flat) || self.inputs.stage(flat) != VcStage::Idle;
            if needs_busy {
                assert!(
                    self.busy.contains(flat),
                    "VC {flat} holds work but is not in the busy set"
                );
                if flat < 128 {
                    assert!(
                        self.busy_mask >> flat & 1 == 1,
                        "VC {flat} holds work but is missing from the busy mask"
                    );
                }
            }
            // Owner sanity: entry ownership constrains the *newest*
            // (most recently pushed) flit — the owner's run is still
            // open at the back of the ring.  The front may belong to an
            // earlier, already-tailed packet queued ahead of it.
            if let (Some(owner), false) = (self.inputs.owner(flat), self.inputs.is_empty(flat))
            {
                let last = self
                    .inputs
                    .get(flat, self.inputs.len(flat) - 1)
                    .expect("non-empty VC has a last flit");
                assert_eq!(
                    last.packet, owner,
                    "VC {flat}: entry owner {owner} does not match the newest flit"
                );
            }
        }
        self.busy.assert_consistent();
    }

    /// Captures the switch's complete dynamic state.
    pub fn state(&self) -> SwitchState {
        let vcs = (0..self.inputs.vc_total())
            .map(|flat| {
                let (flits, stage, owner) = self.inputs.vc_state(flat);
                VcState { flits, stage, owner }
            })
            .collect();
        SwitchState {
            vcs,
            credits: self.credits.clone(),
            out_owner: self.out_owner.clone(),
            va_cursors: self.va_arb.iter().map(RoundRobin::cursor).collect(),
            sa_cursors: self.sa_arb.iter().map(RoundRobin::cursor).collect(),
            busy: self.busy.members().to_vec(),
            busy_mask_hi: (self.busy_mask >> 64) as u64,
            busy_mask_lo: self.busy_mask as u64,
        }
    }

    /// Restores the switch from a [`Switch::state`] snapshot taken on a
    /// switch of identical configuration.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot's dimensions disagree with this
    /// switch's configuration.
    pub fn restore_state(&mut self, s: &SwitchState) {
        let n = self.inputs.vc_total();
        assert_eq!(s.vcs.len(), n, "switch VC count changed");
        assert_eq!(s.credits.len(), self.credits.len(), "output VC count changed");
        assert_eq!(s.out_owner.len(), self.out_owner.len(), "output VC count changed");
        assert_eq!(s.va_cursors.len(), self.va_arb.len(), "port count changed");
        assert_eq!(s.sa_cursors.len(), self.sa_arb.len(), "port count changed");
        self.buffered = 0;
        for (flat, vc) in s.vcs.iter().enumerate() {
            self.inputs.restore_vc(flat, &vc.flits, vc.stage, vc.owner);
            self.buffered += vc.flits.len();
        }
        self.credits.copy_from_slice(&s.credits);
        self.out_owner.copy_from_slice(&s.out_owner);
        for (arb, &c) in self.va_arb.iter_mut().zip(&s.va_cursors) {
            arb.set_cursor(c);
        }
        for (arb, &c) in self.sa_arb.iter_mut().zip(&s.sa_cursors) {
            arb.set_cursor(c);
        }
        self.busy = ActiveSet::restore(n, &s.busy);
        self.busy_mask = (u128::from(s.busy_mask_hi) << 64) | u128::from(s.busy_mask_lo);
    }

    /// RC + VA pipeline stages for this cycle.
    ///
    /// `lut` is this switch's forwarding row, indexed by destination node
    /// index.  VA grants are appended to `grants` (cleared first) so the
    /// network can resolve radio targets; the out-param keeps the
    /// per-cycle hot path allocation-free.
    // Index loops here walk several parallel per-port arrays; iterator
    // chains would obscure the hardware structure.
    #[allow(clippy::needless_range_loop)]
    pub fn alloc_phase(&mut self, now: u64, lut: &[RouteEntry], grants: &mut Vec<VaGrant>) {
        grants.clear();
        let ports = self.out_spec.len();
        // Drop VCs that went empty-and-idle since the last cycle, then
        // work only on the remaining busy ones.
        {
            let inputs = &self.inputs;
            self.busy.sweep(|flat| {
                !inputs.is_empty(flat) || inputs.stage(flat) != VcStage::Idle
            });
        }
        self.busy.sort();
        // --- RC: idle VCs with a head flit at the front compute a route.
        for i in 0..self.busy.members().len() {
            let flat = self.busy.members()[i];
            if self.inputs.stage(flat) == VcStage::Idle && !self.inputs.is_empty(flat) {
                assert!(
                    self.inputs.front_kind(flat).is_head(),
                    "non-head flit at the front of an idle VC"
                );
                let entry = lut[self.inputs.front_dest(flat).index()];
                self.inputs.set_stage(
                    flat,
                    VcStage::Routed { out_port: entry.port, ready_at: now + 1 },
                );
            }
        }
        // --- VA: separable allocation, output side iterates free VCs.
        // Pre-pass: count ready requests per output port so ports nobody
        // wants cost nothing (the engine spends most cycles mostly idle).
        let requests = &mut self.scratch_requests;
        requests.fill(0);
        let mut any_request = false;
        for &flat in self.busy.members() {
            if let VcStage::Routed { out_port, ready_at } = self.inputs.stage(flat) {
                if ready_at <= now {
                    requests[out_port] += 1;
                    any_request = true;
                }
            }
        }
        if !any_request {
            return;
        }
        let input_granted = &mut self.scratch_input_flags;
        input_granted.fill(false);
        for out_port in 0..ports {
            if requests[out_port] == 0 {
                continue;
            }
            for out_vc in 0..self.vcs {
                if requests[out_port] == 0 {
                    break;
                }
                if self.out_owner[out_port * self.vcs + out_vc].is_some() {
                    continue;
                }
                let inputs = &self.inputs;
                // Only busy VCs can be Routed, so arbitrating among the
                // (sorted) busy list is decision-identical to a full
                // scan — see `RoundRobin::grant_among`.
                let won = self.va_arb[out_port].grant_among(self.busy.members(), |flat| {
                    if input_granted[flat] {
                        return false;
                    }
                    match inputs.stage(flat) {
                        VcStage::Routed { out_port: op, ready_at } => {
                            op == out_port && ready_at <= now
                        }
                        _ => false,
                    }
                });
                if let Some(flat) = won {
                    let (p, v) = (flat / self.vcs, flat % self.vcs);
                    debug_assert!(!self.inputs.is_empty(flat), "routed VC has a front flit");
                    let packet = self.inputs.front_packet(flat);
                    let dest = self.inputs.front_dest(flat);
                    self.inputs.set_stage(
                        flat,
                        VcStage::Active { out_port, out_vc, ready_at: now + 1 },
                    );
                    self.out_owner[out_port * self.vcs + out_vc] = Some(packet);
                    input_granted[flat] = true;
                    requests[out_port] -= 1;
                    grants.push(VaGrant {
                        in_port: p,
                        in_vc: v,
                        out_port,
                        out_vc,
                        packet,
                        dest,
                    });
                }
            }
        }
    }

    /// SA + ST pipeline stage: arbitrates the crossbar and pops winners.
    ///
    /// `avail[p]` caps the flits output port `p` may emit this cycle
    /// (link bandwidth credit); the per-port `max_grants` and per-input
    /// one-flit-per-cycle limits also apply.  Ports flagged in
    /// `shared_band` additionally draw from `band_budget`, the global
    /// wireless-channel allowance for this cycle.  Winning movements are
    /// appended to `moves` (cleared first).
    pub fn st_phase(
        &mut self,
        now: u64,
        avail: &[u32],
        shared_band: &[bool],
        band_budget: &mut u32,
        moves: &mut Vec<StMove>,
    ) {
        moves.clear();
        let ports = self.out_spec.len();
        let vcs = self.vcs;
        debug_assert_eq!(avail.len(), ports);
        debug_assert_eq!(shared_band.len(), ports);
        // Keep the busy list sorted even when st_phase runs without a
        // preceding alloc_phase (unit tests drive the stages directly);
        // grant_among requires ascending candidate order.
        self.busy.sort();
        // Pre-pass mirror of alloc_phase: only busy VCs can request, and
        // ports nobody wants are skipped entirely.
        let active = &mut self.scratch_port_flags;
        active.fill(false);
        let mut any_active = false;
        for &flat in self.busy.members() {
            if let VcStage::Active { out_port, ready_at, .. } = self.inputs.stage(flat) {
                if ready_at <= now && !self.inputs.is_empty(flat) {
                    active[out_port] = true;
                    any_active = true;
                }
            }
        }
        if !any_active {
            return;
        }
        let input_used = &mut self.scratch_input_flags;
        input_used.fill(false);
        for out_port in 0..ports {
            if !active[out_port] {
                continue;
            }
            let mut budget = self.out_spec[out_port]
                .max_grants
                .min(avail[out_port]);
            if shared_band[out_port] {
                budget = budget.min(*band_budget);
            }
            for _ in 0..budget {
                let inputs = &self.inputs;
                let credits = &self.credits;
                let out_spec = &self.out_spec;
                // Only busy VCs can be Active with flits; candidate-list
                // arbitration is decision-identical to the full scan.
                let won = self.sa_arb[out_port].grant_among(self.busy.members(), |flat| {
                    if input_used[flat] {
                        return false;
                    }
                    match inputs.stage(flat) {
                        VcStage::Active { out_port: op, out_vc, ready_at } => {
                            op == out_port
                                && ready_at <= now
                                && !inputs.is_empty(flat)
                                && (out_spec[out_port].is_sink
                                    || credits[out_port * vcs + out_vc] > 0)
                        }
                        _ => false,
                    }
                });
                let Some(flat) = won else { break };
                let (p, v) = (flat / self.vcs, flat % self.vcs);
                let VcStage::Active { out_port: op, out_vc, .. } = self.inputs.stage(flat)
                else {
                    unreachable!("winner was Active");
                };
                debug_assert_eq!(op, out_port);
                let flit = self.inputs.pop(flat).expect("winner has a flit");
                self.buffered -= 1;
                if !self.out_spec[out_port].is_sink {
                    self.credits[out_port * self.vcs + out_vc] -= 1;
                }
                if shared_band[out_port] {
                    *band_budget -= 1;
                }
                input_used[flat] = true;
                let releases_input = flit.kind.is_tail();
                if releases_input {
                    self.inputs.set_stage(flat, VcStage::Idle);
                    self.out_owner[out_port * self.vcs + out_vc] = None;
                }
                moves.push(StMove {
                    in_port: p,
                    in_vc: v,
                    out_port,
                    out_vc,
                    flit,
                    releases_input,
                });
            }
        }
    }

    /// Fused, mask-driven [`Switch::alloc_phase`]: one pass over the
    /// busy-mask bits performs the sweep, RC, and the VA pre-pass
    /// simultaneously, and VA arbitration runs bit-parallel via
    /// [`RoundRobin::grant_masked`].  Decision-identical to the legacy
    /// phase — same stages, same grants, same grant order, same arbiter
    /// pointer evolution — the replica-batch differential suite pins
    /// this (`tests/fast_step.rs`; see `docs/engine.md`, "Replica
    /// batching").
    ///
    /// Requires [`Switch::supports_mask`].  The legacy `busy` active set
    /// is left un-swept (it remains a superset, which `alloc_phase`
    /// tolerates).
    pub fn alloc_phase_fast(&mut self, now: u64, lut: &[RouteEntry], grants: &mut Vec<VaGrant>) {
        grants.clear();
        debug_assert!(self.supports_mask());
        let vcs = self.vcs;
        let ports = self.out_spec.len();
        // Fused sweep + RC + VA pre-pass: walk the busy bits once.
        let mut live: u128 = 0;
        let mut any_request = false;
        self.scratch_port_masks.fill(0);
        let mut m = self.busy_mask;
        while m != 0 {
            let flat = m.trailing_zeros() as usize;
            m &= m - 1;
            let stage = self.inputs.stage(flat);
            if self.inputs.is_empty(flat) {
                if stage == VcStage::Idle {
                    continue; // swept: neither flits nor a live stage
                }
            } else if stage == VcStage::Idle {
                // RC: idle VC with a head flit at the front.
                assert!(
                    self.inputs.front_kind(flat).is_head(),
                    "non-head flit at the front of an idle VC"
                );
                let entry = lut[self.inputs.front_dest(flat).index()];
                self.inputs.set_stage(
                    flat,
                    VcStage::Routed { out_port: entry.port, ready_at: now + 1 },
                );
            }
            live |= 1u128 << flat;
            if let VcStage::Routed { out_port, ready_at } = stage {
                if ready_at <= now {
                    self.scratch_port_masks[out_port] |= 1u128 << flat;
                    any_request = true;
                }
            }
        }
        self.busy_mask = live;
        if !any_request {
            return;
        }
        // VA: the request mask fully encodes the legacy predicate
        // (Routed at this port, ready, not yet granted — grants clear
        // their bit), so arbitration needs no residual check.
        for out_port in 0..ports {
            let mut pending = self.scratch_port_masks[out_port];
            if pending == 0 {
                continue;
            }
            for out_vc in 0..vcs {
                if pending == 0 {
                    break;
                }
                if self.out_owner[out_port * vcs + out_vc].is_some() {
                    continue;
                }
                if let Some(flat) = self.va_arb[out_port].grant_masked(pending, |_| true) {
                    pending &= !(1u128 << flat);
                    let (p, v) = (flat / vcs, flat % vcs);
                    debug_assert!(!self.inputs.is_empty(flat), "routed VC has a front flit");
                    let packet = self.inputs.front_packet(flat);
                    let dest = self.inputs.front_dest(flat);
                    self.inputs.set_stage(
                        flat,
                        VcStage::Active { out_port, out_vc, ready_at: now + 1 },
                    );
                    self.out_owner[out_port * vcs + out_vc] = Some(packet);
                    grants.push(VaGrant {
                        in_port: p,
                        in_vc: v,
                        out_port,
                        out_vc,
                        packet,
                        dest,
                    });
                }
            }
        }
    }

    /// Fused, mask-driven [`Switch::st_phase`]: one pass over the busy
    /// bits builds per-output candidate masks, SA arbitration runs via
    /// [`RoundRobin::grant_masked`] (the downstream-credit check is the
    /// only residual predicate), and link bandwidth is queried lazily —
    /// `avail(port)` is called only for ports that actually have an
    /// active candidate, so idle links cost nothing here.
    /// Decision-identical to the legacy phase (same winners, same move
    /// order, same band-budget draws).  Requires
    /// [`Switch::supports_mask`].
    pub fn st_phase_fast(
        &mut self,
        now: u64,
        mut avail: impl FnMut(usize) -> u32,
        shared_band: &[bool],
        band_budget: &mut u32,
        moves: &mut Vec<StMove>,
    ) {
        moves.clear();
        debug_assert!(self.supports_mask());
        let vcs = self.vcs;
        let ports = self.out_spec.len();
        debug_assert_eq!(shared_band.len(), ports);
        // Fused pre-pass: per-output candidate masks in one bit walk.
        self.scratch_port_masks.fill(0);
        let mut any_active = false;
        let mut m = self.busy_mask;
        while m != 0 {
            let flat = m.trailing_zeros() as usize;
            m &= m - 1;
            if let VcStage::Active { out_port, ready_at, .. } = self.inputs.stage(flat) {
                if ready_at <= now && !self.inputs.is_empty(flat) {
                    self.scratch_port_masks[out_port] |= 1u128 << flat;
                    any_active = true;
                }
            }
        }
        if !any_active {
            return;
        }
        for out_port in 0..ports {
            let mut cands = self.scratch_port_masks[out_port];
            if cands == 0 {
                continue;
            }
            let mut budget = self.out_spec[out_port].max_grants.min(avail(out_port));
            if shared_band[out_port] {
                budget = budget.min(*band_budget);
            }
            for _ in 0..budget {
                let inputs = &self.inputs;
                let credits = &self.credits;
                let out_spec = &self.out_spec;
                // The candidate mask encodes "Active at this port, ready,
                // non-empty, not yet used" (winners clear their bit; a VC
                // is Active toward exactly one port, so a pop here cannot
                // empty a candidate of another port).  Only the
                // per-output-VC credit check remains data-dependent.
                let won = self.sa_arb[out_port].grant_masked(cands, |flat| {
                    match inputs.stage(flat) {
                        VcStage::Active { out_vc, .. } => {
                            out_spec[out_port].is_sink
                                || credits[out_port * vcs + out_vc] > 0
                        }
                        _ => unreachable!("candidate mask holds only active VCs"),
                    }
                });
                let Some(flat) = won else { break };
                cands &= !(1u128 << flat);
                let (p, v) = (flat / vcs, flat % vcs);
                let VcStage::Active { out_port: op, out_vc, .. } = self.inputs.stage(flat)
                else {
                    unreachable!("winner was Active");
                };
                debug_assert_eq!(op, out_port);
                let flit = self.inputs.pop(flat).expect("winner has a flit");
                self.buffered -= 1;
                if !self.out_spec[out_port].is_sink {
                    self.credits[out_port * vcs + out_vc] -= 1;
                }
                if shared_band[out_port] {
                    *band_budget -= 1;
                }
                let releases_input = flit.kind.is_tail();
                if releases_input {
                    self.inputs.set_stage(flat, VcStage::Idle);
                    self.out_owner[out_port * vcs + out_vc] = None;
                    if self.inputs.is_empty(flat) {
                        self.busy_mask &= !(1u128 << flat);
                    }
                }
                moves.push(StMove {
                    in_port: p,
                    in_vc: v,
                    out_port,
                    out_vc,
                    flit,
                    releases_input,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_flit(packet: u64, seq: u32, len: u32, dest: NodeId) -> Flit {
        Flit {
            packet: PacketId(packet),
            kind: Flit::kind_for(seq, len),
            seq,
            src: NodeId(0),
            dest,
            created_at: 0,
        }
    }

    /// Two-port switch: port 0 sink (local), port 1 wired.
    fn two_port() -> Switch {
        Switch::new(
            NodeId(0),
            2,
            4,
            &[
                OutPortSpec { credit: 4, is_sink: true, max_grants: 1 },
                OutPortSpec { credit: 4, is_sink: false, max_grants: 1 },
            ],
        )
    }

    /// Forwarding row over 10 nodes: all destinations route to port 1 /
    /// next node 9, except node 0 which is local.
    fn lut() -> Vec<RouteEntry> {
        (0..10)
            .map(|d| {
                if d == 0 {
                    RouteEntry { port: 0, next: NodeId(0) }
                } else {
                    RouteEntry { port: 1, next: NodeId(9) }
                }
            })
            .collect()
    }

    /// RC/VA returning the grants (allocating wrapper for tests).
    fn alloc(sw: &mut Switch, now: u64, lut: &[RouteEntry]) -> Vec<VaGrant> {
        let mut grants = Vec::new();
        sw.alloc_phase(now, lut, &mut grants);
        grants
    }

    /// SA/ST with no shared-band ports and an unlimited band budget.
    fn st(sw: &mut Switch, now: u64, avail: &[u32]) -> Vec<StMove> {
        let band = vec![false; avail.len()];
        let mut budget = u32::MAX;
        let mut moves = Vec::new();
        sw.st_phase(now, avail, &band, &mut budget, &mut moves);
        moves
    }

    #[test]
    fn head_flit_pipelines_through_rc_va_st() {
        let mut sw = two_port();
        sw.deliver(0, 0, mk_flit(1, 0, 1, NodeId(9)));
        // Cycle 0: RC happens, VA not ready until cycle 1.
        let g = alloc(&mut sw, 0, &lut());
        assert!(g.is_empty(), "VA must wait one cycle after RC");
        assert!(st(&mut sw, 0, &[9, 9]).is_empty());
        // Cycle 1: VA grants.
        let g = alloc(&mut sw, 1, &lut());
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].out_port, 1);
        assert_eq!(g[0].packet, PacketId(1));
        assert!(st(&mut sw, 1, &[9, 9]).is_empty(), "SA waits one more cycle");
        // Cycle 2: ST moves the flit.
        let m = st(&mut sw, 2, &[9, 9]);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].out_port, 1);
        assert!(m[0].releases_input, "head-tail releases immediately");
        // Credit consumed on the wired port.
        assert_eq!(sw.credit(1, m[0].out_vc), 3);
    }

    #[test]
    fn body_flits_stream_after_allocation() {
        let mut sw = two_port();
        for seq in 0..4 {
            sw.deliver(0, 0, mk_flit(1, seq, 4, NodeId(9)));
        }
        alloc(&mut sw, 0, &lut());
        alloc(&mut sw, 1, &lut());
        let mut sent = 0;
        for now in 2..6 {
            alloc(&mut sw, now, &lut());
            sent += st(&mut sw, now, &[9, 9]).len();
        }
        assert_eq!(sent, 4, "one flit per cycle once active");
        assert_eq!(sw.buffered_flits(), 0);
    }

    #[test]
    fn credits_block_and_resume() {
        // Downstream has only 2 credits; 4 flits are buffered locally.
        let mut sw = Switch::new(
            NodeId(0),
            2,
            4,
            &[
                OutPortSpec { credit: 4, is_sink: true, max_grants: 1 },
                OutPortSpec { credit: 2, is_sink: false, max_grants: 1 },
            ],
        );
        for seq in 0..4 {
            sw.deliver(0, 0, mk_flit(1, seq, 4, NodeId(9)));
        }
        alloc(&mut sw, 0, &lut());
        alloc(&mut sw, 1, &lut());
        let mut moved = 0;
        for now in 2..10 {
            alloc(&mut sw, now, &lut());
            moved += st(&mut sw, now, &[9, 9]).len();
        }
        assert_eq!(moved, 2, "exactly the initial credit count moves");
        // Returning a credit lets the stream resume.
        sw.return_credit(1, 0);
        let m = st(&mut sw, 10, &[9, 9]);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].flit.seq, 2);
    }

    #[test]
    fn sink_port_never_runs_out_of_credit() {
        let mut sw = two_port();
        for seq in 0..4 {
            sw.deliver(1, 0, mk_flit(1, seq, 4, NodeId(0)));
        }
        alloc(&mut sw, 0, &lut());
        alloc(&mut sw, 1, &lut());
        let mut moved = 0;
        for now in 2..8 {
            alloc(&mut sw, now, &lut());
            moved += st(&mut sw, now, &[9, 9]).len();
        }
        assert_eq!(moved, 4);
        assert_eq!(sw.credit(0, 0), 4, "sink credits are never consumed");
    }

    #[test]
    fn two_packets_share_output_port_via_different_vcs() {
        let mut sw = two_port();
        sw.deliver(0, 0, mk_flit(1, 0, 2, NodeId(9)));
        sw.deliver(0, 0, mk_flit(1, 1, 2, NodeId(9)));
        sw.deliver(0, 1, mk_flit(2, 0, 2, NodeId(9)));
        sw.deliver(0, 1, mk_flit(2, 1, 2, NodeId(9)));
        alloc(&mut sw, 0, &lut());
        let g = alloc(&mut sw, 1, &lut());
        assert_eq!(g.len(), 2, "both packets get output VCs");
        assert_ne!(g[0].out_vc, g[1].out_vc);
        // One flit per cycle through the port: 4 flits take 4 cycles.
        let mut total = 0;
        for now in 2..6 {
            alloc(&mut sw, now, &lut());
            let m = st(&mut sw, now, &[9, 9]);
            assert!(m.len() <= 1);
            total += m.len();
        }
        assert_eq!(total, 4);
    }

    #[test]
    fn avail_caps_port_throughput() {
        let mut sw = two_port();
        sw.deliver(0, 0, mk_flit(1, 0, 2, NodeId(9)));
        sw.deliver(0, 0, mk_flit(1, 1, 2, NodeId(9)));
        alloc(&mut sw, 0, &lut());
        alloc(&mut sw, 1, &lut());
        // Link has no bandwidth this cycle.
        assert!(st(&mut sw, 2, &[1, 0]).is_empty());
        assert_eq!(st(&mut sw, 3, &[1, 1]).len(), 1);
    }

    #[test]
    fn output_vc_reuse_after_tail() {
        let mut sw = two_port();
        sw.deliver(0, 0, mk_flit(1, 0, 1, NodeId(9)));
        alloc(&mut sw, 0, &lut());
        let g1 = alloc(&mut sw, 1, &lut());
        assert_eq!(g1.len(), 1);
        st(&mut sw, 2, &[9, 9]);
        // Same input VC, new packet: out VC must be available again.
        sw.deliver(0, 0, mk_flit(2, 0, 1, NodeId(9)));
        alloc(&mut sw, 3, &lut());
        let g2 = alloc(&mut sw, 4, &lut());
        assert_eq!(g2.len(), 1);
        assert_eq!(g2[0].packet, PacketId(2));
    }

    #[test]
    fn wide_port_grants_two_flits_per_cycle() {
        let mut sw = Switch::new(
            NodeId(0),
            2,
            8,
            &[
                OutPortSpec { credit: 8, is_sink: true, max_grants: 1 },
                OutPortSpec { credit: 8, is_sink: false, max_grants: 2 },
            ],
        );
        // Two packets on separate input VCs toward port 1.
        for vc in 0..2 {
            for seq in 0..2 {
                sw.deliver(0, vc, mk_flit(vc as u64 + 1, seq, 2, NodeId(9)));
            }
        }
        alloc(&mut sw, 0, &lut());
        alloc(&mut sw, 1, &lut());
        let m = st(&mut sw, 2, &[9, 9]);
        assert_eq!(m.len(), 2, "wide ports move two flits per cycle");
    }

    #[test]
    fn shared_band_budget_gates_flagged_ports() {
        let mut sw = two_port();
        sw.deliver(0, 0, mk_flit(1, 0, 2, NodeId(9)));
        sw.deliver(0, 0, mk_flit(1, 1, 2, NodeId(9)));
        alloc(&mut sw, 0, &lut());
        alloc(&mut sw, 1, &lut());
        // Port 1 is on the shared band with a zero budget: nothing moves.
        let mut budget = 0u32;
        let mut moves = Vec::new();
        sw.st_phase(2, &[9, 9], &[false, true], &mut budget, &mut moves);
        assert!(moves.is_empty());
        // Budget of one: exactly one flit moves and the budget drains.
        let mut budget = 1u32;
        sw.st_phase(3, &[9, 9], &[false, true], &mut budget, &mut moves);
        assert_eq!(moves.len(), 1);
        assert_eq!(budget, 0);
        // Unflagged ports ignore the budget entirely.
        let mut budget = 0u32;
        sw.st_phase(4, &[9, 9], &[false, false], &mut budget, &mut moves);
        assert_eq!(moves.len(), 1);
        assert_eq!(budget, 0);
    }

    #[test]
    fn sa_round_robin_is_fair_between_competing_vcs() {
        let mut sw = two_port();
        // Two long packets competing for port 1.
        for vc in 0..2 {
            for seq in 0..3 {
                sw.deliver(0, vc, mk_flit(vc as u64 + 1, seq, 3, NodeId(9)));
            }
        }
        alloc(&mut sw, 0, &lut());
        alloc(&mut sw, 1, &lut());
        let mut winners = Vec::new();
        for now in 2..8 {
            alloc(&mut sw, now, &lut());
            for m in st(&mut sw, now, &[9, 9]) {
                winners.push(m.in_vc);
            }
        }
        assert_eq!(winners.len(), 6);
        // Alternating grants: no VC wins twice in a row while both wait.
        for w in winners.windows(2) {
            assert_ne!(w[0], w[1], "round robin must alternate: {winners:?}");
        }
    }

    #[test]
    fn invariants_hold_through_a_pipelined_transfer() {
        let mut sw = two_port();
        for seq in 0..4 {
            sw.deliver(0, 0, mk_flit(1, seq, 4, NodeId(9)));
        }
        sw.assert_invariants();
        for now in 0..8 {
            alloc(&mut sw, now, &lut());
            sw.assert_invariants();
            st(&mut sw, now, &[9, 9]);
            sw.assert_invariants();
        }
        assert_eq!(sw.buffered_flits(), 0);
    }
}
