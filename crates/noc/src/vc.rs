//! Virtual channels: one contiguous slab of flit storage per switch.
//!
//! The fabric holds every input VC of a switch in a single allocation
//! group, in struct-of-arrays form: ring-buffer slots are parallel
//! `packet` / `kind` / `seq` / `src` / `dest` / `created_at` arrays
//! keyed by slab index, and the per-VC book-keeping (ring head, length,
//! pipeline stage, wormhole owner) lives in flat `port * vcs + vc`
//! indexed arrays.  The RC/VA/SA pre-passes and the busy-VC sweep walk
//! dense memory instead of chasing `Vec<Vec<VecDeque>>` pointers; the
//! fields a pass actually reads (stage, front kind/dest) come from
//! their own cache lines instead of dragging whole `Flit` structs in.
//!
//! Slot addressing: VC `flat` owns slots `flat * capacity ..
//! (flat + 1) * capacity`; its `i`-th buffered flit (0 = front) lives at
//! `flat * capacity + (head[flat] + i) % capacity`.  FIFO semantics are
//! identical to the former per-VC `VecDeque<Flit>` — the proptest model
//! in `tests/slab_model.rs` checks push/pop/owner/stage sequences
//! against exactly that reference.

use serde::{Deserialize, Serialize};
use wimnet_topology::NodeId;

use crate::flit::{Flit, FlitKind, PacketId};

/// Wormhole pipeline state of one input virtual channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcStage {
    /// No packet allocated; waiting for a head flit.
    Idle,
    /// Route computed (output port known); waiting for VC allocation.
    /// The wrapped cycle is when the RC result becomes usable.
    Routed {
        /// Output port selected by the forwarding table.
        out_port: usize,
        /// First cycle at which VC allocation may happen (RC takes one
        /// pipeline stage).
        ready_at: u64,
    },
    /// Output VC allocated; flits may traverse.
    Active {
        /// Output port selected by the forwarding table.
        out_port: usize,
        /// Downstream virtual channel allocated to this packet.
        out_vc: usize,
        /// First cycle at which switch allocation may happen (VA takes
        /// one pipeline stage).
        ready_at: u64,
    },
}

/// All input VCs of one switch, flattened into contiguous SoA storage.
///
/// Indexing is by *flat VC id* (`port * vcs + vc`, see
/// [`VcFabric::flat`]); every accessor is O(1) slab arithmetic.
#[derive(Debug, Clone)]
pub struct VcFabric {
    vcs: usize,
    capacity: usize,
    /// Ring head position per flat VC.
    head: Vec<u32>,
    /// Buffered flits per flat VC.
    len: Vec<u32>,
    /// Pipeline stage per flat VC.
    stage: Vec<VcStage>,
    /// The packet currently owning each VC's wormhole reservation (set
    /// by its head flit entering the FIFO, cleared when its tail is
    /// pushed).
    owner: Vec<Option<PacketId>>,
    // --- Flit slab, struct-of-arrays (slot = flat * capacity + ring).
    slot_packet: Vec<PacketId>,
    slot_kind: Vec<FlitKind>,
    slot_seq: Vec<u32>,
    slot_src: Vec<NodeId>,
    slot_dest: Vec<NodeId>,
    slot_created: Vec<u64>,
}

impl VcFabric {
    /// A fabric of `ports × vcs` virtual channels with room for
    /// `capacity` flits each.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(ports: usize, vcs: usize, capacity: usize) -> Self {
        assert!(ports > 0 && vcs > 0 && capacity > 0, "VC buffers need capacity");
        let n = ports * vcs;
        let slots = n * capacity;
        VcFabric {
            vcs,
            capacity,
            head: vec![0; n],
            len: vec![0; n],
            stage: vec![VcStage::Idle; n],
            owner: vec![None; n],
            slot_packet: vec![PacketId(0); slots],
            slot_kind: vec![FlitKind::Body; slots],
            slot_seq: vec![0; slots],
            slot_src: vec![NodeId(0); slots],
            slot_dest: vec![NodeId(0); slots],
            slot_created: vec![0; slots],
        }
    }

    /// Flat index of `(port, vc)` — the key every other accessor takes.
    #[inline]
    pub fn flat(&self, port: usize, vc: usize) -> usize {
        debug_assert!(vc < self.vcs);
        port * self.vcs + vc
    }

    /// Number of virtual channels (across all ports).
    pub fn vc_total(&self) -> usize {
        self.len.len()
    }

    /// Buffer capacity in flits (uniform across the fabric).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buffered flits in VC `flat`.
    #[inline]
    pub fn len(&self, flat: usize) -> usize {
        self.len[flat] as usize
    }

    /// `true` when VC `flat` buffers no flits.
    #[inline]
    pub fn is_empty(&self, flat: usize) -> bool {
        self.len[flat] == 0
    }

    /// Remaining buffer slots of VC `flat`.
    #[inline]
    pub fn free_space(&self, flat: usize) -> usize {
        self.capacity - self.len[flat] as usize
    }

    /// Current pipeline stage of VC `flat`.
    #[inline]
    pub fn stage(&self, flat: usize) -> VcStage {
        self.stage[flat]
    }

    /// Sets the pipeline stage (used by the switch allocators).
    #[inline]
    pub fn set_stage(&mut self, flat: usize, stage: VcStage) {
        self.stage[flat] = stage;
    }

    /// The packet that owns VC `flat`'s wormhole reservation, if any.
    #[inline]
    pub fn owner(&self, flat: usize) -> Option<PacketId> {
        self.owner[flat]
    }

    /// Slab slot of the `i`-th buffered flit of VC `flat`.
    #[inline]
    fn slot(&self, flat: usize, i: usize) -> usize {
        flat * self.capacity + (self.head[flat] as usize + i) % self.capacity
    }

    /// Kind of the front flit.  Cheaper than [`VcFabric::front`] on the
    /// RC pass, which only needs the head/body distinction.
    ///
    /// # Panics
    ///
    /// Panics if the VC is empty.
    #[inline]
    pub fn front_kind(&self, flat: usize) -> FlitKind {
        assert!(self.len[flat] > 0, "front of an empty VC");
        self.slot_kind[self.slot(flat, 0)]
    }

    /// Destination of the front flit (the RC lookup key).
    ///
    /// # Panics
    ///
    /// Panics if the VC is empty.
    #[inline]
    pub fn front_dest(&self, flat: usize) -> NodeId {
        assert!(self.len[flat] > 0, "front of an empty VC");
        self.slot_dest[self.slot(flat, 0)]
    }

    /// Packet id of the front flit (the VA grant key).
    ///
    /// # Panics
    ///
    /// Panics if the VC is empty.
    #[inline]
    pub fn front_packet(&self, flat: usize) -> PacketId {
        assert!(self.len[flat] > 0, "front of an empty VC");
        self.slot_packet[self.slot(flat, 0)]
    }

    /// The flit at the FIFO front, if any, assembled from the slab.
    pub fn front(&self, flat: usize) -> Option<Flit> {
        if self.len[flat] == 0 {
            return None;
        }
        Some(self.read(self.slot(flat, 0)))
    }

    /// The `i`-th buffered flit of VC `flat` (0 = front), if present.
    /// Off the hot path (MAC view assembly walks short runs).
    pub fn get(&self, flat: usize, i: usize) -> Option<Flit> {
        if i >= self.len[flat] as usize {
            return None;
        }
        Some(self.read(self.slot(flat, i)))
    }

    #[inline]
    fn read(&self, slot: usize) -> Flit {
        Flit {
            packet: self.slot_packet[slot],
            kind: self.slot_kind[slot],
            seq: self.slot_seq[slot],
            src: self.slot_src[slot],
            dest: self.slot_dest[slot],
            created_at: self.slot_created[slot],
        }
    }

    /// Enqueues a flit into VC `flat`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (the engine's credit protocol must
    /// prevent that) or if a head flit arrives while another packet
    /// still owns the reservation.
    pub fn push(&mut self, flat: usize, flit: Flit) {
        assert!(
            (self.len[flat] as usize) < self.capacity,
            "VC overflow: credit protocol violated"
        );
        if flit.kind.is_head() {
            assert!(
                self.owner[flat].is_none(),
                "head flit of {} entered a VC owned by {:?}",
                flit.packet,
                self.owner[flat]
            );
            self.owner[flat] = Some(flit.packet);
        } else {
            debug_assert_eq!(
                self.owner[flat],
                Some(flit.packet),
                "body flit entered a foreign VC"
            );
        }
        if flit.kind.is_tail() {
            // Tail queued: reservation for *entry* purposes ends here;
            // the wormhole path itself is released when the tail leaves.
            self.owner[flat] = None;
        }
        let slot = self.slot(flat, self.len[flat] as usize);
        self.slot_packet[slot] = flit.packet;
        self.slot_kind[slot] = flit.kind;
        self.slot_seq[slot] = flit.seq;
        self.slot_src[slot] = flit.src;
        self.slot_dest[slot] = flit.dest;
        self.slot_created[slot] = flit.created_at;
        self.len[flat] += 1;
    }

    /// `true` if a flit of `packet` may enter VC `flat`: either the
    /// packet already owns the VC, or the VC is unowned and (for a head
    /// flit) idle enough to accept a new packet.  Space must be checked
    /// separately.
    #[inline]
    pub fn may_accept(&self, flat: usize, packet: PacketId, is_head: bool) -> bool {
        match self.owner[flat] {
            Some(owner) => owner == packet && !is_head,
            None => is_head,
        }
    }

    /// One VC's complete dynamic state for checkpointing: buffered
    /// flits front-to-back, pipeline stage, and wormhole owner.
    pub fn vc_state(&self, flat: usize) -> (Vec<Flit>, VcStage, Option<PacketId>) {
        let flits = (0..self.len(flat)).map(|i| self.read(self.slot(flat, i))).collect();
        (flits, self.stage[flat], self.owner[flat])
    }

    /// Restores one VC from a [`VcFabric::vc_state`] snapshot.
    ///
    /// Writes the slab arrays directly rather than replaying
    /// [`VcFabric::push`]: a snapshot taken mid-packet legitimately
    /// holds body flits whose head already departed, which `push`'s
    /// wormhole asserts would reject.  The ring head normalises to
    /// zero — invisible through the FIFO interface, every accessor
    /// addresses slots relative to the head.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot holds more flits than the VC's
    /// capacity.
    pub fn restore_vc(
        &mut self,
        flat: usize,
        flits: &[Flit],
        stage: VcStage,
        owner: Option<PacketId>,
    ) {
        assert!(flits.len() <= self.capacity, "VC snapshot exceeds buffer capacity");
        self.head[flat] = 0;
        self.len[flat] = flits.len() as u32;
        self.stage[flat] = stage;
        self.owner[flat] = owner;
        for (i, f) in flits.iter().enumerate() {
            let slot = flat * self.capacity + i;
            self.slot_packet[slot] = f.packet;
            self.slot_kind[slot] = f.kind;
            self.slot_seq[slot] = f.seq;
            self.slot_src[slot] = f.src;
            self.slot_dest[slot] = f.dest;
            self.slot_created[slot] = f.created_at;
        }
    }

    /// Dequeues the head flit of VC `flat`.
    pub fn pop(&mut self, flat: usize) -> Option<Flit> {
        if self.len[flat] == 0 {
            return None;
        }
        let flit = self.read(flat * self.capacity + self.head[flat] as usize);
        self.head[flat] = (self.head[flat] + 1) % self.capacity as u32;
        self.len[flat] -= 1;
        Some(flit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(packet: u64, seq: u32, len: u32) -> Flit {
        Flit {
            packet: PacketId(packet),
            kind: Flit::kind_for(seq, len),
            seq,
            src: NodeId(0),
            dest: NodeId(1),
            created_at: 0,
        }
    }

    #[test]
    fn fifo_order_and_space_accounting() {
        let mut fab = VcFabric::new(1, 1, 4);
        let vc = fab.flat(0, 0);
        assert!(fab.is_empty(vc));
        fab.push(vc, flit(1, 0, 3));
        fab.push(vc, flit(1, 1, 3));
        assert_eq!(fab.len(vc), 2);
        assert_eq!(fab.free_space(vc), 2);
        assert_eq!(fab.pop(vc).unwrap().seq, 0);
        assert_eq!(fab.pop(vc).unwrap().seq, 1);
        assert!(fab.pop(vc).is_none());
    }

    #[test]
    fn ring_wraps_across_capacity_many_times() {
        let mut fab = VcFabric::new(1, 1, 3);
        let vc = 0;
        for round in 0..10u32 {
            fab.push(vc, flit(u64::from(round) + 1, 0, 2));
            fab.push(vc, flit(u64::from(round) + 1, 1, 2));
            assert_eq!(fab.front_packet(vc), PacketId(u64::from(round) + 1));
            assert_eq!(fab.pop(vc).unwrap().seq, 0);
            assert_eq!(fab.pop(vc).unwrap().seq, 1);
        }
        assert!(fab.is_empty(vc));
    }

    #[test]
    fn ownership_lifecycle() {
        let mut fab = VcFabric::new(1, 1, 8);
        let vc = 0;
        assert_eq!(fab.owner(vc), None);
        fab.push(vc, flit(7, 0, 3)); // head
        assert_eq!(fab.owner(vc), Some(PacketId(7)));
        fab.push(vc, flit(7, 1, 3)); // body
        assert_eq!(fab.owner(vc), Some(PacketId(7)));
        fab.push(vc, flit(7, 2, 3)); // tail clears entry ownership
        assert_eq!(fab.owner(vc), None);
        // A new packet may start queueing behind the finished one.
        fab.push(vc, flit(8, 0, 1));
        assert_eq!(fab.len(vc), 4);
    }

    #[test]
    fn may_accept_enforces_wormhole_integrity() {
        let mut fab = VcFabric::new(1, 1, 8);
        let vc = 0;
        assert!(fab.may_accept(vc, PacketId(1), true));
        assert!(!fab.may_accept(vc, PacketId(1), false), "body needs ownership");
        fab.push(vc, flit(1, 0, 3));
        assert!(fab.may_accept(vc, PacketId(1), false));
        assert!(!fab.may_accept(vc, PacketId(2), true), "VC is owned");
        assert!(!fab.may_accept(vc, PacketId(2), false));
    }

    #[test]
    fn vcs_are_isolated_in_the_slab() {
        let mut fab = VcFabric::new(2, 2, 2);
        // Fill every VC with a distinct single-flit packet.
        for port in 0..2 {
            for vc in 0..2 {
                let flat = fab.flat(port, vc);
                let id = (port * 2 + vc) as u64 + 10;
                fab.push(flat, flit(id, 0, 2));
            }
        }
        for port in 0..2 {
            for vc in 0..2 {
                let flat = fab.flat(port, vc);
                let id = (port * 2 + vc) as u64 + 10;
                assert_eq!(fab.front_packet(flat), PacketId(id));
                assert_eq!(fab.len(flat), 1);
            }
        }
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let mut fab = VcFabric::new(1, 1, 1);
        fab.push(0, flit(1, 0, 2));
        fab.push(0, flit(1, 1, 2));
    }

    #[test]
    #[should_panic]
    fn foreign_head_panics() {
        let mut fab = VcFabric::new(1, 1, 4);
        fab.push(0, flit(1, 0, 2)); // head of packet 1, not yet tailed
        fab.push(0, flit(2, 0, 2)); // head of packet 2 must not enter
    }

    #[test]
    fn stage_transitions() {
        let mut fab = VcFabric::new(1, 1, 4);
        assert_eq!(fab.stage(0), VcStage::Idle);
        fab.set_stage(0, VcStage::Routed { out_port: 2, ready_at: 10 });
        assert!(matches!(fab.stage(0), VcStage::Routed { out_port: 2, .. }));
        fab.set_stage(0, VcStage::Active { out_port: 2, out_vc: 5, ready_at: 11 });
        assert!(matches!(fab.stage(0), VcStage::Active { out_vc: 5, .. }));
    }

    #[test]
    fn front_accessors_match_the_assembled_flit() {
        let mut fab = VcFabric::new(1, 2, 4);
        let f = Flit {
            packet: PacketId(42),
            kind: FlitKind::Head,
            seq: 0,
            src: NodeId(3),
            dest: NodeId(9),
            created_at: 77,
        };
        fab.push(1, f);
        assert_eq!(fab.front(1), Some(f));
        assert_eq!(fab.get(1, 0), Some(f));
        assert_eq!(fab.get(1, 1), None);
        assert_eq!(fab.front_kind(1), FlitKind::Head);
        assert_eq!(fab.front_dest(1), NodeId(9));
        assert_eq!(fab.front_packet(1), PacketId(42));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        VcFabric::new(1, 1, 0);
    }
}
