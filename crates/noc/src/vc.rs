//! Virtual channels: per-port flit FIFOs with wormhole allocation state.

use std::collections::VecDeque;

use crate::flit::{Flit, PacketId};

/// Wormhole pipeline state of one input virtual channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcStage {
    /// No packet allocated; waiting for a head flit.
    Idle,
    /// Route computed (output port known); waiting for VC allocation.
    /// The wrapped cycle is when the RC result becomes usable.
    Routed {
        /// Output port selected by the forwarding table.
        out_port: usize,
        /// First cycle at which VC allocation may happen (RC takes one
        /// pipeline stage).
        ready_at: u64,
    },
    /// Output VC allocated; flits may traverse.
    Active {
        /// Output port selected by the forwarding table.
        out_port: usize,
        /// Downstream virtual channel allocated to this packet.
        out_vc: usize,
        /// First cycle at which switch allocation may happen (VA takes
        /// one pipeline stage).
        ready_at: u64,
    },
}

/// One input virtual channel: a bounded FIFO plus allocation state.
#[derive(Debug, Clone)]
pub struct InputVc {
    fifo: VecDeque<Flit>,
    capacity: usize,
    stage: VcStage,
    /// The packet currently owning this VC (set by its head flit entering
    /// the FIFO, cleared when its tail leaves).
    owner: Option<PacketId>,
}

impl InputVc {
    /// A VC with room for `capacity` flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "VC buffers need capacity");
        InputVc {
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            stage: VcStage::Idle,
            owner: None,
        }
    }

    /// Buffered flits.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// `true` when no flits are buffered.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Remaining buffer slots.
    pub fn free_space(&self) -> usize {
        self.capacity - self.fifo.len()
    }

    /// Buffer capacity in flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current pipeline stage.
    pub fn stage(&self) -> VcStage {
        self.stage
    }

    /// Sets the pipeline stage (used by the switch allocators).
    pub fn set_stage(&mut self, stage: VcStage) {
        self.stage = stage;
    }

    /// The packet that owns this VC's wormhole reservation, if any.
    pub fn owner(&self) -> Option<PacketId> {
        self.owner
    }

    /// The flit at the FIFO head, if any.
    pub fn front(&self) -> Option<&Flit> {
        self.fifo.front()
    }

    /// Enqueues a flit.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (the engine's credit protocol must
    /// prevent that) or if a head flit arrives while another packet still
    /// owns the reservation.
    pub fn push(&mut self, flit: Flit) {
        assert!(
            self.fifo.len() < self.capacity,
            "VC overflow: credit protocol violated"
        );
        if flit.kind.is_head() {
            assert!(
                self.owner.is_none(),
                "head flit of {} entered a VC owned by {:?}",
                flit.packet,
                self.owner
            );
            self.owner = Some(flit.packet);
        } else {
            debug_assert_eq!(
                self.owner,
                Some(flit.packet),
                "body flit entered a foreign VC"
            );
        }
        if flit.kind.is_tail() {
            // Tail queued: reservation for *entry* purposes ends here; the
            // wormhole path itself is released when the tail leaves.
            self.owner = None;
        }
        self.fifo.push_back(flit);
    }

    /// `true` if a flit of `packet` may enter: either the packet already
    /// owns the VC, or the VC is unowned and (for a head flit) idle
    /// enough to accept a new packet.  Space must be checked separately.
    pub fn may_accept(&self, packet: PacketId, is_head: bool) -> bool {
        match self.owner {
            Some(owner) => owner == packet && !is_head,
            None => is_head,
        }
    }

    /// Dequeues the head flit.
    pub fn pop(&mut self) -> Option<Flit> {
        self.fifo.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimnet_topology::NodeId;

    fn flit(packet: u64, seq: u32, len: u32) -> Flit {
        Flit {
            packet: PacketId(packet),
            kind: Flit::kind_for(seq, len),
            seq,
            src: NodeId(0),
            dest: NodeId(1),
            created_at: 0,
        }
    }

    #[test]
    fn fifo_order_and_space_accounting() {
        let mut vc = InputVc::new(4);
        assert!(vc.is_empty());
        vc.push(flit(1, 0, 3));
        vc.push(flit(1, 1, 3));
        assert_eq!(vc.len(), 2);
        assert_eq!(vc.free_space(), 2);
        assert_eq!(vc.pop().unwrap().seq, 0);
        assert_eq!(vc.pop().unwrap().seq, 1);
        assert!(vc.pop().is_none());
    }

    #[test]
    fn ownership_lifecycle() {
        let mut vc = InputVc::new(8);
        assert_eq!(vc.owner(), None);
        vc.push(flit(7, 0, 3)); // head
        assert_eq!(vc.owner(), Some(PacketId(7)));
        vc.push(flit(7, 1, 3)); // body
        assert_eq!(vc.owner(), Some(PacketId(7)));
        vc.push(flit(7, 2, 3)); // tail clears entry ownership
        assert_eq!(vc.owner(), None);
        // A new packet may start queueing behind the finished one.
        vc.push(flit(8, 0, 1));
        assert_eq!(vc.len(), 4);
    }

    #[test]
    fn may_accept_enforces_wormhole_integrity() {
        let mut vc = InputVc::new(8);
        assert!(vc.may_accept(PacketId(1), true));
        assert!(!vc.may_accept(PacketId(1), false), "body needs ownership");
        vc.push(flit(1, 0, 3));
        assert!(vc.may_accept(PacketId(1), false));
        assert!(!vc.may_accept(PacketId(2), true), "VC is owned");
        assert!(!vc.may_accept(PacketId(2), false));
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let mut vc = InputVc::new(1);
        vc.push(flit(1, 0, 2));
        vc.push(flit(1, 1, 2));
    }

    #[test]
    #[should_panic]
    fn foreign_head_panics() {
        let mut vc = InputVc::new(4);
        vc.push(flit(1, 0, 2)); // head of packet 1, not yet tailed
        vc.push(flit(2, 0, 2)); // head of packet 2 must not enter
    }

    #[test]
    fn stage_transitions() {
        let mut vc = InputVc::new(4);
        assert_eq!(vc.stage(), VcStage::Idle);
        vc.set_stage(VcStage::Routed { out_port: 2, ready_at: 10 });
        assert!(matches!(vc.stage(), VcStage::Routed { out_port: 2, .. }));
        vc.set_stage(VcStage::Active { out_port: 2, out_vc: 5, ready_at: 11 });
        assert!(matches!(vc.stage(), VcStage::Active { out_vc: 5, .. }));
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        InputVc::new(0);
    }
}
