//! Differential suite for the fast stepping path: two identically
//! built networks receive identical traffic; one advances through
//! [`Network::step`] (the reference engine), the other through
//! [`Network::step_fast`] (the replica-batch inner step).  After every
//! cycle the complete observable state must match — statistics, the
//! energy meter (bit-identical floats via `PartialEq` on the meter),
//! arrival lists, in-flight counters — across all three architectures,
//! both wireless realisations, and under a mixed step/step_fast
//! schedule (the conservative-superset bitset invariant).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wimnet_noc::network::WirelessMode;
use wimnet_noc::{
    MediumActions, MediumView, Network, NocConfig, PacketDesc, SharedMedium,
};
use wimnet_routing::{Routes, RoutingPolicy};
use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout};

/// Minimal deterministic test MAC (same as `slab_model.rs`): each cycle
/// the first TX front anywhere whose target can admit it is transmitted.
struct OneFlitMac;

impl SharedMedium for OneFlitMac {
    fn step(&mut self, _now: u64, view: &MediumView, actions: &mut MediumActions) {
        for radio in view.radios() {
            for (tx_vc, tx) in radio.tx.iter().enumerate() {
                let Some((flit, target)) = tx.front else { continue };
                let Some(rx_vc) =
                    view.rx_admission(target, flit.packet, flit.kind.is_head())
                else {
                    continue;
                };
                actions.transmit(radio.id, tx_vc, rx_vc);
                return;
            }
        }
    }

    fn name(&self) -> &str {
        "one-flit-test-mac"
    }
}

fn build(arch: Architecture, cfg: NocConfig) -> (MultichipLayout, Network) {
    let layout = MultichipLayout::build(&MultichipConfig::xcym(4, 4, arch)).unwrap();
    let policy = if arch == Architecture::Wireless {
        RoutingPolicy::shortest_path()
    } else {
        RoutingPolicy::default()
    };
    let routes = Routes::build(layout.graph(), policy).unwrap();
    let net = Network::new(&layout, routes, cfg).unwrap();
    (layout, net)
}

fn inject_random(layout: &MultichipLayout, net: &mut Network, seed: u64, packets: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nodes: Vec<_> = layout
        .core_nodes()
        .iter()
        .chain(layout.memory_nodes())
        .copied()
        .collect();
    for k in 0..packets {
        let src = nodes[rng.gen_range(0..nodes.len())];
        let dst = nodes[rng.gen_range(0..nodes.len())];
        if src == dst {
            continue;
        }
        let len = [1u32, 3, 16, 64][rng.gen_range(0..4)];
        net.inject(PacketDesc::new(src, dst, len, k as u64));
    }
}

/// Asserts complete observable equality between the two engines.
fn assert_same(reference: &mut Network, fast: &mut Network, cycle: u64) {
    assert_eq!(reference.now(), fast.now(), "cycle {cycle}: clocks diverged");
    assert_eq!(
        reference.flits_in_flight(),
        fast.flits_in_flight(),
        "cycle {cycle}: in-flight counters diverged"
    );
    assert_eq!(
        reference.source_backlog(),
        fast.source_backlog(),
        "cycle {cycle}: source backlog diverged"
    );
    assert_eq!(
        reference.radio_backlog(),
        fast.radio_backlog(),
        "cycle {cycle}: radio backlog diverged"
    );
    assert_eq!(
        reference.stats(),
        fast.stats(),
        "cycle {cycle}: statistics diverged"
    );
    assert_eq!(
        reference.meter(),
        fast.meter(),
        "cycle {cycle}: energy meters diverged (bit-identity violated)"
    );
    assert_eq!(
        reference.drain_arrivals(),
        fast.drain_arrivals(),
        "cycle {cycle}: arrival streams diverged"
    );
    assert_eq!(reference.is_idle(), fast.is_idle(), "cycle {cycle}: idle predicates");
}

fn run_differential(arch: Architecture, cfg: NocConfig, medium: bool, seed: u64) {
    let (layout, mut reference) = build(arch, cfg.clone());
    let (_, mut fast) = build(arch, cfg);
    if medium {
        reference.attach_medium(Box::new(OneFlitMac));
        fast.attach_medium(Box::new(OneFlitMac));
    }
    assert!(fast.supports_fast_step(), "paper configs fit the 128-bit masks");
    inject_random(&layout, &mut reference, seed, 40);
    inject_random(&layout, &mut fast, seed, 40);
    for cycle in 0..600u64 {
        reference.step();
        fast.step_fast();
        fast.assert_switch_invariants();
        assert_same(&mut reference, &mut fast, cycle);
    }
}

#[test]
fn fast_step_matches_reference_substrate() {
    run_differential(Architecture::Substrate, NocConfig::paper(), false, 0xA11CE);
}

#[test]
fn fast_step_matches_reference_interposer() {
    run_differential(Architecture::Interposer, NocConfig::paper(), false, 0xB0B);
}

#[test]
fn fast_step_matches_reference_wireless_point_to_point() {
    let cfg = NocConfig {
        wireless_mode: WirelessMode::PointToPoint {
            rate: 16.0 / 80.0,
            latency: 1,
            max_concurrent: 4,
        },
        ..NocConfig::paper()
    };
    run_differential(Architecture::Wireless, cfg, false, 0xCAFE);
}

#[test]
fn fast_step_matches_reference_wireless_medium() {
    run_differential(Architecture::Wireless, NocConfig::paper(), true, 0xD00D);
}

/// The two paths may be mixed freely on one network: the word bitsets
/// are maintained as conservative supersets at every shared insert site
/// and swept only by the fast path, so an arbitrary interleaving remains
/// decision-identical to the pure reference engine.
#[test]
fn mixed_stepping_schedule_matches_reference() {
    let cfg = NocConfig::paper();
    let (layout, mut reference) = build(Architecture::Substrate, cfg.clone());
    let (_, mut mixed) = build(Architecture::Substrate, cfg);
    inject_random(&layout, &mut reference, 0x5EED, 40);
    inject_random(&layout, &mut mixed, 0x5EED, 40);
    let mut rng = SmallRng::seed_from_u64(9);
    for cycle in 0..600u64 {
        reference.step();
        if rng.gen_bool(0.5) {
            mixed.step_fast();
        } else {
            mixed.step();
        }
        mixed.assert_switch_invariants();
        assert_same(&mut reference, &mut mixed, cycle);
    }
}

/// Fast-forward interacts identically with both paths: run to idle on
/// the fast path, skip, and resume — totals must match a reference that
/// did the same with legacy steps.
#[test]
fn fast_forward_composes_with_fast_stepping() {
    let cfg = NocConfig::paper();
    let (layout, mut reference) = build(Architecture::Substrate, cfg.clone());
    let (_, mut fast) = build(Architecture::Substrate, cfg);
    let src = layout.core_nodes()[0];
    let dst = layout.core_nodes()[9];
    reference.inject(PacketDesc::new(src, dst, 8, 0));
    fast.inject(PacketDesc::new(src, dst, 8, 0));
    for _ in 0..200u64 {
        reference.step();
        fast.step_fast();
    }
    assert!(reference.is_idle() && fast.is_idle(), "short packet drained");
    assert_eq!(reference.fast_forward(1000), 1000);
    assert_eq!(fast.fast_forward(1000), 1000);
    reference.inject(PacketDesc::new(dst, src, 8, 0));
    fast.inject(PacketDesc::new(dst, src, 8, 0));
    for cycle in 0..200u64 {
        reference.step();
        fast.step_fast();
        assert_same(&mut reference, &mut fast, cycle);
    }
    assert_eq!(reference.fast_forwarded_cycles(), fast.fast_forwarded_cycles());
}
