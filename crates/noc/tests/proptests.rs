//! Property-based tests of the engine's building blocks and the
//! end-to-end conservation laws.

use proptest::prelude::*;

use wimnet_noc::arbiter::RoundRobin;
use wimnet_noc::{Link, Network, NocConfig, PacketDesc};
use wimnet_routing::{Routes, RoutingPolicy};
use wimnet_topology::{Architecture, EdgeId, EdgeKind, MultichipConfig, MultichipLayout};

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Round-robin arbitration is work-conserving and starvation-free:
    /// with a persistent requester set, everyone wins within n grants.
    #[test]
    fn round_robin_is_starvation_free(
        n in 1usize..16,
        requesters in prop::collection::vec(any::<bool>(), 1..16),
    ) {
        let n = n.min(requesters.len());
        let req = &requesters[..n];
        if !req.iter().any(|&r| r) {
            let mut arb = RoundRobin::new(n);
            prop_assert_eq!(arb.grant(|i| req[i]), None);
            return Ok(());
        }
        let mut arb = RoundRobin::new(n);
        let mut last_win = vec![0usize; n];
        for round in 1..=(3 * n) {
            let w = arb.grant(|i| req[i]).unwrap();
            prop_assert!(req[w]);
            last_win[w] = round;
        }
        for (i, &r) in req.iter().enumerate() {
            if r {
                // Every persistent requester won within the last n rounds.
                prop_assert!(last_win[i] > 2 * n, "requester {i} starved");
            }
        }
    }

    /// A link's long-run throughput equals its configured rate.
    #[test]
    fn link_throughput_matches_rate(
        rate_milli in 100u32..2000,
        cycles in 100u64..2000,
    ) {
        let rate = f64::from(rate_milli) / 1000.0;
        let mut link = Link::new(EdgeId(0), EdgeKind::Mesh, 1.0, rate, 1);
        let flit = wimnet_noc::Flit {
            packet: wimnet_noc::PacketId(0),
            kind: wimnet_noc::FlitKind::Body,
            seq: 0,
            src: wimnet_topology::NodeId(0),
            dest: wimnet_topology::NodeId(1),
            created_at: 0,
        };
        let fill = wimnet_noc::link::LinkDelivery { flit, vc: 0, arrives_at: 0 };
        let mut flight = wimnet_noc::RingSlab::uniform(1, link.flight_capacity(), fill);
        let mut sent = 0u64;
        for now in 0..cycles {
            link.begin_cycle();
            Link::take_arrivals_into(&mut flight, 0, now, &mut Vec::new());
            while link.can_accept() {
                link.send(&mut flight, 0, flit, 0, now);
                sent += 1;
            }
        }
        let expected = rate * cycles as f64;
        prop_assert!(
            (sent as f64 - expected).abs() <= rate.max(1.0) + 1.0,
            "sent {sent}, expected ~{expected}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// End-to-end conservation on random traffic mixes: every injected
    /// packet is delivered exactly once, with its full flit count, on
    /// every wired architecture.
    #[test]
    fn wired_networks_conserve_random_traffic(
        arch_idx in 0usize..2,
        seed in 0u64..10_000,
        n_packets in 1usize..80,
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        let arch = [Architecture::Substrate, Architecture::Interposer][arch_idx];
        let layout =
            MultichipLayout::build(&MultichipConfig::xcym(4, 4, arch)).unwrap();
        let routes = Routes::build(layout.graph(), RoutingPolicy::default()).unwrap();
        let mut net = Network::new(&layout, routes, NocConfig::paper()).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes: Vec<_> = layout
            .core_nodes()
            .iter()
            .chain(layout.memory_nodes())
            .copied()
            .collect();
        let mut flits = 0u64;
        for k in 0..n_packets {
            let src = nodes[rng.gen_range(0..nodes.len())];
            let dst = nodes[rng.gen_range(0..nodes.len())];
            if src == dst {
                continue;
            }
            let len = [1u32, 3, 16, 64][rng.gen_range(0..4)];
            net.inject(PacketDesc::new(src, dst, len, k as u64));
            flits += u64::from(len);
        }
        let injected = net.stats().packets_injected();
        for _ in 0..120_000u64 {
            if net.flits_in_flight() == 0 && net.source_backlog() == 0 {
                break;
            }
            net.step();
        }
        prop_assert_eq!(net.stats().packets_delivered(), injected);
        prop_assert_eq!(net.stats().flits_delivered(), flits);
        prop_assert!(net.meter().verify_conservation(1e-9));
        prop_assert_eq!(net.flits_in_flight(), 0);
    }
}
