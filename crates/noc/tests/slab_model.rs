//! Model-based tests of the slab VC fabric: random push/pop/stage/owner
//! sequences checked against a reference `VecDeque<Flit>` model (the
//! exact structure the fabric replaced), plus whole-switch invariant
//! sweeps (`buffered` counter and busy set vs slab occupancy) under
//! random end-to-end traffic.

use std::collections::VecDeque;

use proptest::prelude::*;

use wimnet_noc::vc::{VcFabric, VcStage};
use wimnet_noc::{
    Flit, FlitKind, MediumActions, MediumView, Network, NocConfig, PacketDesc, PacketId,
    RingSlab, SharedMedium,
};
use wimnet_routing::{Routes, RoutingPolicy};
use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout, NodeId};

/// Minimal test MAC: each cycle, the first TX front anywhere whose
/// target can admit it is transmitted (one flit per cycle, so a stale
/// view can never double-book a receive VC).  Exists purely to drive
/// the radio-port `Switch::deliver` path under the invariant sweep.
struct OneFlitMac;

impl SharedMedium for OneFlitMac {
    fn step(&mut self, _now: u64, view: &MediumView, actions: &mut MediumActions) {
        for radio in view.radios() {
            for (tx_vc, tx) in radio.tx.iter().enumerate() {
                let Some((flit, target)) = tx.front else { continue };
                let Some(rx_vc) =
                    view.rx_admission(target, flit.packet, flit.kind.is_head())
                else {
                    continue;
                };
                actions.transmit(radio.id, tx_vc, rx_vc);
                return;
            }
        }
    }

    fn name(&self) -> &str {
        "one-flit-test-mac"
    }
}

/// Reference model of one input VC: the pre-slab representation.
#[derive(Debug, Clone)]
struct ModelVc {
    fifo: VecDeque<Flit>,
    owner: Option<PacketId>,
    stage: VcStage,
}

impl ModelVc {
    fn push(&mut self, flit: Flit) {
        if flit.kind.is_head() {
            assert!(self.owner.is_none());
            self.owner = Some(flit.packet);
        }
        if flit.kind.is_tail() {
            self.owner = None;
        }
        self.fifo.push_back(flit);
    }
}

/// In-progress packet feeding one model VC (so generated flit sequences
/// always respect wormhole ownership).
#[derive(Debug, Clone, Copy)]
struct Incoming {
    packet: u64,
    next_seq: u32,
    len: u32,
}

fn flit_at(packet: u64, seq: u32, len: u32) -> Flit {
    Flit {
        packet: PacketId(packet),
        kind: Flit::kind_for(seq, len),
        seq,
        src: NodeId(0),
        dest: NodeId((packet % 7) as usize + 1),
        created_at: packet ^ u64::from(seq),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Push/pop/stage sequences over several VCs behave exactly like
    /// per-VC `VecDeque`s: same fronts, same pops, same owners, same
    /// lengths — and slab slots of different VCs never interfere.
    #[test]
    fn fabric_round_trips_against_the_vecdeque_model(
        ports in 1usize..4,
        vcs in 1usize..4,
        capacity in 1usize..6,
        ops in prop::collection::vec((0u8..4, 0usize..16, 1u32..5), 1..200),
    ) {
        let mut fabric = VcFabric::new(ports, vcs, capacity);
        let n = ports * vcs;
        let mut model: Vec<ModelVc> = (0..n)
            .map(|_| ModelVc { fifo: VecDeque::new(), owner: None, stage: VcStage::Idle })
            .collect();
        let mut incoming: Vec<Option<Incoming>> = vec![None; n];
        let mut next_packet = 1u64;

        for (op, target, len) in ops {
            let flat = target % n;
            match op {
                // Push the next legal flit (new head, or continuation).
                0 => {
                    if model[flat].fifo.len() == capacity {
                        continue;
                    }
                    let inc = match incoming[flat] {
                        Some(inc) => inc,
                        None => {
                            if model[flat].owner.is_some() {
                                continue; // entry reservation still held
                            }
                            Incoming { packet: next_packet, next_seq: 0, len }
                        }
                    };
                    let f = flit_at(inc.packet, inc.next_seq, inc.len);
                    if inc.next_seq == 0 {
                        next_packet += 1;
                    }
                    fabric.push(flat, f);
                    model[flat].push(f);
                    incoming[flat] = if f.kind.is_tail() {
                        None
                    } else {
                        Some(Incoming { next_seq: inc.next_seq + 1, ..inc })
                    };
                }
                // Pop and compare.
                1 => {
                    let got = fabric.pop(flat);
                    let want = model[flat].fifo.pop_front();
                    prop_assert_eq!(got, want, "pop diverged on VC {}", flat);
                }
                // Stage write.
                2 => {
                    let stage = match len {
                        1 => VcStage::Idle,
                        2 => VcStage::Routed { out_port: target % 4, ready_at: len.into() },
                        _ => VcStage::Active {
                            out_port: target % 4,
                            out_vc: target % 3,
                            ready_at: len.into(),
                        },
                    };
                    fabric.set_stage(flat, stage);
                    model[flat].stage = stage;
                }
                // Admission probe on an arbitrary packet id.
                _ => {
                    let probe = PacketId(u64::from(len));
                    let is_head = target % 2 == 0;
                    let want = match model[flat].owner {
                        Some(owner) => owner == probe && !is_head,
                        None => is_head,
                    };
                    prop_assert_eq!(fabric.may_accept(flat, probe, is_head), want);
                }
            }
            // Full observational equivalence after every op.
            for (vc, m) in model.iter().enumerate() {
                prop_assert_eq!(fabric.len(vc), m.fifo.len());
                prop_assert_eq!(fabric.is_empty(vc), m.fifo.is_empty());
                prop_assert_eq!(fabric.free_space(vc), capacity - m.fifo.len());
                prop_assert_eq!(fabric.owner(vc), m.owner);
                prop_assert_eq!(fabric.stage(vc), m.stage);
                prop_assert_eq!(fabric.front(vc), m.fifo.front().copied());
                for i in 0..m.fifo.len() {
                    prop_assert_eq!(fabric.get(vc, i), m.fifo.get(i).copied());
                }
                if !m.fifo.is_empty() {
                    let front = *m.fifo.front().unwrap();
                    prop_assert_eq!(fabric.front_kind(vc), front.kind);
                    prop_assert_eq!(fabric.front_dest(vc), front.dest);
                    prop_assert_eq!(fabric.front_packet(vc), front.packet);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random push/pop sequences over a multi-lane [`RingSlab`] behave
    /// exactly like a `VecDeque` per lane (the structure the slab
    /// replaced for link pipelines, radio TX FIFOs and source queues):
    /// same fronts, same pops, same iteration order, same lengths —
    /// including across capacity growth — and lanes never interfere.
    #[test]
    fn ring_slab_round_trips_against_the_vecdeque_model(
        caps in prop::collection::vec(0usize..6, 1..5),
        ops in prop::collection::vec((0u8..3, 0usize..16, any::<u64>()), 1..200),
    ) {
        let lanes = caps.len();
        let mut slab = RingSlab::with_capacities(&caps, 0u64);
        let mut model: Vec<VecDeque<u64>> = vec![VecDeque::new(); lanes];

        for (op, target, value) in ops {
            let lane = target % lanes;
            match op {
                // Fixed-capacity push (skipped when full — overflow is a
                // protocol violation the slab asserts).
                0 => {
                    if slab.free_space(lane) == 0 {
                        continue;
                    }
                    slab.push_back(lane, value);
                    model[lane].push_back(value);
                }
                // Growing push: always legal, rebuilds the slab when the
                // lane is full.
                1 => {
                    slab.push_back_growing(lane, value);
                    model[lane].push_back(value);
                }
                // Pop and compare.
                _ => {
                    prop_assert_eq!(slab.pop_front(lane), model[lane].pop_front());
                }
            }
            // Full observational equivalence after every op.
            for (l, m) in model.iter().enumerate() {
                prop_assert_eq!(slab.len(l), m.len());
                prop_assert_eq!(slab.is_empty(l), m.is_empty());
                prop_assert!(slab.capacity(l) >= m.len());
                prop_assert_eq!(slab.front(l), m.front().copied());
                for i in 0..m.len() {
                    prop_assert_eq!(slab.get(l, i), m.get(i).copied());
                }
                prop_assert_eq!(slab.get(l, m.len()), None);
                prop_assert_eq!(
                    slab.iter(l).collect::<Vec<_>>(),
                    m.iter().copied().collect::<Vec<_>>()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Under random end-to-end traffic, every switch's `buffered`
    /// counter and busy set stay consistent with slab occupancy at
    /// every cycle (the engine's O(1) active-set checks depend on it).
    /// The wireless case runs with a medium attached so radio-port
    /// deliveries (`apply_medium_actions`) hit the sweep too.
    #[test]
    fn switch_invariants_hold_under_random_traffic(
        arch_idx in 0usize..3,
        seed in 0u64..1_000,
        n_packets in 1usize..40,
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        let arch = [
            Architecture::Substrate,
            Architecture::Interposer,
            Architecture::Wireless,
        ][arch_idx];
        let layout =
            MultichipLayout::build(&MultichipConfig::xcym(4, 4, arch)).unwrap();
        let routes = Routes::build(layout.graph(), RoutingPolicy::default()).unwrap();
        let mut net = Network::new(&layout, routes, NocConfig::paper()).unwrap();
        if arch == Architecture::Wireless {
            net.attach_medium(Box::new(OneFlitMac));
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes: Vec<_> = layout
            .core_nodes()
            .iter()
            .chain(layout.memory_nodes())
            .copied()
            .collect();
        for k in 0..n_packets {
            let src = nodes[rng.gen_range(0..nodes.len())];
            let dst = nodes[rng.gen_range(0..nodes.len())];
            if src == dst {
                continue;
            }
            let len = [1u32, 3, 16, 64][rng.gen_range(0..4)];
            net.inject(PacketDesc::new(src, dst, len, k as u64));
        }
        for _ in 0..400u64 {
            net.step();
            net.assert_switch_invariants();
        }
    }
}

/// Deterministic spot check kept outside proptest so a failure prints a
/// plain backtrace: a wrapping FIFO with mixed packet sizes.
#[test]
fn wrapping_ring_reproduces_vecdeque_order() {
    let mut fabric = VcFabric::new(1, 1, 4);
    let mut model: VecDeque<Flit> = VecDeque::new();
    let mut packet = 1u64;
    for round in 0..50u32 {
        let len = (round % 3) + 1;
        if fabric.free_space(0) >= len as usize && fabric.owner(0).is_none() {
            for seq in 0..len {
                let f = flit_at(packet, seq, len);
                fabric.push(0, f);
                model.push_back(f);
            }
            packet += 1;
        }
        for _ in 0..(round % 4) {
            assert_eq!(fabric.pop(0), model.pop_front());
        }
        assert_eq!(fabric.len(0), model.len());
        assert_eq!(fabric.front(0), model.front().copied());
    }
}

#[test]
fn flit_kind_default_is_body() {
    // The slab pre-fills its kind lane with the default; pin it so slab
    // initialisation never accidentally fabricates head/tail markers.
    assert_eq!(FlitKind::default(), FlitKind::Body);
}
