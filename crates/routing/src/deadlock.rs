//! Channel-dependency-graph deadlock verification.
//!
//! Wormhole switching deadlocks exactly when the channel dependency graph
//! (CDG) induced by the routing function contains a cycle (Dally & Seitz;
//! the paper's ref \[16\] covers the classical theory).  This module builds
//! the CDG from a topology plus its [`Routes`] and searches for cycles,
//! letting the test-suite *prove* which routing policies are safe on which
//! architectures instead of assuming it.

use rustc_hash::FxHashSet;
use wimnet_topology::{EdgeId, Graph, NodeId};

use crate::forwarding::Routes;

/// A directed channel: one direction of one physical link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// The undirected topology edge.
    pub edge: EdgeId,
    /// The node this channel *enters*.
    pub into: NodeId,
}

/// The channel dependency graph for a routed topology.
#[derive(Debug, Clone)]
pub struct ChannelDependencyGraph {
    channels: Vec<Channel>,
    /// Dependencies as adjacency: index into `channels`.
    deps: Vec<Vec<usize>>,
}

impl ChannelDependencyGraph {
    /// Builds the CDG by walking every source→destination path in
    /// `routes` and recording each consecutive channel pair as a
    /// dependency.
    ///
    /// # Panics
    ///
    /// Panics if `routes` was built for a different graph (detected by a
    /// node-count mismatch) or if a routed walk loops (corrupt tables).
    pub fn build(graph: &Graph, routes: &Routes) -> Self {
        assert_eq!(
            graph.node_count(),
            routes.node_count(),
            "routes were built for a different graph"
        );
        // Channel index: edge e entering node a is 2e, entering b is 2e+1.
        let channel_index = |edge: EdgeId, into: NodeId| -> usize {
            let e = graph.edge(edge).expect("edge exists");
            if into == e.b {
                edge.index() * 2 + 1
            } else {
                debug_assert_eq!(into, e.a);
                edge.index() * 2
            }
        };
        let mut channels = Vec::with_capacity(graph.edge_count() * 2);
        for (i, e) in graph.edges().iter().enumerate() {
            channels.push(Channel { edge: EdgeId(i), into: e.a });
            channels.push(Channel { edge: EdgeId(i), into: e.b });
        }
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); channels.len()];
        // O(1) membership instead of a linear `Vec::contains` scan per
        // path segment: every source→destination walk funnels through
        // here, so on large layouts this dominates CDG construction.
        let mut seen: FxHashSet<(usize, usize)> = FxHashSet::default();
        for s in graph.node_ids() {
            for d in graph.node_ids() {
                if s == d {
                    continue;
                }
                let (nodes, edges) = routes
                    .path_with_edges(s, d)
                    .expect("complete tables walk without loops");
                for i in 1..edges.len() {
                    let c1 = channel_index(edges[i - 1], nodes[i]);
                    let c2 = channel_index(edges[i], nodes[i + 1]);
                    if seen.insert((c1, c2)) {
                        deps[c1].push(c2);
                    }
                }
            }
        }
        ChannelDependencyGraph { channels, deps }
    }

    /// Number of directed channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Total number of recorded dependencies.
    pub fn dependency_count(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    /// Finds a dependency cycle, if one exists, as a channel sequence
    /// (first element repeated at the end is *not* included).
    pub fn find_cycle(&self) -> Option<Vec<Channel>> {
        // Iterative three-colour DFS.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let n = self.channels.len();
        let mut colour = vec![Colour::White; n];
        let mut parent = vec![usize::MAX; n];
        for start in 0..n {
            if colour[start] != Colour::White {
                continue;
            }
            // stack of (node, next-child-index)
            let mut stack = vec![(start, 0usize)];
            colour[start] = Colour::Grey;
            while let Some(&mut (node, ref mut child)) = stack.last_mut() {
                if *child < self.deps[node].len() {
                    let next = self.deps[node][*child];
                    *child += 1;
                    match colour[next] {
                        Colour::White => {
                            colour[next] = Colour::Grey;
                            parent[next] = node;
                            stack.push((next, 0));
                        }
                        Colour::Grey => {
                            // Found a cycle: unwind from `node` to `next`.
                            let mut cycle = vec![self.channels[next]];
                            let mut cur = node;
                            while cur != next {
                                cycle.push(self.channels[cur]);
                                cur = parent[cur];
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[node] = Colour::Black;
                    stack.pop();
                }
            }
        }
        None
    }
}

/// Convenience wrapper: builds the CDG and searches it for a cycle.
///
/// Returns `None` when the routing function is deadlock-free on this
/// topology.
pub fn find_cycle(graph: &Graph, routes: &Routes) -> Option<Vec<Channel>> {
    ChannelDependencyGraph::build(graph, routes).find_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forwarding::{Routes, RoutingPolicy};
    use wimnet_topology::{
        Architecture, EdgeKind, MultichipConfig, MultichipLayout, Node, NodeKind, Point,
    };

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                g.add_node(Node {
                    kind: NodeKind::Core { chip: 0, x: i, y: 0 },
                    position: Point::new(
                        (i as f64 * std::f64::consts::TAU / n as f64).cos(),
                        (i as f64 * std::f64::consts::TAU / n as f64).sin(),
                    ),
                })
            })
            .collect();
        for i in 0..n {
            g.add_edge(ids[i], ids[(i + 1) % n], EdgeKind::Mesh).unwrap();
        }
        g
    }

    #[test]
    fn shortest_path_on_a_ring_deadlocks() {
        // The classic example: minimal routing on an unidirectional-cycle-
        // inducing ring produces a cyclic CDG.
        let g = ring(6);
        let r = Routes::build_with_weights(&g, RoutingPolicy::ShortestPath, &|_, _| 1.0)
            .unwrap();
        let cycle = find_cycle(&g, &r);
        assert!(cycle.is_some(), "ring + minimal routing must deadlock");
        assert!(cycle.unwrap().len() >= 3);
    }

    #[test]
    fn updown_on_a_ring_is_deadlock_free() {
        let g = ring(6);
        let r = Routes::build(&g, RoutingPolicy::up_down()).unwrap();
        assert!(find_cycle(&g, &r).is_none());
    }

    #[test]
    fn tree_on_a_ring_is_deadlock_free() {
        let g = ring(8);
        let r = Routes::build(&g, RoutingPolicy::tree()).unwrap();
        assert!(find_cycle(&g, &r).is_none());
    }

    #[test]
    fn tree_and_updown_are_safe_on_all_paper_architectures() {
        for arch in Architecture::ALL {
            let layout =
                MultichipLayout::build(&MultichipConfig::xcym(4, 4, arch)).unwrap();
            for policy in [RoutingPolicy::tree(), RoutingPolicy::up_down()] {
                let r = Routes::build(layout.graph(), policy).unwrap();
                assert!(
                    find_cycle(layout.graph(), &r).is_none(),
                    "{policy} must be deadlock-free on {arch}"
                );
            }
        }
    }

    #[test]
    fn cdg_statistics_are_populated() {
        let g = ring(5);
        let r = Routes::build(&g, RoutingPolicy::up_down()).unwrap();
        let cdg = ChannelDependencyGraph::build(&g, &r);
        assert_eq!(cdg.channel_count(), 2 * g.edge_count());
        assert!(cdg.dependency_count() > 0);
    }
}
