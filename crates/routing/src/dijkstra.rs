//! Deterministic single-source Dijkstra over the topology graph.
//!
//! Determinism matters: the paper precomputes forwarding tables once and
//! the whole evaluation must be reproducible from a seed.  Ties between
//! equal-cost paths are broken toward the lower node index, and edge
//! relaxations scan neighbours in insertion order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use wimnet_topology::{Edge, EdgeId, Graph, NodeId};

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<f64>,
    parent: Vec<Option<(NodeId, EdgeId)>>,
}

impl ShortestPaths {
    /// The source node of this computation.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `node` (`f64::INFINITY` when
    /// unreachable).
    pub fn distance(&self, node: NodeId) -> f64 {
        self.dist[node.index()]
    }

    /// The predecessor of `node` on its shortest path from the source,
    /// with the edge taken, or `None` for the source and unreachable
    /// nodes.
    pub fn parent(&self, node: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent[node.index()]
    }

    /// `true` if `node` is reachable from the source.
    pub fn is_reachable(&self, node: NodeId) -> bool {
        self.dist[node.index()].is_finite()
    }

    /// The node sequence of the shortest path from the source to `to`
    /// (inclusive of both endpoints), or `None` when unreachable.
    pub fn path_to(&self, to: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_reachable(to) {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while let Some((prev, _)) = self.parent[cur.index()] {
            path.push(prev);
            cur = prev;
        }
        path.reverse();
        Some(path)
    }
}

/// Max-heap entry ordered so the binary heap pops the *smallest*
/// `(distance, node)` first; node index breaks distance ties
/// deterministically.
#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the minimum first.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest paths from `source` with per-edge weights from
/// `weight`.
///
/// # Panics
///
/// Panics if `source` is out of range for `graph`, or if `weight` returns
/// a negative or non-finite value (Dijkstra's preconditions).
pub fn shortest_paths(
    graph: &Graph,
    source: NodeId,
    weight: &dyn Fn(EdgeId, &Edge) -> f64,
) -> ShortestPaths {
    assert!(
        source.index() < graph.node_count(),
        "source {source} out of range"
    );
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();

    dist[source.index()] = 0.0;
    heap.push(HeapEntry { dist: 0.0, node: source });

    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if done[node.index()] {
            continue;
        }
        done[node.index()] = true;
        for &(next, edge_id) in graph.neighbors(node) {
            let edge = graph.edge(edge_id).expect("edge from adjacency exists");
            let w = weight(edge_id, edge);
            assert!(
                w >= 0.0 && w.is_finite(),
                "edge weight must be finite and non-negative, got {w}"
            );
            let nd = d + w;
            let cur = dist[next.index()];
            // Strictly-better, or equal-cost with a lower-index parent:
            // keeps table construction independent of heap pop order.
            let better = nd < cur
                || (nd == cur
                    && parent[next.index()]
                        .map(|(p, _)| node < p)
                        .unwrap_or(false));
            if better {
                dist[next.index()] = nd;
                parent[next.index()] = Some((node, edge_id));
                heap.push(HeapEntry { dist: nd, node: next });
            }
        }
    }

    ShortestPaths { source, dist, parent }
}

/// Shortest paths using each edge kind's default routing weight
/// ([`wimnet_topology::EdgeKind::routing_weight`]).
pub fn shortest_paths_default(graph: &Graph, source: NodeId) -> ShortestPaths {
    shortest_paths(graph, source, &|_, e| e.kind.routing_weight())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimnet_topology::{EdgeKind, Node, NodeKind, Point};

    fn grid(rows: usize, cols: usize) -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let mut ids = Vec::new();
        for y in 0..rows {
            for x in 0..cols {
                ids.push(g.add_node(Node {
                    kind: NodeKind::Core { chip: 0, x, y },
                    position: Point::new(x as f64, y as f64),
                }));
            }
        }
        for y in 0..rows {
            for x in 0..cols {
                let i = y * cols + x;
                if x + 1 < cols {
                    g.add_edge(ids[i], ids[i + 1], EdgeKind::Mesh).unwrap();
                }
                if y + 1 < rows {
                    g.add_edge(ids[i], ids[i + cols], EdgeKind::Mesh).unwrap();
                }
            }
        }
        (g, ids)
    }

    #[test]
    fn distances_match_bfs_on_unit_weights() {
        let (g, ids) = grid(4, 4);
        let sp = shortest_paths(&g, ids[0], &|_, _| 1.0);
        let bfs = g.bfs_hops(ids[0]);
        for (i, &b) in bfs.iter().enumerate() {
            assert_eq!(sp.distance(NodeId(i)), b as f64);
        }
    }

    #[test]
    fn path_reconstruction_is_consistent() {
        let (g, ids) = grid(3, 3);
        let sp = shortest_paths(&g, ids[0], &|_, _| 1.0);
        let path = sp.path_to(ids[8]).unwrap();
        assert_eq!(path.first(), Some(&ids[0]));
        assert_eq!(path.last(), Some(&ids[8]));
        // Path length equals distance for unit weights.
        assert_eq!(path.len() as f64 - 1.0, sp.distance(ids[8]));
        // Consecutive nodes are adjacent.
        for w in path.windows(2) {
            assert!(g.neighbors(w[0]).iter().any(|&(m, _)| m == w[1]));
        }
    }

    #[test]
    fn source_has_zero_distance_and_no_parent() {
        let (g, ids) = grid(2, 2);
        let sp = shortest_paths_default(&g, ids[0]);
        assert_eq!(sp.distance(ids[0]), 0.0);
        assert_eq!(sp.parent(ids[0]), None);
        assert_eq!(sp.source(), ids[0]);
        assert_eq!(sp.path_to(ids[0]).unwrap(), vec![ids[0]]);
    }

    #[test]
    fn unreachable_nodes_have_infinite_distance() {
        let mut g = Graph::new();
        let a = g.add_node(Node {
            kind: NodeKind::Core { chip: 0, x: 0, y: 0 },
            position: Point::new(0.0, 0.0),
        });
        let b = g.add_node(Node {
            kind: NodeKind::Core { chip: 1, x: 0, y: 0 },
            position: Point::new(5.0, 0.0),
        });
        let sp = shortest_paths_default(&g, a);
        assert!(!sp.is_reachable(b));
        assert_eq!(sp.path_to(b), None);
    }

    #[test]
    fn weights_reroute_around_expensive_edges() {
        // Triangle a-b (cheap via c), direct a-b expensive.
        let mut g = Graph::new();
        let mk = |g: &mut Graph, x: usize| {
            g.add_node(Node {
                kind: NodeKind::Core { chip: 0, x, y: 0 },
                position: Point::new(x as f64, 0.0),
            })
        };
        let a = mk(&mut g, 0);
        let b = mk(&mut g, 1);
        let c = mk(&mut g, 2);
        let ab = g.add_edge(a, b, EdgeKind::SerialIo).unwrap();
        g.add_edge(a, c, EdgeKind::Mesh).unwrap();
        g.add_edge(c, b, EdgeKind::Mesh).unwrap();
        let sp = shortest_paths(&g, a, &|id, _| if id == ab { 10.0 } else { 1.0 });
        assert_eq!(sp.path_to(b).unwrap(), vec![a, c, b]);
        assert_eq!(sp.distance(b), 2.0);
    }

    #[test]
    fn tie_break_prefers_lower_index_parent() {
        // Diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, all unit weights.
        // Both parents give distance 2; parent of 3 must be node 1.
        let (g, ids) = grid(2, 2); // 0-1 / 0-2 / 1-3 / 2-3
        let sp = shortest_paths(&g, ids[0], &|_, _| 1.0);
        let (p, _) = sp.parent(ids[3]).unwrap();
        assert_eq!(p, ids[1]);
    }

    #[test]
    fn determinism_across_runs() {
        let (g, ids) = grid(5, 7);
        let a = shortest_paths_default(&g, ids[3]);
        let b = shortest_paths_default(&g, ids[3]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn negative_weight_panics() {
        let (g, ids) = grid(2, 2);
        shortest_paths(&g, ids[0], &|_, _| -1.0);
    }
}
