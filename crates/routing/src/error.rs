//! Error type for route computation.

use std::error::Error;
use std::fmt;

use wimnet_topology::NodeId;

/// Errors raised while computing routes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RoutingError {
    /// The topology graph has no nodes.
    EmptyGraph,
    /// Two nodes have no path between them under the chosen policy, so no
    /// complete forwarding table exists.
    Unreachable {
        /// Source switch.
        from: NodeId,
        /// Destination switch.
        to: NodeId,
    },
    /// An internal walk exceeded the node count — the forwarding tables
    /// contain a loop (this indicates a bug and is checked in tests).
    RoutingLoop {
        /// Source switch of the offending walk.
        from: NodeId,
        /// Destination switch of the offending walk.
        to: NodeId,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::EmptyGraph => write!(f, "topology graph has no nodes"),
            RoutingError::Unreachable { from, to } => {
                write!(f, "no route from {from} to {to}")
            }
            RoutingError::RoutingLoop { from, to } => {
                write!(f, "forwarding tables loop between {from} and {to}")
            }
        }
    }
}

impl Error for RoutingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RoutingError::Unreachable { from: NodeId(3), to: NodeId(9) };
        let s = format!("{e}");
        assert!(s.contains("n3") && s.contains("n9"));
    }

    #[test]
    fn implements_error() {
        fn is_error<E: Error>(_: &E) {}
        is_error(&RoutingError::EmptyGraph);
    }
}
