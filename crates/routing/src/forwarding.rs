//! Forwarding tables: the artefact the cycle-accurate switches consume.
//!
//! §III.C of the paper: "The route computation overheads are greatly
//! reduced as the routing decisions are made locally based on the
//! forwarding table only for determining the next hop and is done only
//! for the header flit."  [`Routes`] is exactly that: a per-switch,
//! per-destination next-hop table, precomputed once per topology.

use wimnet_topology::{Edge, EdgeId, Graph, NodeId};

use crate::dijkstra::shortest_paths;
use crate::error::RoutingError;
use crate::spt::ShortestPathTree;

/// How forwarding tables are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RoutingPolicy {
    /// All traffic follows a single shortest-path tree — the paper's
    /// literal deadlock-freedom argument.  `root: None` selects the
    /// minimum-eccentricity node automatically.
    Tree {
        /// Tree root; `None` picks the minimum-eccentricity node.
        root: Option<NodeId>,
    },
    /// Up*/down* routing w.r.t. a shortest-path tree: every link is
    /// usable but paths climb before they descend, keeping the channel
    /// dependency graph acyclic.  The crate default.
    UpDown {
        /// Tree root; `None` picks the minimum-eccentricity node.
        root: Option<NodeId>,
    },
    /// Unrestricted per-pair Dijkstra shortest paths.  Minimal distance,
    /// but deadlock freedom is topology-dependent (checked separately).
    ShortestPath,
}

impl RoutingPolicy {
    /// Tree routing with automatic root selection.
    pub fn tree() -> Self {
        RoutingPolicy::Tree { root: None }
    }

    /// Up*/down* routing with automatic root selection.
    pub fn up_down() -> Self {
        RoutingPolicy::UpDown { root: None }
    }

    /// Unrestricted shortest-path routing.
    pub fn shortest_path() -> Self {
        RoutingPolicy::ShortestPath
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RoutingPolicy::Tree { .. } => "tree",
            RoutingPolicy::UpDown { .. } => "up*/down*",
            RoutingPolicy::ShortestPath => "shortest-path",
        }
    }
}

impl Default for RoutingPolicy {
    /// Up*/down* with automatic root: deadlock-free on every topology
    /// while still using all links.
    fn default() -> Self {
        RoutingPolicy::up_down()
    }
}

impl std::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-switch, per-destination next-hop tables.
///
/// # Example
///
/// ```
/// use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout};
/// use wimnet_routing::{Routes, RoutingPolicy};
///
/// let layout = MultichipLayout::build(
///     &MultichipConfig::xcym(4, 4, Architecture::Interposer),
/// )?;
/// let routes = Routes::build(layout.graph(), RoutingPolicy::default())?;
/// let from = layout.core_nodes()[0];
/// let to = layout.memory_nodes()[3];
/// let path = routes.path(from, to)?;
/// assert_eq!(path.first(), Some(&from));
/// assert_eq!(path.last(), Some(&to));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Routes {
    policy: RoutingPolicy,
    root: Option<NodeId>,
    /// Number of nodes covered (the table is `n × n`).
    n: usize,
    /// Flattened `next_hop[at * n + dest]`, `None` on the diagonal.
    ///
    /// One contiguous allocation instead of `n` separate rows: the
    /// cycle engine reads this table once per routed head flit, and a
    /// flat layout keeps consecutive destinations of one switch on the
    /// same cache lines.
    next_hop: Box<[Option<(NodeId, EdgeId)>]>,
}

/// The minimum-eccentricity node (ties toward the lower id): a central
/// root makes tree-based policies both shorter and less congested.
pub fn auto_root(graph: &Graph) -> Option<NodeId> {
    let mut best: Option<(usize, NodeId)> = None;
    for id in graph.node_ids() {
        let ecc = graph
            .bfs_hops(id)
            .into_iter()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0);
        if best.map(|(e, _)| ecc < e).unwrap_or(true) {
            best = Some((ecc, id));
        }
    }
    best.map(|(_, id)| id)
}

impl Routes {
    /// Builds forwarding tables using each edge kind's default routing
    /// weight.
    ///
    /// # Errors
    ///
    /// [`RoutingError::EmptyGraph`] or [`RoutingError::Unreachable`] when
    /// no complete table exists.
    pub fn build(graph: &Graph, policy: RoutingPolicy) -> Result<Self, RoutingError> {
        Routes::build_with_weights(graph, policy, &|_, e| e.kind.routing_weight())
    }

    /// Builds forwarding tables with a custom edge weight function.
    ///
    /// # Errors
    ///
    /// [`RoutingError::EmptyGraph`] or [`RoutingError::Unreachable`] when
    /// no complete table exists.
    pub fn build_with_weights(
        graph: &Graph,
        policy: RoutingPolicy,
        weight: &dyn Fn(EdgeId, &Edge) -> f64,
    ) -> Result<Self, RoutingError> {
        if graph.node_count() == 0 {
            return Err(RoutingError::EmptyGraph);
        }
        match policy {
            RoutingPolicy::ShortestPath => Routes::build_shortest(graph, weight),
            RoutingPolicy::Tree { root } => {
                let root = root.or_else(|| auto_root(graph)).expect("non-empty graph");
                Routes::build_tree(graph, root, weight)
            }
            RoutingPolicy::UpDown { root } => {
                let root = root.or_else(|| auto_root(graph)).expect("non-empty graph");
                Routes::build_updown(graph, root, weight)
            }
        }
    }

    fn build_shortest(
        graph: &Graph,
        weight: &dyn Fn(EdgeId, &Edge) -> f64,
    ) -> Result<Self, RoutingError> {
        let n = graph.node_count();
        let mut next_hop = vec![None; n * n];
        for dest in graph.node_ids() {
            // The graph is undirected, so Dijkstra from `dest` yields the
            // distance *to* `dest`; each node's parent pointer is its
            // next hop toward `dest`.
            let sp = shortest_paths(graph, dest, weight);
            for at in graph.node_ids() {
                if at == dest {
                    continue;
                }
                let hop = sp
                    .parent(at)
                    .ok_or(RoutingError::Unreachable { from: at, to: dest })?;
                next_hop[at.index() * n + dest.index()] = Some(hop);
            }
        }
        Ok(Routes {
            policy: RoutingPolicy::ShortestPath,
            root: None,
            n,
            next_hop: next_hop.into_boxed_slice(),
        })
    }

    fn build_tree(
        graph: &Graph,
        root: NodeId,
        weight: &dyn Fn(EdgeId, &Edge) -> f64,
    ) -> Result<Self, RoutingError> {
        let tree = ShortestPathTree::build(graph, root, weight)?;
        let n = graph.node_count();
        let mut next_hop = vec![None; n * n];
        for at in graph.node_ids() {
            for dest in graph.node_ids() {
                if at == dest {
                    continue;
                }
                let hop = if tree.is_ancestor(at, dest) {
                    // Descend: the child of `at` on the path to `dest`.
                    let child = *tree
                        .children(at)
                        .iter()
                        .find(|&&c| tree.is_ancestor(c, dest))
                        .expect("descendant lies under exactly one child");
                    let (_, e) = tree.parent(child).expect("child has a parent edge");
                    (child, e)
                } else {
                    // Climb toward the LCA.
                    tree.parent(at).expect("non-ancestor has a parent")
                };
                next_hop[at.index() * n + dest.index()] = Some(hop);
            }
        }
        Ok(Routes {
            policy: RoutingPolicy::Tree { root: Some(root) },
            root: Some(root),
            n,
            next_hop: next_hop.into_boxed_slice(),
        })
    }

    /// Up*/down* construction.  An ordered traversal `a -> b` is "up"
    /// when `(level(b), b) < (level(a), a)` lexicographically; legal
    /// paths never take an up move after a down move.  Routing is
    /// "greedy-descent": a switch with a finite down-only distance to the
    /// destination always descends (optimally within down-only paths);
    /// otherwise it climbs via the up neighbour minimising the legal
    /// distance.  The resulting tables are destination-based, complete on
    /// connected graphs and deadlock-free (no down→up transition can ever
    /// occur, see the crate tests and `deadlock` module).
    fn build_updown(
        graph: &Graph,
        root: NodeId,
        weight: &dyn Fn(EdgeId, &Edge) -> f64,
    ) -> Result<Self, RoutingError> {
        let tree = ShortestPathTree::build(graph, root, weight)?;
        let n = graph.node_count();
        let key = |node: NodeId| (tree.level(node), node.index());
        let is_up = |from: NodeId, to: NodeId| key(to) < key(from);

        // Nodes in ascending key order: every up move goes to an
        // earlier node in this order, so one pass computes the DP below.
        let mut order: Vec<NodeId> = graph.node_ids().collect();
        order.sort_by_key(|&id| key(id));

        let mut next_hop = vec![None; n * n];
        for dest in graph.node_ids() {
            // dist1[n]: cheapest down-only path n -> dest.
            // Down moves strictly increase the key, so process nodes in
            // descending key order (dependencies point to later keys...
            // i.e. to already-processed larger keys).
            let mut dist1 = vec![f64::INFINITY; n];
            dist1[dest.index()] = 0.0;
            for &node in order.iter().rev() {
                if node == dest {
                    continue;
                }
                for &(next, e) in graph.neighbors(node) {
                    if is_up(node, next) {
                        continue; // down moves only
                    }
                    let edge = graph.edge(e).expect("edge exists");
                    let w = weight(e, edge);
                    let cand = w + dist1[next.index()];
                    if cand < dist1[node.index()] {
                        dist1[node.index()] = cand;
                    }
                }
            }
            // dist0[n]: cheapest legal (up* then down*) path n -> dest.
            // Up moves strictly decrease the key, so ascending order works.
            let mut dist0 = vec![f64::INFINITY; n];
            for &node in order.iter() {
                if node == dest {
                    dist0[node.index()] = 0.0;
                    continue;
                }
                let mut best = dist1[node.index()];
                for &(next, e) in graph.neighbors(node) {
                    if !is_up(node, next) {
                        continue;
                    }
                    let edge = graph.edge(e).expect("edge exists");
                    let w = weight(e, edge);
                    best = best.min(w + dist0[next.index()]);
                }
                dist0[node.index()] = best;
            }
            // Table entries.
            for at in graph.node_ids() {
                if at == dest {
                    continue;
                }
                let mut choice: Option<(f64, NodeId, EdgeId)> = None;
                if dist1[at.index()].is_finite() {
                    // Greedy descent: stay on down-only paths.
                    for &(next, e) in graph.neighbors(at) {
                        if is_up(at, next) {
                            continue;
                        }
                        let edge = graph.edge(e).expect("edge exists");
                        let cost = weight(e, edge) + dist1[next.index()];
                        if !cost.is_finite() {
                            continue;
                        }
                        let better = match choice {
                            None => true,
                            Some((c, b, _)) => {
                                cost < c - 1e-12
                                    || ((cost - c).abs() <= 1e-12 && next < b)
                            }
                        };
                        if better {
                            choice = Some((cost, next, e));
                        }
                    }
                } else {
                    // Must climb: best legal continuation among up moves.
                    for &(next, e) in graph.neighbors(at) {
                        if !is_up(at, next) {
                            continue;
                        }
                        let edge = graph.edge(e).expect("edge exists");
                        let cost = weight(e, edge) + dist0[next.index()];
                        if !cost.is_finite() {
                            continue;
                        }
                        let better = match choice {
                            None => true,
                            Some((c, b, _)) => {
                                cost < c - 1e-12
                                    || ((cost - c).abs() <= 1e-12 && next < b)
                            }
                        };
                        if better {
                            choice = Some((cost, next, e));
                        }
                    }
                }
                let (_, hop_node, hop_edge) =
                    choice.ok_or(RoutingError::Unreachable { from: at, to: dest })?;
                next_hop[at.index() * n + dest.index()] = Some((hop_node, hop_edge));
            }
        }
        Ok(Routes {
            policy: RoutingPolicy::UpDown { root: Some(root) },
            root: Some(root),
            n,
            next_hop: next_hop.into_boxed_slice(),
        })
    }

    /// The policy the tables were built with (roots resolved).
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// The tree root, for tree-based policies.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Number of switches covered by the tables.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Next hop from `at` toward `dest` (`None` when `at == dest`).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn next_hop(&self, at: NodeId, dest: NodeId) -> Option<(NodeId, EdgeId)> {
        self.next_hop[at.index() * self.n + dest.index()]
    }

    /// One switch's full row of the table: entry `dest` is the next hop
    /// from `at` toward `dest` (`None` on the diagonal).  Contiguous, so
    /// engines can copy it into their own flat lookup structures without
    /// per-destination calls.
    pub fn row(&self, at: NodeId) -> &[Option<(NodeId, EdgeId)>] {
        &self.next_hop[at.index() * self.n..(at.index() + 1) * self.n]
    }

    /// The full node path from `from` to `to` (inclusive).
    ///
    /// # Errors
    ///
    /// [`RoutingError::RoutingLoop`] if the walk exceeds the node count —
    /// which would indicate corrupt tables.
    pub fn path(&self, from: NodeId, to: NodeId) -> Result<Vec<NodeId>, RoutingError> {
        Ok(self.path_with_edges(from, to)?.0)
    }

    /// The node path and the edges traversed, in order.
    ///
    /// # Errors
    ///
    /// [`RoutingError::RoutingLoop`] if the walk exceeds the node count.
    pub fn path_with_edges(
        &self,
        from: NodeId,
        to: NodeId,
    ) -> Result<(Vec<NodeId>, Vec<EdgeId>), RoutingError> {
        let mut nodes = vec![from];
        let mut edges = Vec::new();
        let mut cur = from;
        while cur != to {
            let (next, edge) = self
                .next_hop(cur, to)
                .ok_or(RoutingError::Unreachable { from, to })?;
            nodes.push(next);
            edges.push(edge);
            cur = next;
            if nodes.len() > self.node_count() {
                return Err(RoutingError::RoutingLoop { from, to });
            }
        }
        Ok((nodes, edges))
    }

    /// Hop count from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Propagates [`Routes::path`] errors.
    pub fn hops(&self, from: NodeId, to: NodeId) -> Result<usize, RoutingError> {
        Ok(self.path(from, to)?.len() - 1)
    }

    /// Mean hop count over all ordered node pairs — the paper's "average
    /// distance" topology metric.
    ///
    /// # Errors
    ///
    /// Propagates [`Routes::path`] errors.
    pub fn average_hops(&self) -> Result<f64, RoutingError> {
        let n = self.node_count();
        if n < 2 {
            return Ok(0.0);
        }
        let mut total = 0usize;
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    total += self.hops(NodeId(s), NodeId(d))?;
                }
            }
        }
        Ok(total as f64 / (n * (n - 1)) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimnet_topology::{
        Architecture, EdgeKind, MultichipConfig, MultichipLayout, Node, NodeKind, Point,
    };

    fn grid(rows: usize, cols: usize) -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let mut ids = Vec::new();
        for y in 0..rows {
            for x in 0..cols {
                ids.push(g.add_node(Node {
                    kind: NodeKind::Core { chip: 0, x, y },
                    position: Point::new(x as f64, y as f64),
                }));
            }
        }
        for y in 0..rows {
            for x in 0..cols {
                let i = y * cols + x;
                if x + 1 < cols {
                    g.add_edge(ids[i], ids[i + 1], EdgeKind::Mesh).unwrap();
                }
                if y + 1 < rows {
                    g.add_edge(ids[i], ids[i + cols], EdgeKind::Mesh).unwrap();
                }
            }
        }
        (g, ids)
    }

    fn layouts() -> Vec<MultichipLayout> {
        Architecture::ALL
            .iter()
            .map(|&a| MultichipLayout::build(&MultichipConfig::xcym(4, 4, a)).unwrap())
            .collect()
    }

    fn all_pairs_complete(g: &Graph, r: &Routes) {
        for s in g.node_ids() {
            for d in g.node_ids() {
                if s == d {
                    assert_eq!(r.next_hop(s, d), None);
                } else {
                    let path = r.path(s, d).unwrap();
                    assert_eq!(*path.first().unwrap(), s);
                    assert_eq!(*path.last().unwrap(), d);
                    for w in path.windows(2) {
                        assert!(
                            g.neighbors(w[0]).iter().any(|&(m, _)| m == w[1]),
                            "path step must follow a graph edge"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shortest_path_tables_are_complete_and_minimal() {
        let (g, ids) = grid(4, 4);
        let r = Routes::build_with_weights(&g, RoutingPolicy::ShortestPath, &|_, _| 1.0)
            .unwrap();
        all_pairs_complete(&g, &r);
        // Unit weights: path length equals BFS distance.
        for s in g.node_ids() {
            let bfs = g.bfs_hops(s);
            for d in g.node_ids() {
                if s != d {
                    assert_eq!(r.hops(s, d).unwrap(), bfs[d.index()]);
                }
            }
        }
        let _ = ids;
    }

    #[test]
    fn tree_tables_are_complete_and_follow_tree_edges() {
        let (g, _) = grid(4, 4);
        let r = Routes::build(&g, RoutingPolicy::tree()).unwrap();
        all_pairs_complete(&g, &r);
        // Tree routing uses at most n-1 distinct edges.
        let mut used = std::collections::BTreeSet::new();
        for s in g.node_ids() {
            for d in g.node_ids() {
                if s != d {
                    let (_, edges) = r.path_with_edges(s, d).unwrap();
                    used.extend(edges);
                }
            }
        }
        assert!(used.len() < g.node_count());
    }

    #[test]
    fn updown_tables_are_complete_and_no_longer_than_tree() {
        let (g, _) = grid(4, 4);
        let ud = Routes::build(&g, RoutingPolicy::up_down()).unwrap();
        let tree = Routes::build(&g, RoutingPolicy::tree()).unwrap();
        all_pairs_complete(&g, &ud);
        // Up*/down* may use all links, so its average distance cannot be
        // worse than pure tree routing (same root selection).
        assert!(ud.average_hops().unwrap() <= tree.average_hops().unwrap() + 1e-9);
    }

    #[test]
    fn updown_paths_never_go_up_after_down() {
        let (g, _) = grid(5, 5);
        let root = auto_root(&g).unwrap();
        let ud = Routes::build(&g, RoutingPolicy::UpDown { root: Some(root) }).unwrap();
        let tree = ShortestPathTree::build_default(&g, root).unwrap();
        let key = |n: NodeId| (tree.level(n), n.index());
        for s in g.node_ids() {
            for d in g.node_ids() {
                if s == d {
                    continue;
                }
                let path = ud.path(s, d).unwrap();
                let mut gone_down = false;
                for w in path.windows(2) {
                    let up = key(w[1]) < key(w[0]);
                    if up {
                        assert!(
                            !gone_down,
                            "up move after down move on path {path:?} (root {root})"
                        );
                    } else {
                        gone_down = true;
                    }
                }
            }
        }
    }

    #[test]
    fn all_policies_cover_all_multichip_architectures() {
        for layout in layouts() {
            for policy in [
                RoutingPolicy::tree(),
                RoutingPolicy::up_down(),
                RoutingPolicy::shortest_path(),
            ] {
                let r = Routes::build(layout.graph(), policy).unwrap();
                all_pairs_complete(layout.graph(), &r);
            }
        }
    }

    #[test]
    fn wireless_layout_routes_interchip_over_radio() {
        let layout =
            MultichipLayout::build(&MultichipConfig::xcym(4, 4, Architecture::Wireless))
                .unwrap();
        let r = Routes::build(layout.graph(), RoutingPolicy::default()).unwrap();
        // Chip 0 core to chip 3 core must cross a wireless edge: there is
        // no wired path between chips in the wireless architecture.
        let s = layout.core_nodes()[0];
        let d = layout.core_nodes()[63];
        let (_, edges) = r.path_with_edges(s, d).unwrap();
        assert!(edges
            .iter()
            .any(|&e| layout.graph().edge(e).unwrap().kind == EdgeKind::Wireless));
    }

    #[test]
    fn auto_root_picks_a_centre() {
        let (g, ids) = grid(3, 3);
        // Centre of a 3x3 grid has eccentricity 2; corners have 4.
        assert_eq!(auto_root(&g), Some(ids[4]));
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = Graph::new();
        assert_eq!(
            Routes::build(&g, RoutingPolicy::default()).err(),
            Some(RoutingError::EmptyGraph)
        );
    }

    #[test]
    fn disconnected_graph_is_unreachable() {
        let mut g = Graph::new();
        for i in 0..2 {
            g.add_node(Node {
                kind: NodeKind::Core { chip: i, x: 0, y: 0 },
                position: Point::new(i as f64 * 9.0, 0.0),
            });
        }
        for policy in [
            RoutingPolicy::tree(),
            RoutingPolicy::up_down(),
            RoutingPolicy::shortest_path(),
        ] {
            assert!(matches!(
                Routes::build(&g, policy),
                Err(RoutingError::Unreachable { .. })
            ));
        }
    }

    #[test]
    fn default_policy_is_updown_auto() {
        assert_eq!(RoutingPolicy::default(), RoutingPolicy::UpDown { root: None });
        assert_eq!(RoutingPolicy::default().label(), "up*/down*");
    }

    #[test]
    fn deterministic_tables() {
        let (g, _) = grid(4, 5);
        for policy in [
            RoutingPolicy::tree(),
            RoutingPolicy::up_down(),
            RoutingPolicy::shortest_path(),
        ] {
            let a = Routes::build(&g, policy).unwrap();
            let b = Routes::build(&g, policy).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn average_hops_of_single_node_is_zero() {
        let mut g = Graph::new();
        g.add_node(Node {
            kind: NodeKind::Core { chip: 0, x: 0, y: 0 },
            position: Point::new(0.0, 0.0),
        });
        let r = Routes::build(&g, RoutingPolicy::shortest_path()).unwrap();
        assert_eq!(r.average_hops().unwrap(), 0.0);
    }
}
