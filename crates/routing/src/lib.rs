//! Route computation for `wimnet` multichip systems.
//!
//! The paper (§III.C) uses *forwarding-table based routing over
//! pre-computed shortest paths determined by Dijkstra's algorithm* and
//! argues deadlock freedom from routing along a shortest-path tree.  This
//! crate implements that scheme, plus two related policies used for the
//! ablation studies, all producing the same artefact: a set of per-switch
//! forwarding tables ([`Routes`]) consumed by the cycle-accurate engine.
//!
//! * [`RoutingPolicy::Tree`] — the paper's literal description: all
//!   traffic follows a single shortest-path tree (trivially cycle-free,
//!   but leaves non-tree links unused).
//! * [`RoutingPolicy::UpDown`] — the standard formalisation of tree-based
//!   deadlock freedom: every link may be used, but paths must climb
//!   ("up") before they descend ("down") with respect to a root,
//!   guaranteeing a cycle-free channel dependency graph. **Default.**
//! * [`RoutingPolicy::ShortestPath`] — unrestricted per-pair Dijkstra
//!   shortest paths; minimal latency but *not* guaranteed deadlock-free
//!   (verified per-topology with [`deadlock::find_cycle`]).
//!
//! # Example
//!
//! ```
//! use wimnet_topology::{Architecture, MultichipConfig, MultichipLayout};
//! use wimnet_routing::{deadlock, Routes, RoutingPolicy};
//!
//! let layout = MultichipLayout::build(
//!     &MultichipConfig::xcym(4, 4, Architecture::Wireless),
//! )?;
//! let routes = Routes::build(layout.graph(), RoutingPolicy::up_down())?;
//! // Up*/down* routing is deadlock-free on every topology.
//! assert!(deadlock::find_cycle(layout.graph(), &routes).is_none());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadlock;
pub mod dijkstra;
pub mod error;
pub mod forwarding;
pub mod spt;

pub use dijkstra::{shortest_paths, ShortestPaths};
pub use error::RoutingError;
pub use forwarding::{Routes, RoutingPolicy};
pub use spt::ShortestPathTree;
