//! Shortest-path trees: the paper's deadlock-freedom device.
//!
//! §III.C: "Dijkstra's algorithm extracts a [shortest-path tree] which
//! provides the shortest path between any pair of nodes in a graph. …
//! deadlock is avoided by transferring flits along the shortest path
//! routing tree … as it is inherently free of cyclic dependencies."
//!
//! [`ShortestPathTree`] materialises that tree: parent pointers from a
//! rooted Dijkstra run, children lists, levels and Euler-tour intervals
//! for O(1) ancestor tests.  Both the [`crate::RoutingPolicy::Tree`] and
//! [`crate::RoutingPolicy::UpDown`] policies are built on it.

use wimnet_topology::{Edge, EdgeId, Graph, NodeId};

use crate::dijkstra::shortest_paths;
use crate::error::RoutingError;

/// A rooted shortest-path tree over the topology graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPathTree {
    root: NodeId,
    parent: Vec<Option<(NodeId, EdgeId)>>,
    children: Vec<Vec<NodeId>>,
    level: Vec<usize>,
    tin: Vec<usize>,
    tout: Vec<usize>,
    tree_edges: Vec<bool>,
}

impl ShortestPathTree {
    /// Builds the shortest-path tree rooted at `root` using `weight`.
    ///
    /// # Errors
    ///
    /// * [`RoutingError::EmptyGraph`] for an empty graph.
    /// * [`RoutingError::Unreachable`] if any node cannot be reached from
    ///   `root` — a spanning tree must span.
    pub fn build(
        graph: &Graph,
        root: NodeId,
        weight: &dyn Fn(EdgeId, &Edge) -> f64,
    ) -> Result<Self, RoutingError> {
        if graph.node_count() == 0 {
            return Err(RoutingError::EmptyGraph);
        }
        let sp = shortest_paths(graph, root, weight);
        let n = graph.node_count();
        let mut parent = vec![None; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut tree_edges = vec![false; graph.edge_count()];
        for id in graph.node_ids() {
            if id == root {
                continue;
            }
            let (p, e) = sp
                .parent(id)
                .ok_or(RoutingError::Unreachable { from: root, to: id })?;
            parent[id.index()] = Some((p, e));
            children[p.index()].push(id);
            tree_edges[e.index()] = true;
        }
        // Children are pushed in node-id order (node_ids is ordered), so
        // the Euler tour below is deterministic.
        let mut level = vec![0usize; n];
        let mut tin = vec![0usize; n];
        let mut tout = vec![0usize; n];
        let mut timer = 0usize;
        // Iterative DFS with explicit enter/exit events.
        let mut stack = vec![(root, false)];
        while let Some((node, exiting)) = stack.pop() {
            if exiting {
                tout[node.index()] = timer;
                timer += 1;
                continue;
            }
            tin[node.index()] = timer;
            timer += 1;
            stack.push((node, true));
            for &c in children[node.index()].iter().rev() {
                level[c.index()] = level[node.index()] + 1;
                stack.push((c, false));
            }
        }
        Ok(ShortestPathTree {
            root,
            parent,
            children,
            level,
            tin,
            tout,
            tree_edges,
        })
    }

    /// Builds the tree with default edge-kind weights.
    pub fn build_default(graph: &Graph, root: NodeId) -> Result<Self, RoutingError> {
        ShortestPathTree::build(graph, root, &|_, e| e.kind.routing_weight())
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `node` with the connecting edge (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<(NodeId, EdgeId)> {
        self.parent[node.index()]
    }

    /// Children of `node` in ascending id order.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Depth of `node` below the root.
    pub fn level(&self, node: NodeId) -> usize {
        self.level[node.index()]
    }

    /// `true` if `ancestor` is `node` or an ancestor of `node`.
    pub fn is_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        self.tin[ancestor.index()] <= self.tin[node.index()]
            && self.tout[node.index()] <= self.tout[ancestor.index()]
    }

    /// `true` if `edge` belongs to the tree.
    pub fn is_tree_edge(&self, edge: EdgeId) -> bool {
        self.tree_edges[edge.index()]
    }

    /// The tree path from `from` to `to`: climbs to the lowest common
    /// ancestor, then descends.
    pub fn tree_path(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let mut up = vec![from];
        let mut a = from;
        while !self.is_ancestor(a, to) {
            let (p, _) = self.parent(a).expect("non-ancestor has a parent");
            up.push(p);
            a = p;
        }
        // `a` is now the LCA; collect the downward side.
        let mut down = Vec::new();
        let mut b = to;
        while b != a {
            down.push(b);
            let (p, _) = self.parent(b).expect("node below LCA has a parent");
            b = p;
        }
        up.extend(down.into_iter().rev());
        up
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let mut x = a;
        while !self.is_ancestor(x, b) {
            x = self.parent(x).expect("non-ancestor has a parent").0;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimnet_topology::{EdgeKind, Node, NodeKind, Point};

    fn grid(rows: usize, cols: usize) -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let mut ids = Vec::new();
        for y in 0..rows {
            for x in 0..cols {
                ids.push(g.add_node(Node {
                    kind: NodeKind::Core { chip: 0, x, y },
                    position: Point::new(x as f64, y as f64),
                }));
            }
        }
        for y in 0..rows {
            for x in 0..cols {
                let i = y * cols + x;
                if x + 1 < cols {
                    g.add_edge(ids[i], ids[i + 1], EdgeKind::Mesh).unwrap();
                }
                if y + 1 < rows {
                    g.add_edge(ids[i], ids[i + cols], EdgeKind::Mesh).unwrap();
                }
            }
        }
        (g, ids)
    }

    #[test]
    fn tree_spans_all_nodes_with_n_minus_1_edges() {
        let (g, ids) = grid(4, 4);
        let t = ShortestPathTree::build_default(&g, ids[0]).unwrap();
        let tree_edge_count = (0..g.edge_count())
            .filter(|&i| t.is_tree_edge(wimnet_topology::EdgeId(i)))
            .count();
        assert_eq!(tree_edge_count, g.node_count() - 1);
        // Every non-root node has a parent.
        for id in g.node_ids() {
            if id != t.root() {
                assert!(t.parent(id).is_some());
            }
        }
    }

    #[test]
    fn levels_match_unit_distance_from_root() {
        let (g, ids) = grid(3, 3);
        let t = ShortestPathTree::build(&g, ids[0], &|_, _| 1.0).unwrap();
        let bfs = g.bfs_hops(ids[0]);
        for id in g.node_ids() {
            assert_eq!(t.level(id), bfs[id.index()]);
        }
    }

    #[test]
    fn ancestor_queries() {
        let (g, ids) = grid(3, 3);
        let t = ShortestPathTree::build(&g, ids[0], &|_, _| 1.0).unwrap();
        assert!(t.is_ancestor(ids[0], ids[8]));
        assert!(t.is_ancestor(ids[4], ids[4]));
        assert!(!t.is_ancestor(ids[8], ids[0]));
        assert_eq!(t.lca(ids[0], ids[5]), ids[0]);
        // Siblings' LCA is their shared parent side; at least it is a
        // proper ancestor of both.
        let l = t.lca(ids[2], ids[6]);
        assert!(t.is_ancestor(l, ids[2]) && t.is_ancestor(l, ids[6]));
    }

    #[test]
    fn tree_path_endpoints_and_adjacency() {
        let (g, ids) = grid(4, 4);
        let t = ShortestPathTree::build_default(&g, ids[5]).unwrap();
        for &from in &[ids[0], ids[3], ids[15]] {
            for &to in &[ids[0], ids[12], ids[10]] {
                let p = t.tree_path(from, to);
                assert_eq!(p.first(), Some(&from));
                assert_eq!(p.last(), Some(&to));
                for w in p.windows(2) {
                    assert!(
                        g.neighbors(w[0]).iter().any(|&(m, _)| m == w[1]),
                        "tree path steps must be graph edges"
                    );
                }
                // No repeated nodes: tree paths are simple.
                let mut sorted = p.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), p.len());
            }
        }
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let mut g = Graph::new();
        let a = g.add_node(Node {
            kind: NodeKind::Core { chip: 0, x: 0, y: 0 },
            position: Point::new(0.0, 0.0),
        });
        g.add_node(Node {
            kind: NodeKind::Core { chip: 1, x: 0, y: 0 },
            position: Point::new(9.0, 0.0),
        });
        let err = ShortestPathTree::build_default(&g, a).unwrap_err();
        assert!(matches!(err, RoutingError::Unreachable { .. }));
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = Graph::new();
        assert_eq!(
            ShortestPathTree::build_default(&g, NodeId(0)).err(),
            Some(RoutingError::EmptyGraph)
        );
    }

    #[test]
    fn deterministic_construction() {
        let (g, ids) = grid(5, 5);
        let a = ShortestPathTree::build_default(&g, ids[7]).unwrap();
        let b = ShortestPathTree::build_default(&g, ids[7]).unwrap();
        assert_eq!(a, b);
    }
}
