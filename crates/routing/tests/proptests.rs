//! Property-based tests for route computation: random weighted graphs,
//! with BFS/Dijkstra oracles.

use proptest::prelude::*;

use wimnet_routing::{deadlock, shortest_paths, Routes, RoutingPolicy, ShortestPathTree};
use wimnet_topology::{EdgeKind, Graph, Node, NodeId, NodeKind, Point};

/// A random connected graph: a spanning path plus random extra edges.
fn random_graph(nodes: usize, extra_edges: &[(usize, usize)]) -> Graph {
    let mut g = Graph::new();
    let ids: Vec<NodeId> = (0..nodes)
        .map(|i| {
            g.add_node(Node {
                kind: NodeKind::Core { chip: 0, x: i, y: 0 },
                position: Point::new(i as f64, (i * 7 % 5) as f64),
            })
        })
        .collect();
    for w in ids.windows(2) {
        g.add_edge(w[0], w[1], EdgeKind::Mesh).unwrap();
    }
    for &(a, b) in extra_edges {
        let (a, b) = (a % nodes, b % nodes);
        if a != b {
            g.add_edge(ids[a], ids[b], EdgeKind::Mesh).unwrap();
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Unit-weight Dijkstra distances equal BFS hop counts.
    #[test]
    fn dijkstra_matches_bfs_on_unit_weights(
        nodes in 2usize..24,
        extra in prop::collection::vec((0usize..24, 0usize..24), 0..20),
        src in 0usize..24,
    ) {
        let g = random_graph(nodes, &extra);
        let src = NodeId(src % nodes);
        let sp = shortest_paths(&g, src, &|_, _| 1.0);
        let bfs = g.bfs_hops(src);
        for (i, &hops) in bfs.iter().enumerate().take(nodes) {
            prop_assert_eq!(sp.distance(NodeId(i)), hops as f64);
        }
    }

    /// Every policy produces complete, simple (loop-free) paths whose
    /// first/last nodes are the endpoints.
    #[test]
    fn forwarding_paths_are_complete_and_simple(
        nodes in 2usize..16,
        extra in prop::collection::vec((0usize..16, 0usize..16), 0..12),
        policy_idx in 0usize..3,
    ) {
        let g = random_graph(nodes, &extra);
        let policy = [
            RoutingPolicy::tree(),
            RoutingPolicy::up_down(),
            RoutingPolicy::shortest_path(),
        ][policy_idx];
        let routes = Routes::build(&g, policy).unwrap();
        for s in 0..nodes {
            for d in 0..nodes {
                if s == d { continue; }
                let path = routes.path(NodeId(s), NodeId(d)).unwrap();
                prop_assert_eq!(*path.first().unwrap(), NodeId(s));
                prop_assert_eq!(*path.last().unwrap(), NodeId(d));
                let mut sorted: Vec<_> = path.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), path.len(), "loop in path {:?}", path);
            }
        }
    }

    /// Tree and up*/down* are deadlock-free on every random graph.
    #[test]
    fn tree_and_updown_cdgs_are_acyclic(
        nodes in 2usize..14,
        extra in prop::collection::vec((0usize..14, 0usize..14), 0..14),
        tree in any::<bool>(),
    ) {
        let g = random_graph(nodes, &extra);
        let policy = if tree { RoutingPolicy::tree() } else { RoutingPolicy::up_down() };
        let routes = Routes::build(&g, policy).unwrap();
        prop_assert!(deadlock::find_cycle(&g, &routes).is_none());
    }

    /// Shortest-path routing is never longer than up*/down*, which is
    /// never longer than tree routing (same auto root), on average.
    #[test]
    fn policy_distance_ordering(
        nodes in 3usize..14,
        extra in prop::collection::vec((0usize..14, 0usize..14), 0..14),
    ) {
        let g = random_graph(nodes, &extra);
        let avg = |p| Routes::build(&g, p).unwrap().average_hops().unwrap();
        let sp = avg(RoutingPolicy::shortest_path());
        let ud = avg(RoutingPolicy::up_down());
        let tr = avg(RoutingPolicy::tree());
        prop_assert!(sp <= ud + 1e-9, "shortest {sp} > updown {ud}");
        prop_assert!(ud <= tr + 1e-9, "updown {ud} > tree {tr}");
    }

    /// Up*/down* paths never take an up move after a down move, for any
    /// random root.
    #[test]
    fn updown_legality_random_roots(
        nodes in 2usize..14,
        extra in prop::collection::vec((0usize..14, 0usize..14), 0..10),
        root in 0usize..14,
    ) {
        let g = random_graph(nodes, &extra);
        let root = NodeId(root % nodes);
        let routes = Routes::build(&g, RoutingPolicy::UpDown { root: Some(root) }).unwrap();
        let tree = ShortestPathTree::build_default(&g, root).unwrap();
        let key = |n: NodeId| (tree.level(n), n.index());
        for s in 0..nodes {
            for d in 0..nodes {
                if s == d { continue; }
                let path = routes.path(NodeId(s), NodeId(d)).unwrap();
                let mut descended = false;
                for w in path.windows(2) {
                    let up = key(w[1]) < key(w[0]);
                    if up {
                        prop_assert!(!descended, "up after down: {:?}", path);
                    } else {
                        descended = true;
                    }
                }
            }
        }
    }

    /// Tree routing uses only tree edges.
    #[test]
    fn tree_routing_stays_on_the_tree(
        nodes in 2usize..14,
        extra in prop::collection::vec((0usize..14, 0usize..14), 0..10),
    ) {
        let g = random_graph(nodes, &extra);
        let routes = Routes::build(&g, RoutingPolicy::tree()).unwrap();
        let root = routes.root().unwrap();
        let tree = ShortestPathTree::build_default(&g, root).unwrap();
        for s in 0..nodes {
            for d in 0..nodes {
                if s == d { continue; }
                let (_, edges) = routes.path_with_edges(NodeId(s), NodeId(d)).unwrap();
                for e in edges {
                    prop_assert!(tree.is_tree_edge(e), "non-tree edge used");
                }
            }
        }
    }
}
