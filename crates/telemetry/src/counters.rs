//! Per-component counters and the live network sink.
//!
//! Every counter here is written by an engine hook of the shape
//! `if let Some(t) = &mut self.telemetry { … }` — the disabled path is
//! one branch on `None`, and the enabled path only reads decision
//! state that the engine computed anyway (link quiescence, ST winners,
//! buffered-flit totals) and increments sink-local integers.  Nothing
//! in this module can reach an RNG, a meter, or an allocator on the
//! hot path after warm-up (the vectors are pre-sized at enable time;
//! trace buffers grow, but only when tracing was requested).

use serde::{Deserialize, Serialize};

use crate::series::TimeSeries;

/// One physical link's activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkCounters {
    /// Flits sent onto the link.
    pub flits: u64,
    /// Cycles the link was active (pipeline non-empty or credits
    /// outstanding).  Idle fast-forward only skips cycles where every
    /// link is quiescent, so this count is exact whether or not the
    /// run jumped.
    pub busy_cycles: u64,
    /// Busy cycles that delivered nothing while the link's credit
    /// window was exhausted — downstream backpressure.
    pub credit_stalls: u64,
}

/// One switch's allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchCounters {
    /// ST-stage grants won (one per flit movement).
    pub grants: u64,
    /// Cycles the switch held at least one buffered flit.
    pub active_cycles: u64,
    /// Sum of buffered flits over active cycles — divide by
    /// `active_cycles` for mean VC occupancy while loaded.
    pub occupancy_integral: u64,
}

/// One MAC/medium's arbitration counters, mapped from the per-MAC
/// statistics each implementation already keeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacCounters {
    /// Completed transmission turns (token holds that sent data).
    pub turns: u64,
    /// Turns declined or passed without transmitting.
    pub passes: u64,
    /// Control flits exchanged (token passes, control packets).
    pub control_flits: u64,
    /// Data flits crossing the medium.
    pub data_flits: u64,
    /// Collisions/retransmissions observed.
    pub collisions: u64,
}

/// One memory stack's controller counters (harvested from the
/// controller statistics at collection time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StackCounters {
    /// Requests the controller completed.
    pub requests: u64,
    /// Sum of queued requests over cycles — divide by the run length
    /// for mean queue depth (the controller's own integral, replayed
    /// in closed form across fast-forwarded spans).
    pub queue_depth_integral: u64,
    /// Mean queue depth over the run.
    pub mean_queue_depth: f64,
}

/// A head flit crossing one switch — the raw material of the
/// Chrome-trace per-hop spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopRecord {
    /// Packet id.
    pub packet: u64,
    /// Switch the head flit won ST at.
    pub node: u64,
    /// Cycle of the ST grant.
    pub cycle: u64,
}

/// One MAC transmission turn (token hold, control-arbitration win, or
/// parallel-channel grant) as a closed interval of cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TurnRecord {
    /// Radio (= MAC sequence position) holding the turn.
    pub radio: u64,
    /// First cycle of the turn.
    pub start: u64,
    /// Exclusive end cycle.
    pub end: u64,
    /// Data flits moved during the turn.
    pub flits: u64,
}

/// Raw trace material: hop waypoints plus packet terminals.  Only
/// allocated when tracing was requested; the exporter in
/// [`crate::trace`] turns it into Chrome-trace events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBuffer {
    /// Head-flit ST waypoints in grant order.
    pub hops: Vec<HopRecord>,
    /// Completed packets as `(packet, src, dest, created_at, arrived_at)`.
    pub packets: Vec<(u64, u64, u64, u64, u64)>,
    /// MAC turn intervals drained from the media.
    pub turns: Vec<TurnRecord>,
}

/// The live sink a network owns behind an `Option`: per-component
/// counters sized at enable time, the fast-forward-aware time series,
/// and (when tracing) the raw trace buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkTelemetry {
    /// Indexed by dense link id.
    pub links: Vec<LinkCounters>,
    /// Indexed by switch index.
    pub switches: Vec<SwitchCounters>,
    /// Cycle-bucketed deliveries/occupancy.
    pub series: TimeSeries,
    /// Hop/turn recording, when tracing was requested.
    pub trace: Option<TraceBuffer>,
}

impl NetworkTelemetry {
    /// A sink for a network of `links` links and `switches` switches,
    /// sampling every `interval` cycles; `trace` additionally records
    /// hop waypoints and MAC turns.
    pub fn new(links: usize, switches: usize, interval: u64, trace: bool) -> Self {
        NetworkTelemetry {
            links: vec![LinkCounters::default(); links],
            switches: vec![SwitchCounters::default(); switches],
            series: TimeSeries::new(interval),
            trace: trace.then(TraceBuffer::default),
        }
    }

    /// Records a head-flit hop if tracing is on (no-op otherwise).
    #[inline]
    pub fn record_hop(&mut self, packet: u64, node: u64, cycle: u64) {
        if let Some(tb) = &mut self.trace {
            tb.hops.push(HopRecord { packet, node, cycle });
        }
    }

    /// Records a completed packet's terminals if tracing is on.
    #[inline]
    pub fn record_packet(&mut self, packet: u64, src: u64, dest: u64, created: u64, arrived: u64) {
        if let Some(tb) = &mut self.trace {
            tb.packets.push((packet, src, dest, created, arrived));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_sizes_components_at_enable_time() {
        let t = NetworkTelemetry::new(12, 5, 64, false);
        assert_eq!(t.links.len(), 12);
        assert_eq!(t.switches.len(), 5);
        assert!(t.trace.is_none());
        assert_eq!(t.series.interval(), 64);
    }

    #[test]
    fn hop_recording_is_gated_on_trace() {
        let mut off = NetworkTelemetry::new(1, 1, 64, false);
        off.record_hop(1, 2, 3);
        off.record_packet(1, 0, 2, 0, 9);
        assert!(off.trace.is_none());
        let mut on = NetworkTelemetry::new(1, 1, 64, true);
        on.record_hop(1, 2, 3);
        on.record_packet(1, 0, 2, 0, 9);
        let tb = on.trace.as_ref().unwrap();
        assert_eq!(tb.hops, vec![HopRecord { packet: 1, node: 2, cycle: 3 }]);
        assert_eq!(tb.packets, vec![(1, 0, 2, 0, 9)]);
    }
}
