//! Mergeable log-linear histogram with rank-exact percentiles.
//!
//! Layout: values below [`LINEAR_CUTOFF`] get one bucket each (exact);
//! above, each power-of-two octave is split into 64 linear sub-buckets,
//! so a bucket at value `v` spans at most `v/64` — every percentile
//! read-out is exact below 128 and within 1/64 (≈1.6%) relative error
//! above, a sharp improvement over the old 21-bucket log₂ histogram
//! whose p99 could only name a power-of-two upper bound.
//!
//! Merging is plain counter addition, so sharded runs combine into the
//! exact single-run histogram (property-tested in
//! `tests/determinism.rs`).

use serde::{Deserialize, Error, Serialize, Value};

/// Values below this get exact (width-1) buckets.  The first octave of
/// the log-linear region ([64, 128)) also has width-1 sub-buckets, so
/// exactness actually holds below 128.
const LINEAR_CUTOFF: u64 = 64;

/// Sub-buckets per octave above the linear region.
const SUBS: u64 = 64;

/// Mergeable log-linear histogram over `u64` samples (latencies in
/// cycles, queue depths, …).  Tracks count/sum/min/max exactly; the
/// bucket array grows on demand and, by construction, never ends in a
/// zero (so structural equality is semantic equality).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

/// Dense index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let e = 63 - v.leading_zeros() as u64; // 2^e <= v < 2^(e+1), e >= 6
        let major = e - 6;
        let sub = (v >> major) & (SUBS - 1);
        (LINEAR_CUTOFF + major * SUBS + sub) as usize
    }
}

/// Inclusive upper bound of bucket `i` (its lower bound plus width - 1).
fn bucket_high(i: usize) -> u64 {
    let i = i as u64;
    if i < 2 * LINEAR_CUTOFF {
        // Width-1 region: exact buckets below 64 plus the [64,128) octave.
        i
    } else {
        let major = (i - LINEAR_CUTOFF) / SUBS;
        let sub = (i - LINEAR_CUTOFF) % SUBS;
        ((LINEAR_CUTOFF + sub + 1) << major) - 1
    }
}

impl LogHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples in O(1) — the closed form batched
    /// paths use when a whole idle span contributes one repeated value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = bucket_index(v);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += n;
        // Saturating: the sum only feeds the mean, and real latencies
        // never approach the limb; percentiles come from the buckets.
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
    }

    /// Adds every sample of `other` into `self`.  Merging shard
    /// histograms this way yields exactly the single-run histogram:
    /// buckets, count, sum, min and max are all plain monoid folds.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`None` while empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` while empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded samples (`None` while empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The value at quantile `q` by rank: the smallest bucket whose
    /// cumulative count reaches `ceil(q · count)`, read out at its
    /// inclusive upper bound clamped to the observed maximum.  Exact
    /// for values below 128 (width-1 buckets); within 1/64 relative
    /// error above.  `None` while empty.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < q <= 1.0`.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        assert!(q > 0.0 && q <= 1.0, "quantile {q} outside (0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_high(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(inclusive_upper_bound, count)` pairs in
    /// ascending value order — the report/export surface.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_high(i), n))
    }
}

// The bucket array is sparse in practice (a run's latencies cluster in
// a few octaves), so it serializes as `(index, count)` pairs rather
// than the dense vector; everything else is plain fields.  Hand-written
// because the derive shim has no `with`-style escape hatch.
impl Serialize for LogHistogram {
    fn to_value(&self) -> Value {
        let sparse: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| Value::Seq(vec![Value::UInt(i as u64), Value::UInt(n)]))
            .collect();
        Value::Map(vec![
            ("count".into(), Value::UInt(self.count)),
            ("sum".into(), Value::UInt(self.sum)),
            ("min".into(), Value::UInt(if self.count > 0 { self.min } else { 0 })),
            ("max".into(), Value::UInt(if self.count > 0 { self.max } else { 0 })),
            ("buckets".into(), Value::Seq(sparse)),
        ])
    }
}

impl Deserialize for LogHistogram {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |k: &str| -> Result<u64, Error> {
            u64::from_value(v.get(k).ok_or_else(|| Error::msg(format!("histogram missing {k}")))?)
        };
        let count = field("count")?;
        let sum = field("sum")?;
        let min = field("min")?;
        let max = field("max")?;
        let Some(Value::Seq(pairs)) = v.get("buckets") else {
            return Err(Error::msg("histogram missing buckets"));
        };
        let mut buckets = Vec::new();
        let mut total = 0u64;
        for p in pairs {
            let Value::Seq(pair) = p else {
                return Err(Error::msg("histogram bucket is not a pair"));
            };
            if pair.len() != 2 {
                return Err(Error::msg("histogram bucket is not a pair"));
            }
            let idx = u64::from_value(&pair[0])? as usize;
            let n = u64::from_value(&pair[1])?;
            if n == 0 {
                return Err(Error::msg("histogram bucket with zero count"));
            }
            if idx >= buckets.len() {
                buckets.resize(idx + 1, 0);
            }
            buckets[idx] += n;
            total += n;
        }
        if total != count {
            return Err(Error::msg("histogram bucket counts disagree with count"));
        }
        Ok(LogHistogram { count, sum, min, max, buckets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(0.99), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn exact_below_128() {
        // Every value below 128 occupies its own bucket: all
        // percentiles are rank-exact values, not bounds.
        let mut h = LogHistogram::new();
        for v in 0..128u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(1.0 / 128.0), Some(0));
        assert_eq!(h.percentile(0.5), Some(63));
        assert_eq!(h.percentile(1.0), Some(127));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(127));
    }

    #[test]
    fn relative_error_bounded_above_128() {
        for &v in &[129u64, 1000, 4096, 65_537, 1 << 30, u64::MAX / 2] {
            let mut h = LogHistogram::new();
            h.record(v);
            h.record(v * 2);
            let p50 = h.percentile(0.5).unwrap();
            assert!(p50 >= v, "p50 {p50} under-reports {v}");
            assert!(
                (p50 - v) as f64 <= v as f64 / 64.0,
                "p50 {p50} off {v} by more than 1/64"
            );
        }
    }

    #[test]
    fn percentile_clamps_to_observed_max() {
        let mut h = LogHistogram::new();
        for _ in 0..9 {
            h.record(10);
        }
        h.record(900);
        assert_eq!(h.percentile(0.5), Some(10), "rank-exact below 128");
        assert_eq!(h.percentile(0.9), Some(10));
        assert_eq!(h.percentile(1.0), Some(900), "top clamps to max");
    }

    #[test]
    fn record_n_equals_n_records() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(77, 5);
        a.record_n(3000, 2);
        for _ in 0..5 {
            b.record(77);
        }
        b.record(3000);
        b.record(3000);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_equals_single_run() {
        let samples = [1u64, 5, 63, 64, 127, 128, 129, 511, 512, 10_000, 10_001];
        let mut whole = LogHistogram::new();
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            if i % 2 == 0 {
                left.record(s);
            } else {
                right.record(s);
            }
        }
        let mut merged = LogHistogram::new();
        merged.merge(&left);
        merged.merge(&right);
        assert_eq!(merged, whole);
        assert_eq!(merged.percentile(0.99), whole.percentile(0.99));
        // Merging an empty histogram is the identity.
        merged.merge(&LogHistogram::new());
        assert_eq!(merged, whole);
    }

    #[test]
    fn serde_roundtrip_preserves_everything() {
        let mut h = LogHistogram::new();
        for &v in &[0u64, 1, 64, 127, 128, 300, 1 << 20] {
            h.record_n(v, v + 1);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
        let empty = LogHistogram::new();
        let back: LogHistogram =
            serde_json::from_str(&serde_json::to_string(&empty).unwrap()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn bucket_bounds_cover_and_nest() {
        // Every value lands in a bucket whose inclusive bound is >= it
        // and within the documented error.
        for e in 0..63u32 {
            for &v in &[1u64 << e, (1u64 << e) + 1, (1u64 << e).wrapping_mul(2) - 1] {
                if v == 0 {
                    continue;
                }
                let hi = bucket_high(bucket_index(v));
                assert!(hi >= v, "bound {hi} below value {v}");
                assert!(hi - v <= v / 64, "bound {hi} too loose for {v}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_quantile_panics() {
        LogHistogram::new().percentile(0.0);
    }
}
