//! Zero-observer-effect telemetry for the wimnet engine.
//!
//! The paper reports three end-of-run aggregates (peak bandwidth per
//! core, average packet energy, average packet latency, §IV); this
//! crate adds the *inside* view — which link saturates, which MAC turn
//! stalls, how queue depth approaches the congestion knee — without
//! perturbing a single engine decision.  The design contract
//! (`docs/observability.md`) is **observer effect = zero**: every hook
//! in the engine is a branch on an `Option` sink that only ever *reads*
//! decision state and increments sink-local counters.  Outcomes are
//! bit-identical whether telemetry is on or off, proven by
//! `tests/determinism.rs`.
//!
//! Building blocks:
//!
//! * [`LogHistogram`] — mergeable log-linear latency histogram, exact
//!   below 128 cycles and within 1/64 relative error above, replacing
//!   the old single-bucket p99 upper bound with rank-exact percentiles;
//! * [`TimeSeries`] — cycle-bucketed sampler that is fast-forward
//!   aware: jumped idle spans fill their buckets in closed form (all
//!   deltas are zero by the quiescence precondition), so sampling
//!   never forces full stepping;
//! * per-component counters ([`LinkCounters`], [`SwitchCounters`],
//!   [`MacCounters`], [`StackCounters`]) harvested from the engine's
//!   existing slab/active-set structures;
//! * [`NetworkTelemetry`] — the live sink the network owns behind an
//!   `Option`, plus the [`TraceBuffer`] of packet-hop waypoints and
//!   MAC turn intervals;
//! * [`TelemetrySummary`] — the serializable end-of-run digest carried
//!   by `RunOutcome::telemetry` through the catalog discipline;
//! * [`trace`] — Chrome-trace/Perfetto JSON export and the schema
//!   validator CI runs against `--trace` output.

#![forbid(unsafe_code)]

mod counters;
mod histogram;
mod series;
mod summary;
pub mod trace;

pub use counters::{
    HopRecord, LinkCounters, MacCounters, NetworkTelemetry, StackCounters, SwitchCounters,
    TraceBuffer, TurnRecord,
};
pub use histogram::LogHistogram;
pub use series::{SamplePoint, TimeSeries};
pub use summary::{LinkTelemetry, SeriesSummary, TelemetrySummary};
pub use trace::{validate_chrome_trace, ChromeTrace, TraceEvent};

/// How a run should observe itself.  Carried on `SystemConfig` behind
/// `#[serde(skip)]`, so it never enters scenario fingerprints — a
/// telemetry-on run and a telemetry-off run are the *same* scenario
/// (and, by the zero-observer-effect contract, the same outcome).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Attach the [`NetworkTelemetry`] sink (counters + time series).
    pub enabled: bool,
    /// Time-series bucket width in cycles.
    pub sample_interval: u64,
    /// Also record packet-hop waypoints and MAC turn intervals for
    /// Chrome-trace export (implies `enabled`).
    pub trace: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            sample_interval: 1024,
            trace: false,
        }
    }
}

impl TelemetryConfig {
    /// Counters + time series at the default interval.
    pub fn counters() -> Self {
        TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        }
    }

    /// Counters, time series *and* trace recording.
    pub fn tracing() -> Self {
        TelemetryConfig {
            enabled: true,
            trace: true,
            ..TelemetryConfig::default()
        }
    }

    /// `true` when any observation is requested.
    pub fn any(&self) -> bool {
        self.enabled || self.trace
    }
}
