//! Cycle-bucketed, fast-forward-aware time series.
//!
//! The sampler folds per-cycle observations (delivered flits/packets,
//! network occupancy) into fixed-width cycle buckets.  Storage is
//! sparse: only buckets with non-zero content are kept, so a mostly
//! idle run costs near nothing.
//!
//! **Fast-forward awareness** is the load-bearing property: the engine
//! only jumps a span when the network is provably quiescent (no flits
//! buffered, in flight, or pending injection — the same facts the
//! energy meter's closed forms rely on, `docs/fast_forward.md`).
//! Under that precondition every per-cycle delta inside the span is
//! *exactly zero*, so the skipped buckets' contents are known in
//! closed form — they are empty — and [`TimeSeries::fast_forward`]
//! fills them by advancing the bucket cursor in O(1).  Sampling never
//! forces full stepping, and a sampled run's series equals the
//! full-stepped run's series bucket for bucket.

use serde::{Deserialize, Serialize};

/// One closed, non-empty bucket of the series.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Bucket index: covers cycles `[bucket·interval, (bucket+1)·interval)`.
    pub bucket: u64,
    /// Flits delivered to endpoints inside the bucket.
    pub flits_delivered: u64,
    /// Packets delivered inside the bucket.
    pub packets_delivered: u64,
    /// Sum over the bucket's cycles of flits resident in the network —
    /// divide by the interval for mean occupancy.
    pub occupancy_integral: u64,
}

impl SamplePoint {
    fn is_empty(&self) -> bool {
        self.flits_delivered == 0 && self.packets_delivered == 0 && self.occupancy_integral == 0
    }
}

/// The sampler: owns the open bucket and the closed sparse history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    interval: u64,
    points: Vec<SamplePoint>,
    cur: SamplePoint,
    /// Exclusive upper bound of the bucket range accounted so far
    /// (closed buckets plus implicit empty ones).
    closed_through: u64,
}

impl TimeSeries {
    /// A fresh series with `interval`-cycle buckets (clamped to ≥ 1).
    pub fn new(interval: u64) -> Self {
        TimeSeries {
            interval: interval.max(1),
            points: Vec::new(),
            cur: SamplePoint::default(),
            closed_through: 0,
        }
    }

    /// Bucket width in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    fn roll_to(&mut self, bucket: u64) {
        if bucket <= self.cur.bucket {
            return;
        }
        if !self.cur.is_empty() {
            self.points.push(self.cur);
        }
        self.cur = SamplePoint { bucket, ..SamplePoint::default() };
        self.closed_through = bucket;
    }

    /// Per-cycle sample: `occupancy` is the flits resident in the
    /// network at cycle `now`.  Rolls the open bucket forward as `now`
    /// crosses bucket boundaries.
    pub fn on_cycle(&mut self, now: u64, occupancy: u64) {
        self.roll_to(now / self.interval);
        self.cur.occupancy_integral += occupancy;
    }

    /// A packet of `flits` flits was delivered at cycle `now`.
    pub fn on_deliver(&mut self, now: u64, flits: u32) {
        self.roll_to(now / self.interval);
        self.cur.packets_delivered += 1;
        self.cur.flits_delivered += u64::from(flits);
    }

    /// Closed-form accounting for a fast-forwarded idle span
    /// `[now, now + cycles)`: the quiescence precondition makes every
    /// skipped delta zero, so the span's buckets are filled (empty) by
    /// moving the cursor — O(1) regardless of span length, and
    /// bit-identical to stepping the span cycle by cycle (each stepped
    /// cycle would have called [`TimeSeries::on_cycle`] with
    /// occupancy 0, which changes nothing but the cursor).
    pub fn fast_forward(&mut self, now: u64, cycles: u64) {
        self.roll_to((now + cycles) / self.interval);
    }

    /// Closed buckets so far, ascending, empties omitted.  The open
    /// bucket is *not* included; call this after the run completes (the
    /// last partial bucket is flushed by [`TimeSeries::finish`]).
    pub fn points(&self) -> &[SamplePoint] {
        &self.points
    }

    /// Flushes the open bucket into the history.
    pub fn finish(&mut self) {
        if !self.cur.is_empty() {
            let cur = self.cur;
            self.points.push(cur);
            self.cur = SamplePoint { bucket: cur.bucket, ..SamplePoint::default() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_roll_and_accumulate() {
        let mut s = TimeSeries::new(10);
        s.on_cycle(0, 5);
        s.on_cycle(1, 7);
        s.on_deliver(3, 4);
        s.on_cycle(10, 1); // rolls into bucket 1
        s.finish();
        assert_eq!(
            s.points(),
            &[
                SamplePoint {
                    bucket: 0,
                    flits_delivered: 4,
                    packets_delivered: 1,
                    occupancy_integral: 12,
                },
                SamplePoint { bucket: 1, occupancy_integral: 1, ..Default::default() },
            ]
        );
    }

    #[test]
    fn fast_forward_equals_stepping_idle_cycles() {
        // A jumped idle span must leave the series exactly where
        // stepping the same span with zero occupancy would.
        let mut jumped = TimeSeries::new(8);
        let mut stepped = TimeSeries::new(8);
        for s in [&mut jumped, &mut stepped] {
            s.on_cycle(0, 3);
            s.on_deliver(2, 1);
        }
        jumped.fast_forward(3, 1000);
        for c in 3..1003 {
            stepped.on_cycle(c, 0);
        }
        // Resume activity after the span.
        for s in [&mut jumped, &mut stepped] {
            s.on_cycle(1003, 9);
            s.finish();
        }
        assert_eq!(jumped, stepped);
    }

    #[test]
    fn empty_buckets_are_not_stored() {
        let mut s = TimeSeries::new(4);
        s.on_cycle(0, 1);
        s.fast_forward(1, 10_000);
        s.on_cycle(10_001, 2);
        s.finish();
        assert_eq!(s.points().len(), 2, "only the two active buckets persist");
    }

    #[test]
    fn zero_interval_is_clamped() {
        let s = TimeSeries::new(0);
        assert_eq!(s.interval(), 1);
    }
}
