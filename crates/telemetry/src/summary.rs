//! The serializable end-of-run telemetry digest.
//!
//! `RunOutcome::telemetry` carries a [`TelemetrySummary`] (as
//! `Option`, serde-defaulted so catalog entries written before this
//! layer existed still parse).  The summary is pure data — every field
//! round-trips through the serde shim, so the catalog/checkpoint
//! disciplines carry it unchanged.

use serde::{Deserialize, Serialize};

use crate::counters::{MacCounters, StackCounters, SwitchCounters};
use crate::histogram::LogHistogram;
use crate::series::SamplePoint;

/// One link's counters plus its identity, for reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkTelemetry {
    /// Link kind name (`mesh`, `serial`, `wide-io`, …).
    pub kind: String,
    /// Flits sent onto the link.
    pub flits: u64,
    /// Cycles the link was active.
    pub busy_cycles: u64,
    /// Busy cycles blocked on downstream credits.
    pub credit_stalls: u64,
    /// `busy_cycles` over the run length.
    pub utilization: f64,
}

/// The closed time series plus its bucketing parameters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SeriesSummary {
    /// Bucket width in cycles.
    pub interval: u64,
    /// Non-empty buckets, ascending.
    pub points: Vec<SamplePoint>,
}

/// Everything a run observed about itself.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Run length in cycles (the denominator behind utilizations).
    pub cycles: u64,
    /// Per-link counters, dense link order.
    pub links: Vec<LinkTelemetry>,
    /// Per-switch counters, switch-index order.
    pub switches: Vec<SwitchCounters>,
    /// Per-medium MAC counters (one entry per attached medium).
    pub macs: Vec<MacCounters>,
    /// Per-stack memory-controller counters.
    pub stacks: Vec<StackCounters>,
    /// Delivered-traffic/occupancy time series.
    pub series: SeriesSummary,
    /// Full latency histogram (window packets), mergeable across
    /// shards; the exact percentile source.
    pub latency: LogHistogram,
}

impl TelemetrySummary {
    /// Total flits carried by all links.
    pub fn total_link_flits(&self) -> u64 {
        self.links.iter().map(|l| l.flits).sum()
    }

    /// The busiest link as `(index, &entry)`, by utilization.
    pub fn hottest_link(&self) -> Option<(usize, &LinkTelemetry)> {
        self.links
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.utilization.total_cmp(&b.utilization))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_roundtrips_through_serde() {
        let mut latency = LogHistogram::new();
        latency.record(17);
        latency.record(900);
        let s = TelemetrySummary {
            cycles: 5000,
            links: vec![LinkTelemetry {
                kind: "mesh".into(),
                flits: 64,
                busy_cycles: 70,
                credit_stalls: 3,
                utilization: 70.0 / 5000.0,
            }],
            switches: vec![SwitchCounters {
                grants: 64,
                active_cycles: 80,
                occupancy_integral: 200,
            }],
            macs: vec![MacCounters { turns: 4, data_flits: 64, ..Default::default() }],
            stacks: vec![StackCounters {
                requests: 9,
                queue_depth_integral: 45,
                mean_queue_depth: 45.0 / 5000.0,
            }],
            series: SeriesSummary {
                interval: 1024,
                points: vec![SamplePoint {
                    bucket: 0,
                    flits_delivered: 64,
                    packets_delivered: 1,
                    occupancy_integral: 301,
                }],
            },
            latency,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: TelemetrySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn hottest_link_picks_the_max_utilization() {
        let mut s = TelemetrySummary::default();
        assert!(s.hottest_link().is_none());
        for u in [0.1, 0.9, 0.4] {
            s.links.push(LinkTelemetry { utilization: u, ..Default::default() });
        }
        assert_eq!(s.hottest_link().unwrap().0, 1);
    }
}
